"""Structural graph compression: twin merging + chain contraction.

The reduction ladder (:mod:`repro.compress.ladder`) shrinks each
partition sub-graph to its structural core — pendants folded, twin
classes merged, degree-2 chains contracted to weighted super-edges —
and the compressed kernel (:mod:`repro.compress.kernel`) runs the
APGRE four-dependency sweeps on the core, inverting the compression
exactly (BC matches the uncompressed kernels to float64 tolerance).
"""

from repro.compress.kernel import bc_subgraph_compressed
from repro.compress.ladder import build_plan
from repro.compress.plan import (
    STATUS_CHAIN,
    STATUS_CORE,
    STATUS_PEELED,
    STATUS_TWIN,
    Chain,
    SubgraphPlan,
    TwinClass,
    compression_plan,
)

__all__ = [
    "bc_subgraph_compressed",
    "build_plan",
    "compression_plan",
    "SubgraphPlan",
    "TwinClass",
    "Chain",
    "STATUS_CORE",
    "STATUS_PEELED",
    "STATUS_TWIN",
    "STATUS_CHAIN",
]
