"""Smoke tests: every example script runs end-to-end.

Examples are run in-process (importing their ``main``) with a scaled-
down workload where the script supports one, so this stays fast while
still executing every code path a user would.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *argv):
    """Execute an example script as __main__ with patched argv."""
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "APGRE == Brandes: True" in out
    assert "removed pendant sources" in out


def test_compare_algorithms(capsys):
    run_example("compare_algorithms.py", "Email-EuAll", "0.25")
    out = capsys.readouterr().out
    assert "exact" in out
    assert "MISMATCH" not in out
    assert "skipped" in out  # async on a directed graph


def test_compare_algorithms_unknown_graph(capsys):
    with pytest.raises(SystemExit):
        run_example("compare_algorithms.py", "NoSuchGraph")


def test_road_network(capsys):
    run_example("road_network.py")
    out = capsys.readouterr().out
    assert "DIMACS round-trip ok" in out
    assert "speedup" in out
    assert "critical intersections" in out


def test_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        text = script.read_text()
        assert text.startswith("#!/usr/bin/env python"), script.name
        assert '"""' in text, script.name


@pytest.mark.slow
def test_community_detection(capsys):
    run_example("community_detection.py")
    out = capsys.readouterr().out
    assert "recovered communities" in out


@pytest.mark.slow
def test_power_grid(capsys):
    run_example("power_grid_contingency.py")
    out = capsys.readouterr().out
    assert "contingency screen" in out
