"""Table 4 — sub-graph sizes produced by GraphPartition.

Benchmarks the decomposition itself (Algorithm 1 + α/β counting) per
graph and emits the paper's sub-graph size table.
"""

import pytest

from repro.bench.experiments import table4
from repro.bench.runner import ExperimentResult
from repro.bench.workloads import bench_graph_names, get_graph
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.metrics.stats import bcc_size_histogram

from conftest import one_shot


def _decompose(graph):
    partition = graph_partition(graph)
    compute_alpha_beta(graph, partition)
    return partition


@pytest.mark.parametrize("name", bench_graph_names())
def test_partition_time(benchmark, name):
    graph = get_graph(name)
    partition = one_shot(benchmark, _decompose, graph)
    partition.validate()
    benchmark.extra_info["num_subgraphs"] = partition.num_subgraphs


def test_report_table4(benchmark, report):
    result = one_shot(benchmark, table4)
    # the top sub-graph dominates on every suite graph (paper: "The
    # top sub-graph is larger than other sub-graphs")
    for row in result.rows:
        top_v, second_v = row[2], row[6]
        assert top_v >= second_v
    report(result)


def test_report_bcc_histogram(report):
    """Per-graph BCC size histogram — the dominant-BCC view that
    motivates sharding (docs/SHARDING.md): one BCC alone in the top
    power-of-two bucket is the critical path ``shard=True`` splits."""
    rows = []
    for name in bench_graph_names():
        graph = get_graph(name)
        buckets = bcc_size_histogram(graph)
        assert buckets, name
        top_lo, top_hi, top_count = buckets[-1]
        rows.append([
            name,
            sum(c for _, _, c in buckets),
            f"{top_lo}-{top_hi}",
            top_count,
            " ".join(f"{lo}:{c}" for lo, _, c in buckets),
        ])
    report(ExperimentResult(
        exp_id="Table 4b",
        title="BCC size histogram (power-of-two buckets)",
        headers=["Graph", "#BCC", "top bucket", "#top", "lo:count"],
        rows=rows,
        notes="also printed per graph by `repro-bc info`; a lone BCC "
        "in the top bucket is the sharding target (docs/SHARDING.md)",
    ))
