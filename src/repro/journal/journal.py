"""Crash-safe run journal: checkpoint/resume for long BC runs.

APGRE's decomposition makes each sub-graph contribution an
independently recomputable unit; the journal makes each one *durable*
the moment it is complete.  A :class:`RunJournal` writes an
append-only, checksummed log (:mod:`repro.journal.format`) under a
``journal_dir``:

* a **header** pinning the run fingerprint — graph hash and the
  score-relevant :class:`~repro.core.config.APGREConfig` fields — plus
  environment provenance
  (:func:`repro.bench.persistence.environment_provenance`);
* one **contribution** record per completed sub-graph, referencing an
  atomically-written local-coordinate ``.npy`` payload (the same
  write-then-rename discipline as :mod:`repro.cache.store`; the edge
  tally and vector length live in the checksummed log record, so the
  payload is just the raw score array — the cheapest thing
  :func:`numpy.save` can produce, which keeps per-record overhead
  negligible even on graphs that decompose into many small
  sub-graphs).

The APGRE driver commits records parent-side only, after the batched
pool's poisoned-slot recovery, so a killed worker can never journal a
partial delta.  On ``resume=True`` the journal verifies the header
fingerprint (mismatch raises :class:`~repro.errors.JournalError`),
replays every valid record — torn or corrupt tails are detected by
checksum and dropped, never trusted — and the driver recomputes only
the sub-graphs with no surviving record.

Write failures (``ENOSPC``, I/O errors, a yanked disk) **disable** the
journal instead of crashing the run: the log is truncated back to its
last committed record, a single warning is emitted, and the run
continues unjournaled — what is already on disk stays a clean resume
point.  See docs/ROBUSTNESS.md for the crash-recovery matrix.
"""

from __future__ import annotations

import hashlib
import io
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import JournalError
from repro.journal.format import (
    encode_record,
    payload_digest,
    scan_log,
)
from repro.parallel import faults as _faults
from repro.types import SCORE_DTYPE

__all__ = [
    "JOURNAL_VERSION",
    "ResumedContribution",
    "RunJournal",
    "run_fingerprint",
]

#: Journal layout version (header field; a reader refuses newer).
JOURNAL_VERSION = 1

#: Name of the append-only log inside ``journal_dir``.
LOG_NAME = "journal.log"

#: Environment keys whose drift across a resume is worth a warning
#: (never an error: version drift cannot corrupt scores, only change
#: performance or float rounding within the 1e-9 band).
_ENV_WARN_KEYS = ("python", "numpy", "scipy")


def _config_digest(config) -> str:
    """Digest of the APGREConfig fields that determine contributions.

    Only fields that change the partition or the per-sub-graph score
    vectors participate: ``threshold`` (changes the decomposition),
    ``alpha_beta_method`` (as configured) and ``eliminate_pendants``
    (changes the source sets).  Execution strategy — workers, batch
    size, pooling, compression, caching — is deliberately excluded, so
    a run journaled under one strategy can resume under another (e.g.
    a pooled run killed by an OOM resumes serially).

    Sharding (``shard=True``) *does* participate — it changes the
    record granularity (one record per shard task, composite slots) —
    but its fields are appended only when enabled, so pre-shard
    journals keep their digests and stay resumable.
    """
    text = (
        f"threshold={int(config.threshold)};"
        f"alpha_beta_method={config.alpha_beta_method};"
        f"eliminate_pendants={bool(config.eliminate_pendants)}"
    )
    if getattr(config, "shard", False):
        text += f";shard=1;shard_max_size={int(config.shard_max_size)}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def run_fingerprint(graph, config) -> Dict:
    """The identity a journal pins and a resume must match."""
    from repro.cache.fingerprint import graph_fingerprint

    return {
        "graph": graph_fingerprint(graph),
        "config": _config_digest(config),
        "n": int(graph.n),
    }


@dataclass
class ResumedContribution:
    """One replayed record: local scores + the exact edge tally."""

    scores: np.ndarray
    edges: int


#: Default group-commit interval (seconds): at most one fsync pair
#: per interval instead of per record.  See ``RunJournal(fsync=...)``.
DEFAULT_FSYNC_INTERVAL = 0.05


class RunJournal:
    """Append-only, checksummed journal of completed contributions.

    Parameters
    ----------
    journal_dir:
        Directory holding the log and the payload files (one journal
        per directory).  Created on :meth:`begin`.
    fsync:
        Flush-to-platter discipline.  ``True`` fsyncs every record
        (each commit survives power loss); ``False`` never fsyncs (the
        OS decides); a float is a **group-commit interval** in seconds
        — the default, ``DEFAULT_FSYNC_INTERVAL`` — fsyncing at most
        once per interval plus once at finalisation.  Every record is
        *flushed* regardless, so process death (``SIGKILL``, OOM,
        segfault — the common crashes) never loses a committed record
        under any setting; the interval only bounds how much a true
        power loss can roll back, and the checksummed log plus payload
        digests make any rollback point a clean resume (out-of-order
        durability is safe: a log record whose payload never reached
        the platter fails its digest and is recomputed).
    """

    def __init__(
        self,
        journal_dir: Union[str, Path],
        *,
        fsync: Union[bool, float] = DEFAULT_FSYNC_INTERVAL,
    ) -> None:
        self.dir = Path(journal_dir)
        self.log_path = self.dir / LOG_NAME
        self._fsync = fsync
        self._last_sync = float("-inf")
        self._fh = None
        self._good_offset = 0
        self.failed: Optional[BaseException] = None
        self.records_written = 0
        self.resumed_records = 0
        self.finalized = ""

    def _durability_point(self) -> bool:
        """Whether the write happening now should reach the platter."""
        if self._fsync is True:
            return True
        if self._fsync is False:
            return False
        now = time.monotonic()
        if now - self._last_sync >= float(self._fsync):
            self._last_sync = now
            return True
        return False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(
        self, fingerprint: Dict, *, resume: bool = False
    ) -> Dict[int, ResumedContribution]:
        """Open the journal for a run; returns replayed contributions.

        ``resume=False`` starts fresh: any previous journal in the
        directory is discarded (resume is the explicit opt-in).
        ``resume=True`` requires a valid journal whose header
        fingerprint matches; returns ``{subgraph_index: contribution}``
        for every record that survives checksum and payload-digest
        verification, and truncates the log to that valid prefix so
        new records append at a clean boundary.
        """
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JournalError(
                f"cannot create journal directory {self.dir}: {exc}"
            ) from exc
        self._drop_stale_tmp()
        if not resume:
            for stale in self.dir.glob("sg-*.npy"):
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - races are fine
                    pass
            self._open_log(truncate_to=None)
            self._append(self._header_body(fingerprint))
            return {}

        if not self.log_path.exists():
            raise JournalError(
                f"resume requested but {self.log_path} does not exist "
                f"(run once with journal_dir set, without resume)"
            )
        records, valid_bytes = scan_log(self.log_path)
        if not records or records[0].get("type") != "header":
            raise JournalError(
                f"{self.log_path} holds no valid header record — the "
                f"journal is unreadable and cannot anchor a resume"
            )
        header = records[0]
        self._check_header(header, fingerprint)
        entries: Dict[int, ResumedContribution] = {}
        for body in records[1:]:
            if body.get("type") != "contribution":
                continue
            loaded = self._load_payload(body)
            if loaded is not None:
                entries[int(body["subgraph"])] = loaded
        self.resumed_records = len(entries)
        self._open_log(truncate_to=valid_bytes)
        return entries

    def record_contribution(
        self, index: int, scores: np.ndarray, edges: int
    ) -> bool:
        """Durably commit one completed sub-graph contribution.

        Payload first (atomic tmp + rename), log record second — a
        crash between the two leaves an unreferenced payload that the
        next resume simply overwrites.  Returns ``False`` (and
        disables the journal) on any write error; the run proceeds.
        """
        if self.failed is not None or self._fh is None:
            return False
        index = int(index)
        name = f"sg-{index:06d}.npy"
        durable = self._durability_point()
        try:
            digest = self._write_payload(name, scores, durable)
            self._append(
                {
                    "type": "contribution",
                    "subgraph": index,
                    "payload": name,
                    "digest": digest,
                    "n": int(np.asarray(scores).size),
                    "edges": int(edges),
                },
                durable,
            )
        except OSError as exc:
            self._disable(exc)
            return False
        self.records_written += 1
        _faults.fire_disk_faults("journal.committed")
        return True

    def finalize(self, status: str) -> None:
        """Append the terminal marker and close the journal.

        ``status`` is informational (``complete`` / ``partial`` /
        ``interrupted``); a journal without a final record — the crash
        case — resumes identically.  Never raises: finalisation runs
        on error paths where the original failure must win.
        """
        if self.finalized:
            return
        self.finalized = status
        if self._fh is not None and self.failed is None:
            try:
                self._append(
                    {
                        "type": "final",
                        "status": status,
                        "journaled": self.records_written,
                    }
                )
            except OSError as exc:
                self._disable(exc)
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close-on-full-disk
                pass
            self._fh = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _header_body(self, fingerprint: Dict) -> Dict:
        from repro.bench.persistence import environment_provenance

        return {
            "type": "header",
            "version": JOURNAL_VERSION,
            "fingerprint": dict(fingerprint),
            "environment": environment_provenance(),
            "created": time.time(),
        }

    def _check_header(self, header: Dict, fingerprint: Dict) -> None:
        version = header.get("version")
        if not isinstance(version, int) or version > JOURNAL_VERSION:
            raise JournalError(
                f"journal {self.log_path} has version {version!r}; this "
                f"build reads <= {JOURNAL_VERSION}"
            )
        found = header.get("fingerprint") or {}
        for key in ("graph", "config", "n"):
            if found.get(key) != fingerprint.get(key):
                raise JournalError(
                    f"journal fingerprint mismatch on {key!r}: the "
                    f"journal was written for a different "
                    f"{'graph' if key != 'config' else 'configuration'} "
                    f"(journal {found.get(key)!r} != run "
                    f"{fingerprint.get(key)!r})"
                )
        env = header.get("environment") or {}
        from repro.bench.persistence import environment_provenance

        current = environment_provenance()
        drifted = [
            f"{k} {env.get(k)} -> {current.get(k)}"
            for k in _ENV_WARN_KEYS
            if env.get(k) is not None and env.get(k) != current.get(k)
        ]
        if drifted:
            warnings.warn(
                f"resuming a journal recorded under a different "
                f"toolchain ({', '.join(drifted)}); scores stay exact "
                f"but replayed/recomputed float rounding may differ "
                f"within 1e-9",
                stacklevel=3,
            )

    def _load_payload(self, body: Dict) -> Optional[ResumedContribution]:
        """Load one record's payload; ``None`` degrades to recompute."""
        path = self.dir / str(body.get("payload", ""))
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if payload_digest(data) != body.get("digest"):
            return None  # torn/corrupt payload: never trusted
        try:
            loaded = np.load(io.BytesIO(data), allow_pickle=False)
            scores = np.asarray(loaded, dtype=SCORE_DTYPE)
        except ValueError:
            return None  # pragma: no cover - digest already vetted
        if scores.ndim != 1 or scores.size != int(body.get("n", -1)):
            return None
        scores.flags.writeable = False
        return ResumedContribution(
            scores=scores, edges=int(body.get("edges", 0))
        )

    def _write_payload(
        self, name: str, scores: np.ndarray, durable: bool
    ) -> str:
        # serialise in memory first: the digest is computed over the
        # intended bytes without a read-back, and the tmp file gets one
        # single write.  A raw uncompressed ``.npy`` on purpose —
        # the edge tally and length already live in the checksummed
        # log record, integrity comes from the digest, and payloads
        # are transient (discarded on the next fresh begin), so a zip
        # container would buy only per-record CPU.
        buf = io.BytesIO()
        np.save(buf, np.asarray(scores, dtype=SCORE_DTYPE))
        data = buf.getvalue()
        digest = payload_digest(data)
        spec = _faults.fire_disk_faults("journal.payload")
        if spec is not None and spec.kind == "torn_write":
            # simulate a payload torn mid-write whose rename survived:
            # the digest above describes the intended bytes, so replay
            # must reject this file
            data = data[: max(len(data) // 2, 1)]
        tmp = self.dir / f".{name}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, self.dir / name)
        return digest

    def _append(self, body: Dict, durable: bool = True) -> None:
        line = encode_record(body)
        spec = _faults.fire_disk_faults("journal.append")
        if spec is not None and spec.kind == "torn_write":
            self._fh.write(line[: max(len(line) // 2, 1)])
            self._fh.flush()
            raise OSError(5, "injected torn write (journal.append)")
        self._fh.write(line)
        self._fh.flush()
        if durable:
            os.fsync(self._fh.fileno())
        self._good_offset += len(line)

    def _open_log(self, *, truncate_to: Optional[int]) -> None:
        try:
            if truncate_to is None:
                self._fh = open(self.log_path, "wb")
                self._good_offset = 0
            else:
                self._fh = open(self.log_path, "r+b")
                self._fh.truncate(truncate_to)
                self._fh.seek(truncate_to)
                self._good_offset = truncate_to
        except OSError as exc:
            raise JournalError(
                f"cannot open journal log {self.log_path}: {exc}"
            ) from exc

    def _disable(self, exc: BaseException) -> None:
        """A write failed: stop journaling, keep the valid prefix."""
        self.failed = exc
        warnings.warn(
            f"run journal disabled after a write error ({exc}); the "
            f"run continues unjournaled and {self.log_path} remains "
            f"resumable up to its last committed record",
            stacklevel=3,
        )
        if self._fh is not None:
            try:
                self._fh.truncate(self._good_offset)
            except OSError:  # pragma: no cover - disk fully gone
                pass
        self.close()

    def _drop_stale_tmp(self) -> None:
        for stale in self.dir.glob(".*.tmp"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - races are fine
                pass

    # ------------------------------------------------------------------
    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
