"""The APGRE driver (paper Figure 5).

Three steps:

1. decompose the graph by articulation points (Algorithm 1 —
   :func:`repro.decompose.partition.graph_partition`);
2. count ``α_SGi(a)``/``β_SGi(a)`` for every boundary articulation
   point (:func:`repro.decompose.alphabeta.compute_alpha_beta`);
3. compute each sub-graph's scores with the four-dependency kernel
   (:func:`repro.core.bc_subgraph.bc_subgraph`) and merge:
   ``BC(v) = Σ_SGi BC_SGi(v)`` (equation 8 — articulation points sum
   their per-sub-graph shares).

Step 3 carries the coarse-grained parallelism: sub-graphs are
independent ("coarse-grained asynchronous parallelism among
sub-graphs"), dispatched largest-first over a supervised fork-based
process pool (``parallel="processes"`` —
:func:`repro.parallel.supervisor.supervised_map`, with per-task
timeouts, crash detection, bounded retry and serial degradation) or a
thread pool (``parallel="threads"``).  A processes run attaches its
supervision report to ``BCResult.health``; the degradation ladder
bottoms out in full-serial APGRE and, past that, the plain Brandes
baseline (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.common import WorkCounter
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.core.result import APGREStats, BCResult, PhaseTimings
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import Partition, graph_partition
from repro.errors import ExecutionError, ReproError
from repro.graph.csr import CSRGraph
from repro.parallel.batched_pool import merge_examined
from repro.parallel.pool import get_worker_state, thread_map
from repro.parallel.scheduler import lpt_order, task_cost
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    supervised_map,
)
from repro.types import SCORE_DTYPE

__all__ = ["apgre_bc", "apgre_bc_detailed"]

# journal slot encoding for shard units: sub-graph ``index`` stays the
# slot of a whole-sub-graph unit (back-compatible with pre-shard
# journals), shard ``s`` of sub-graph ``i`` lives at
# ``(i + 1) * _SLOT_BASE + s`` — disjoint ranges, deterministic.
_SLOT_BASE = 1_000_000


def _counter_triple(tally: WorkCounter) -> Tuple[int, int, int]:
    """One task's ``(edges, pulled, switches)`` engine commit row."""
    return (tally.edges, tally.pulled, tally.switches)


def _fold_tally(counter: WorkCounter, tally: WorkCounter) -> None:
    """Fold a task-local tally's full split into the run counter."""
    counter.add(tally.edges)
    if tally.pulled:
        counter.add_pulled(tally.pulled)
    if tally.switches:
        counter.add_switch(tally.switches)


def _plan_of(sg, config: APGREConfig):
    """The sub-graph's shard plan, or ``None`` when it runs whole."""
    if not config.shard:
        return None
    from repro.shard import shard_plan

    return shard_plan(sg, max_size=config.shard_max_size)


def _expand_units(subgraphs, config: APGREConfig) -> List[Tuple[int, int]]:
    """The run's work units: ``(subgraph_index, shard)``.

    ``shard == -1`` is a whole-sub-graph unit (the only kind when
    sharding is off or the plan declined to split); a sharded
    sub-graph contributes one unit per shard task instead, each a
    first-class schedule/cache/journal citizen.
    """
    units: List[Tuple[int, int]] = []
    for sg in subgraphs:
        plan = _plan_of(sg, config)
        if plan is None:
            units.append((sg.index, -1))
        else:
            units.extend((sg.index, s) for s in range(plan.k))
    return units


def _unit_num_roots(sg, shard: int, config: APGREConfig) -> int:
    if config.eliminate_pendants:
        roots = sg.roots
    else:
        roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
    if shard < 0:
        return int(roots.size)
    return int(_plan_of(sg, config).home_roots(roots, shard).size)


def _unit_scores(
    sg, shard: int, config: APGREConfig, counter=None, lo=None, hi=None
) -> np.ndarray:
    """One unit's full-length local score vector (optionally root-sliced).

    Whole units route through :func:`bc_subgraph` (honouring
    ``batch_size``/``compress``); shard units run the shard kernel —
    never root-sliced and never compressed (the two reductions do not
    compose; docs/SHARDING.md).
    """
    if shard < 0:
        roots = None
        if lo is not None:
            if config.eliminate_pendants:
                all_roots = sg.roots
            else:
                all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
            roots = all_roots[lo:hi]
        return bc_subgraph(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=counter,
            roots=roots,
            batch_size=config.batch_size,
            compress=config.compress,
            kernel=config.kernel,
        )
    from repro.shard import shard_task_scores

    return shard_task_scores(
        sg,
        _plan_of(sg, config),
        shard,
        eliminate_pendants=config.eliminate_pendants,
        counter=counter,
    )


def _unit_weight(sg, shard: int, config: APGREConfig) -> float:
    """LPT weight of a unit under the edges × sqrt(roots) cost model."""
    n_roots = _unit_num_roots(sg, shard, config)
    if shard < 0:
        return task_cost(sg.num_arcs, n_roots)
    h = _plan_of(sg, config).shard_graphs[shard]
    return task_cost(h.num_arcs, n_roots)


def _unit_key(sg, shard: int, config: APGREConfig) -> str:
    """Content fingerprint of one unit's local contribution vector."""
    if shard < 0:
        from repro.cache.fingerprint import subgraph_key

        return subgraph_key(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            compress=config.compress,
        )
    from repro.shard import shard_key

    return shard_key(
        sg,
        shard,
        max_size=config.shard_max_size,
        eliminate_pendants=config.eliminate_pendants,
    )


def _subgraph_task(task: Tuple[int, int, int]) -> Tuple[int, np.ndarray]:
    """Worker body: one (unit, root-slice) chunk's local scores."""
    upos, lo, hi = task
    state = get_worker_state()
    partition: Partition = state["partition"]
    eliminate: bool = state["eliminate_pendants"]
    index, shard = state["units"][upos]
    sg = partition.subgraphs[index]
    if shard >= 0:
        from repro.shard import shard_plan, shard_task_scores

        # plans are memoized on the Subgraph — fork/thread workers
        # reuse the ones the parent built for the stats pass
        plan = shard_plan(sg, max_size=state["shard_max_size"])
        return index, shard_task_scores(
            sg, plan, shard, eliminate_pendants=eliminate
        )
    if eliminate:
        all_roots = sg.roots
    else:
        all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
    return index, bc_subgraph(
        sg,
        eliminate_pendants=eliminate,
        roots=all_roots[lo:hi],
        batch_size=state.get("batch_size"),
        compress=state.get("compress", False),
        kernel=state.get("kernel"),
    )


def _make_tasks(
    subgraphs,
    units: List[Tuple[int, int]],
    config: APGREConfig,
) -> Tuple[List[Tuple[int, int, int]], List[float]]:
    """Split units into (unit_pos, root_lo, root_hi) chunks + weights.

    Large whole-sub-graph units are cut into ~``2 × workers`` root
    slices so the dominant top sub-graph does not serialise the pool
    (the paper gets the same effect from its fine-grained level); small
    units stay whole, and shard units are always one task — the shard
    decomposition *is* the fine cut.  Tasks are returned
    largest-estimated-work first (LPT) under the
    :func:`~repro.parallel.scheduler.task_cost` model.  With an
    integer ``batch_size``, chunk boundaries are aligned to a multiple
    of it so workers run full batches (``"auto"`` resolves per
    sub-graph inside the worker and is left unaligned).
    """
    eliminate = config.eliminate_pendants
    batch_size = config.batch_size
    tasks: List[Tuple[int, int, int]] = []
    weights: List[float] = []
    total_roots = sum(
        _unit_num_roots(subgraphs[i], s, config) for i, s in units
    )
    chunk_target = max(total_roots // max(2 * config.workers, 1), 1)
    if isinstance(batch_size, int) and batch_size > 1:
        chunk_target = max(
            (chunk_target + batch_size - 1) // batch_size * batch_size,
            batch_size,
        )
    for upos, (index, shard) in enumerate(units):
        sg = subgraphs[index]
        n_roots = _unit_num_roots(sg, shard, config)
        if shard >= 0:
            # zero-root shards still get a task so their (all-zero)
            # vector reaches the cache/journal commit path once
            tasks.append((upos, 0, n_roots))
            h = _plan_of(sg, config).shard_graphs[shard]
            weights.append(task_cost(h.num_arcs, n_roots))
            continue
        if n_roots == 0:
            continue
        step = max(min(chunk_target, n_roots), 1)
        for lo in range(0, n_roots, step):
            hi = min(lo + step, n_roots)
            tasks.append((upos, lo, hi))
            weights.append(task_cost(sg.num_arcs, hi - lo))
    order = lpt_order(weights)
    return [tasks[i] for i in order], [weights[i] for i in order]


def apgre_bc_detailed(
    graph: CSRGraph,
    config: Optional[APGREConfig] = None,
    *,
    partition: Optional[Partition] = None,
) -> BCResult:
    """Run APGRE and return scores plus phase timings and counters.

    Parameters
    ----------
    graph:
        Directed or undirected, connected or not.
    config:
        Run options; defaults to :class:`APGREConfig()`.
    partition:
        A pre-computed partition (with α/β already filled) to reuse
        across runs — the scaling benchmarks pass this so worker-count
        sweeps time only the BC phase they vary.
    """
    config = config or APGREConfig()
    stats = APGREStats()
    timings = stats.timings
    counter = WorkCounter()

    if partition is None:
        t0 = time.perf_counter()
        partition = graph_partition(graph, threshold=config.threshold)
        timings.partition = time.perf_counter() - t0

        t0 = time.perf_counter()
        ab = compute_alpha_beta(
            graph, partition, method=config.alpha_beta_method
        )
        timings.alpha_beta = time.perf_counter() - t0
        stats.alpha_beta_pairs = ab.pairs
        stats.alpha_beta_method = ab.method

    subgraphs = partition.subgraphs
    stats.num_subgraphs = len(subgraphs)
    stats.num_articulation_points = int(partition.articulation_flags.sum())
    stats.num_boundary_arts = int(partition.boundary_art_flags.sum())
    if config.eliminate_pendants:
        stats.num_removed_pendants = sum(sg.removed.size for sg in subgraphs)
        stats.num_sources = sum(sg.roots.size for sg in subgraphs)
    else:
        stats.num_sources = sum(sg.num_vertices for sg in subgraphs)

    if config.shard:
        # Build (and memoize) every shard plan up front: fork-based
        # workers inherit finished plans, and the stats describe the
        # decomposition whichever execution path the scores take.
        # Plan-construction work is tallied out of TEPS.
        plans = [(sg, _plan_of(sg, config)) for sg in subgraphs]
        built = [(sg, p) for sg, p in plans if p is not None]
        stats.shards_created = sum(p.k for _, p in built)
        stats.separator_vertices = sum(p.num_separator for _, p in built)
        stats.edges_correction = sum(p.edges_correction for _, p in built)
        stats.largest_shard_ratio = max(
            (p.largest_shard / sg.num_vertices for sg, p in built),
            default=1.0,
        )

    if config.compress:
        # Build (and memoize) every plan up front: fork-based workers
        # then inherit the finished plans instead of rebuilding them,
        # and the stats describe the run regardless of which execution
        # path the scores take.  These tallies quantify work *avoided*
        # and are never folded into edges_traversed/TEPS.
        from repro.compress import compression_plan

        plans = [
            compression_plan(sg, eliminate_pendants=config.eliminate_pendants)
            for sg in subgraphs
            # sharded sub-graphs skip the compression ladder entirely
            if _plan_of(sg, config) is None
        ]
        stats.vertices_merged = sum(p.vertices_merged for p in plans)
        stats.chains_contracted = sum(p.chain_interiors for p in plans)
        stats.vertices_peeled = sum(p.vertices_peeled for p in plans)
        total_n = sum(p.n for p in plans)
        total_core = sum(p.n_core for p in plans)
        stats.compression_ratio = (
            total_n / total_core if total_core else 1.0
        )

    bc = np.zeros(graph.n, dtype=SCORE_DTYPE)
    health: Optional[RunHealth] = None

    store = None
    if config.cache is not None or config.cache_dir is not None:
        from repro.cache.store import resolve_store

        store = resolve_store(config.cache, config.cache_dir)
    if config.journal_dir is not None:
        t0 = time.perf_counter()
        health = _journaled_pass(
            graph, bc, partition, config, store, counter, stats
        )
        timings.rest_bc = time.perf_counter() - t0
    elif store is not None:
        t0 = time.perf_counter()
        health = _cached_pass(
            graph, bc, partition, config, store, counter, stats
        )
        timings.rest_bc = time.perf_counter() - t0
    elif (
        config.parallel == "serial" and config.backend is None
    ) or config.workers <= 1:
        _serial_pass(bc, subgraphs, config, counter, timings)
    else:
        t0 = time.perf_counter()
        units = _expand_units(subgraphs, config)
        tasks, weights = _make_tasks(subgraphs, units, config)
        state = {
            "partition": partition,
            "units": units,
            "shard_max_size": config.shard_max_size,
            "eliminate_pendants": config.eliminate_pendants,
            "batch_size": config.batch_size,
            "compress": config.compress,
            "kernel": config.kernel,
        }
        if config.backend is not None:
            from repro.parallel.backends import resolve_backend

            health = RunHealth()
            _batched_pool_pass(
                graph, bc, tasks, weights, subgraphs, units, config,
                counter, timings, health,
                contributions=resolve_backend(config.backend)
                .contributions,
            )
        elif config.parallel == "processes" and config.parallel_batched:
            health = RunHealth()
            _batched_pool_pass(
                graph, bc, tasks, weights, subgraphs, units, config,
                counter, timings, health
            )
        elif config.parallel == "processes":
            health = RunHealth()
            results = _supervised_pass(
                graph, bc, tasks, subgraphs, state, config, counter,
                timings, health
            )
        else:  # threads
            from repro.parallel import pool as _pool

            _pool._install_state(state)
            try:
                results = thread_map(
                    _subgraph_task, tasks, workers=config.workers
                )
            finally:
                _pool._STATE.clear()
            for idx, local in results:
                bc[subgraphs[idx].vertices] += local
        timings.rest_bc = time.perf_counter() - t0

    stats.edges_traversed = counter.edges
    stats.edges_pulled = counter.pulled
    stats.kernel_switches = counter.switches
    return BCResult(scores=bc, stats=stats, health=health)


def _serial_pass(
    bc: np.ndarray, subgraphs, config: APGREConfig, counter, timings
) -> None:
    """The serial BC phase (also the full-serial fallback rung)."""
    units = _expand_units(subgraphs, config)
    order = lpt_order(
        [_unit_weight(subgraphs[i], s, config) for i, s in units]
    )
    for pos in order:
        index, shard = units[pos]
        sg = subgraphs[index]
        t0 = time.perf_counter()
        local = _unit_scores(sg, shard, config, counter)
        elapsed = time.perf_counter() - t0
        if index == 0:
            timings.top_bc += elapsed
        else:
            timings.rest_bc += elapsed
        bc[sg.vertices] += local


def _supervised_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    tasks,
    subgraphs,
    state: dict,
    config: APGREConfig,
    counter,
    timings,
    health: RunHealth,
) -> list:
    """Process-parallel BC phase behind the full degradation ladder.

    Rungs: supervised pool (with its internal per-task retry and
    serial re-run rungs) → full-serial APGRE → plain Brandes.  The
    lower rungs only engage when ``config.fallback`` is set; otherwise
    the supervisor's :class:`~repro.errors.ExecutionError` propagates.
    """
    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )
    try:
        results = supervised_map(
            _subgraph_task,
            tasks,
            workers=config.workers,
            state=state,
            config=supervisor,
            health=health,
        )
    except ExecutionError:
        if not config.fallback:
            raise
        health.fallback_path = "serial"
        try:
            bc[:] = 0.0
            _serial_pass(bc, subgraphs, config, counter, timings)
            return []
        except ReproError:
            # last rung: the plain Brandes baseline needs nothing from
            # the decomposition machinery that just failed
            from repro.baselines.brandes import brandes_bc

            health.fallback_path = "brandes"
            bc[:] = brandes_bc(graph)
            return []
    for idx, local in results:
        bc[subgraphs[idx].vertices] += local
    return results


def _batched_pool_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    tasks,
    weights,
    subgraphs,
    units,
    config: APGREConfig,
    counter,
    timings,
    health: RunHealth,
    contributions=None,
) -> None:
    """Batched-engine BC phase behind the degradation ladder.

    Same degradation ladder as :func:`_supervised_pass`, but root-slice
    tasks run on a batched execution engine — the persistent
    shared-memory process pool by default, or whatever engine
    ``contributions`` names (the ``backend=`` dispatch passes
    :attr:`~repro.parallel.backends.ExecutionBackend.contributions`
    here, e.g. the in-process worker threads of
    :mod:`repro.parallel.threaded`).  Either way workers accumulate
    batched deltas into score rows instead of pickling an ``(n,)``
    vector per task — and, unlike the pickling pool, the per-task edge
    tallies come back exactly, so ``stats.edges_traversed`` aggregates
    across workers just as a serial run would count it.
    """
    from repro.core.batched_subgraph import bc_subgraph_batched

    if contributions is None:
        from repro.parallel.batched_pool import _pooled_contributions

        contributions = _pooled_contributions

    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )

    def compute(task_id: int):
        upos, lo, hi = tasks[task_id]
        index, shard = units[upos]
        sg = subgraphs[index]
        local_counter = WorkCounter()
        if shard >= 0:
            local = _unit_scores(sg, shard, config, local_counter)
            return sg.vertices, local, _counter_triple(local_counter)
        if config.eliminate_pendants:
            all_roots = sg.roots
        else:
            all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
        local = bc_subgraph_batched(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=local_counter,
            roots=all_roots[lo:hi],
            batch_size=config.batch_size or "auto",
            workers=config.workers,
            compress=config.compress,
            kernel=config.kernel,
        )
        return sg.vertices, local, _counter_triple(local_counter)

    try:
        total, edge_total, _ = contributions(
            compute,
            weights,
            n=graph.n,
            workers=config.workers,
            steal=config.steal,
            config=supervisor,
            health=health,
        )
    except ExecutionError:
        if not config.fallback:
            raise
        health.fallback_path = "serial"
        try:
            bc[:] = 0.0
            _serial_pass(bc, subgraphs, config, counter, timings)
            return
        except ReproError:
            from repro.baselines.brandes import brandes_bc

            health.fallback_path = "brandes"
            bc[:] = brandes_bc(graph)
            return
    bc += total
    merge_examined(counter, edge_total)


def _cached_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    partition: Partition,
    config: APGREConfig,
    store,
    counter,
    stats: APGREStats,
) -> Optional[RunHealth]:
    """Cache-aware BC phase: replay hits, recompute and store misses.

    Every work unit — a whole sub-graph, or one shard task of a
    sharded sub-graph — is keyed by its content fingerprint (local
    edges + incoming α/β/γ summaries —
    :mod:`repro.cache.fingerprint`; shard units add the shard id and
    threshold under their own domain —
    :mod:`repro.shard.fingerprint`).  Hits merge their stored local
    vectors and report their stored tallies as
    ``stats.edges_replayed``; misses are recomputed — fanned out over
    the execution backend named by ``config.backend`` when one is set,
    else the shared-memory batched pool for ``parallel="processes"``,
    a thread pool for ``"threads"``, serially otherwise — and their
    freshly computed vectors and *exact* tallies are stored.  Store
    writes happen only in the parent, after the pool's poisoned-row
    recovery (or the thread run's tree reduction), so a worker killed
    mid-recompute can never commit a poisoned cache entry.
    """
    subgraphs = partition.subgraphs
    units = _expand_units(subgraphs, config)
    keys = [_unit_key(subgraphs[i], s, config) for i, s in units]
    misses: List[int] = []
    for upos, (index, shard) in enumerate(units):
        sg = subgraphs[index]
        entry = store.get(keys[upos])
        if entry is not None and entry.scores.size == sg.num_vertices:
            bc[sg.vertices] += entry.scores
            stats.edges_replayed += entry.edges
            stats.subgraphs_replayed += 1
        else:
            misses.append(upos)
    stats.subgraphs_recomputed = len(misses)
    if not misses:
        return None

    def commit(upos: int, local: np.ndarray, edges: int) -> None:
        store.put(keys[upos], local, edges)

    return _ladder_recompute(
        graph, bc, subgraphs, units, misses, config, counter, stats,
        commit,
    )


def _ladder_recompute(
    graph: CSRGraph,
    bc: np.ndarray,
    subgraphs,
    units,
    misses,
    config: APGREConfig,
    counter,
    stats: APGREStats,
    commit,
    health: Optional[RunHealth] = None,
) -> Optional[RunHealth]:
    """Recompute missed units whole-unit-at-a-time, behind the ladder.

    Shared by the cached and journaled passes: each completed unit's
    full local vector and exact edge tally reach the
    ``commit(unit_pos, local, edges)`` callback *parent-side only*
    (for the engine paths, after the pool's poisoned-slot recovery or
    the thread run's tree reduction), which persists them to the store
    and/or the run journal — a worker thread never touches the store
    or the journal.  ``misses`` indexes ``units``.  Rungs mirror
    :func:`_supervised_pass`: engine → serial → Brandes (the Brandes
    rung wipes the replay/resume bookkeeping, since the scores no
    longer decompose per unit).
    """
    contributions = None
    if config.backend is not None and config.workers > 1:
        from repro.parallel.backends import resolve_backend

        contributions = resolve_backend(config.backend).contributions
    if contributions is not None or (
        config.parallel == "processes" and config.workers > 1
    ):
        if health is None:
            health = RunHealth()
        try:
            _pool_recompute(
                bc, subgraphs, units, misses, config, counter, health,
                commit, contributions=contributions,
            )
            return health
        except ExecutionError:
            if not config.fallback:
                raise
            health.fallback_path = "serial"
            try:
                _serial_recompute(
                    bc, subgraphs, units, misses, config, counter, commit
                )
            except ReproError:
                from repro.baselines.brandes import brandes_bc

                health.fallback_path = "brandes"
                bc[:] = brandes_bc(graph)
                # replay bookkeeping no longer describes the scores
                stats.edges_replayed = 0
                stats.subgraphs_replayed = 0
                stats.edges_resumed = 0
                stats.subgraphs_resumed = 0
            return health
    if config.parallel == "threads" and config.workers > 1:
        _thread_recompute(
            bc, subgraphs, units, misses, config, counter, commit
        )
        return health
    _serial_recompute(bc, subgraphs, units, misses, config, counter, commit)
    return health


def _serial_recompute(
    bc, subgraphs, units, misses, config: APGREConfig, counter, commit
) -> None:
    """Serial miss loop (also the cached/journaled fallback rung)."""
    costs = [
        _unit_weight(subgraphs[units[u][0]], units[u][1], config)
        for u in misses
    ]
    for idx in lpt_order(costs):
        upos = misses[idx]
        index, shard = units[upos]
        sg = subgraphs[index]
        tally = WorkCounter()
        local = _unit_scores(sg, shard, config, tally)
        # committed replay tallies are direction-blind totals, so a
        # later replay reports the same examined count whatever kernel
        # recomputed the entry
        commit(upos, local, tally.examined)
        bc[sg.vertices] += local
        _fold_tally(counter, tally)


def _thread_recompute(
    bc, subgraphs, units, misses, config: APGREConfig, counter, commit
) -> None:
    """Thread-pool miss recomputation (one whole unit per task).

    Commits happen on the caller's thread as results stream back in
    completion order, so the store/journal writers never race.
    """
    costs = [
        _unit_weight(subgraphs[units[u][0]], units[u][1], config)
        for u in misses
    ]
    miss_order = [misses[i] for i in lpt_order(costs)]

    def run_one(upos: int):
        index, shard = units[upos]
        sg = subgraphs[index]
        tally = WorkCounter()
        local = _unit_scores(sg, shard, config, tally)
        return upos, local, tally

    for upos, local, tally in thread_map(
        run_one, miss_order, workers=config.workers
    ):
        sg = subgraphs[units[upos][0]]
        commit(upos, local, tally.examined)
        bc[sg.vertices] += local
        _fold_tally(counter, tally)


def _pool_recompute(
    bc,
    subgraphs,
    units,
    misses,
    config: APGREConfig,
    counter,
    health: RunHealth,
    commit,
    contributions=None,
) -> None:
    """Fan missed units out over a batched execution engine.

    Missed whole-sub-graph units are chunked into root slices exactly
    like a cache-less ``parallel="processes"`` run (LPT order,
    ``workers``/``steal`` compose unchanged) and shard units run one
    task each, but the engine — the shared-memory pool by default, or
    the one ``contributions`` names (the ``backend=`` dispatch) —
    accumulates into a *concatenated local coordinate space*: each
    missed unit owns a contiguous slice of the score rows, so the
    parent gets every unit's complete local vector back and can commit
    it, which the global-sum layout of :func:`_batched_pool_pass`
    cannot provide.  Per-batch edge tallies come back exactly and are
    summed per unit, so committed entries replay the same tally a
    serial run would count.
    """
    if contributions is None:
        from repro.parallel.batched_pool import _pooled_contributions

        contributions = _pooled_contributions

    miss_units = [units[u] for u in misses]
    miss_sgs = [subgraphs[i] for i, _s in miss_units]
    offsets = np.zeros(len(miss_units) + 1, dtype=np.int64)
    np.cumsum([sg.num_vertices for sg in miss_sgs], out=offsets[1:])
    tasks, weights = _make_tasks(subgraphs, miss_units, config)

    def compute(task_id: int):
        mi, lo, hi = tasks[task_id]
        _index, shard = miss_units[mi]
        sg = miss_sgs[mi]
        tally = WorkCounter()
        if shard >= 0:
            local = _unit_scores(sg, shard, config, tally)
        else:
            local = _unit_scores(sg, shard, config, tally, lo, hi)
        verts = np.arange(offsets[mi], offsets[mi] + sg.num_vertices)
        return verts, local, _counter_triple(tally)

    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )
    concat, edge_total, batch_edges = contributions(
        compute,
        weights,
        n=int(offsets[-1]),
        workers=config.workers,
        steal=config.steal,
        config=supervisor,
        health=health,
    )
    merge_examined(counter, edge_total)
    # batch_edges carries per-batch examined TOTALS (push + pull), so
    # the committed per-unit replay tallies are direction-blind
    per_unit_edges = np.zeros(len(miss_units), dtype=np.int64)
    for task_id, (mi, _lo, _hi) in enumerate(tasks):
        per_unit_edges[mi] += batch_edges[task_id]
    for mi, sg in enumerate(miss_sgs):
        local = concat[offsets[mi] : offsets[mi + 1]]
        commit(misses[mi], local, int(per_unit_edges[mi]))
        bc[sg.vertices] += local


def _journaled_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    partition: Partition,
    config: APGREConfig,
    store,
    counter,
    stats: APGREStats,
) -> RunHealth:
    """Journal-aware BC phase: replay the journal, recompute the rest.

    Mirrors :func:`_cached_pass`, with the run journal
    (:mod:`repro.journal`) as the durability layer underneath:

    1. ``begin`` opens (or, with ``resume=True``, verifies and
       replays) the journal in ``config.journal_dir``; a fingerprint
       mismatch raises :class:`~repro.errors.JournalError` before any
       BC work starts.
    2. Journal-replayed sub-graphs merge their durable local vectors
       (``stats.subgraphs_resumed`` / ``edges_resumed``).
    3. With a cache configured, remaining sub-graphs consult the store
       next; hits are journaled too, so the resume contract never
       depends on cache warmth.
    4. The rest recompute through :func:`_ladder_recompute`; every
       completed contribution is committed to the journal (and store)
       parent-side, after the pool's poisoned-slot recovery.

    A :class:`KeyboardInterrupt` (SIGINT, or the CLI's SIGTERM
    translation) or an :class:`~repro.errors.ExecutionError` with
    ``fallback=False`` finalises the journal as a *resumable partial
    result* before re-raising — the error message names the journal
    directory so the operator knows ``--resume`` will pick the run
    back up.
    """
    from repro.journal import RunJournal, run_fingerprint

    subgraphs = partition.subgraphs
    journal = RunJournal(config.journal_dir)
    resumed = journal.begin(
        run_fingerprint(graph, config), resume=config.resume
    )
    health = RunHealth()
    health.journal_resumable = bool(resumed)

    units = _expand_units(subgraphs, config)
    slots = [
        index if shard < 0 else (index + 1) * _SLOT_BASE + shard
        for index, shard in units
    ]
    todo: List[int] = []
    for upos, (index, shard) in enumerate(units):
        sg = subgraphs[index]
        entry = resumed.get(slots[upos])
        if entry is not None and entry.scores.size == sg.num_vertices:
            bc[sg.vertices] += entry.scores
            stats.edges_resumed += entry.edges
            stats.subgraphs_resumed += 1
        else:
            todo.append(upos)

    keys = None
    if store is not None:
        keys = [_unit_key(subgraphs[i], s, config) for i, s in units]
        misses: List[int] = []
        for upos in todo:
            sg = subgraphs[units[upos][0]]
            entry = store.get(keys[upos])
            if entry is not None and entry.scores.size == sg.num_vertices:
                bc[sg.vertices] += entry.scores
                stats.edges_replayed += entry.edges
                stats.subgraphs_replayed += 1
                journal.record_contribution(
                    slots[upos], entry.scores, entry.edges
                )
            else:
                misses.append(upos)
        todo = misses
    stats.subgraphs_recomputed = len(todo)

    def commit(upos: int, local: np.ndarray, edges: int) -> None:
        if store is not None:
            store.put(keys[upos], local, edges)
        journal.record_contribution(slots[upos], local, edges)

    try:
        if todo:
            _ladder_recompute(
                graph, bc, subgraphs, units, todo, config, counter,
                stats, commit, health,
            )
    except KeyboardInterrupt:
        journal.finalize("interrupted")
        health.interrupted = True
        health.journal_records = journal.records_written
        health.journal_resumable = True
        raise
    except ExecutionError as exc:
        # fallback=False: surface the failure, but as a *resumable* one
        journal.finalize("partial")
        health.journal_records = journal.records_written
        health.journal_resumable = True
        durable = journal.records_written + stats.subgraphs_resumed
        raise type(exc)(
            f"{exc} [{durable} contribution(s) journaled in "
            f"{config.journal_dir}; rerun with resume=True / --resume "
            f"to continue from them]"
        ) from exc
    except BaseException:
        journal.finalize("partial")
        raise
    journal.finalize(
        "partial" if health.fallback_path == "brandes" else "complete"
    )
    health.journal_records = journal.records_written
    return health


def apgre_bc(
    graph: CSRGraph,
    *,
    threshold: Optional[int] = None,
    parallel: str = "serial",
    backend: Optional[str] = None,
    workers: int = 1,
    eliminate_pendants: bool = True,
    alpha_beta_method: str = "auto",
    timeout: Optional[float] = None,
    max_retries: int = 2,
    fallback: bool = True,
    batch_size=None,
    parallel_batched: bool = False,
    steal: bool = True,
    cache=None,
    cache_dir=None,
    compress: bool = False,
    journal_dir=None,
    resume: bool = False,
    shard: bool = False,
    shard_max_size: Optional[int] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Exact BC via APGRE — the convenience entry point.

    Equivalent to ``apgre_bc_detailed(graph, APGREConfig(...)).scores``;
    see :class:`repro.core.config.APGREConfig` for the options
    (``timeout``/``max_retries``/``fallback`` set the supervision
    policy of the parallel engines; ``batch_size`` routes each
    sub-graph's roots through the multi-source batched kernel;
    ``backend`` picks the batched execution engine —
    ``"threads"``/``"processes"``/``"serial"``/``"auto"``, see
    :mod:`repro.parallel.backends` and docs/PERFORMANCE.md;
    ``parallel_batched`` is the legacy spelling of
    ``backend="processes"`` on the persistent shared-memory pool,
    with ``steal`` toggling work stealing;
    ``cache``/``cache_dir`` enable the decomposition-aware
    contribution cache — see :mod:`repro.cache` and docs/CACHING.md;
    ``compress`` runs each sub-graph through the structural
    compression ladder first — see :mod:`repro.compress` and
    docs/COMPRESSION.md; ``journal_dir``/``resume`` enable the
    crash-safe run journal and checkpoint/resume — see
    :mod:`repro.journal` and docs/ROBUSTNESS.md; ``shard``/
    ``shard_max_size`` split over-threshold sub-graphs along vertex
    separators into independently scheduled shard tasks with exact
    boundary correction — see :mod:`repro.shard` and
    docs/SHARDING.md; ``kernel`` names the compute kernel for the
    batched traversals and implies ``batch_size="auto"`` — see
    :mod:`repro.graph.kernels` and docs/KERNELS.md).
    """
    kwargs = dict(
        parallel=parallel,
        backend=backend,
        workers=workers,
        eliminate_pendants=eliminate_pendants,
        alpha_beta_method=alpha_beta_method,
        timeout=timeout,
        max_retries=max_retries,
        fallback=fallback,
        batch_size=batch_size,
        parallel_batched=parallel_batched,
        steal=steal,
        cache=cache,
        cache_dir=cache_dir,
        compress=compress,
        journal_dir=journal_dir,
        resume=resume,
        shard=shard,
        kernel=kernel,
    )
    if threshold is not None:
        kwargs["threshold"] = threshold
    if shard_max_size is not None:
        kwargs["shard_max_size"] = shard_max_size
    return apgre_bc_detailed(graph, APGREConfig(**kwargs)).scores
