#!/usr/bin/env python
"""Tour of the extension APIs beyond the paper's core algorithm.

1. **Edge betweenness** — the quantity classic Girvan–Newman removes;
   finds the inter-community bridge edge of a barbell graph.
2. **Weighted BC** — Dijkstra-based Brandes; shows how congestion
   weights reroute centrality on a ring road.
3. **Adaptive sampling** — Bader et al.'s early-stopping estimator for
   a single vertex's centrality.
4. **Score conventions** — normalisation to [0, 1] and networkx
   interop.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro import apgre_bc, from_edges
from repro.baselines import (
    adaptive_bc,
    edge_betweenness_bc,
    undirected_edge_scores,
    weighted_brandes_bc,
)
from repro.core.result import normalize_scores, to_networkx_convention
from repro.generators import barbell_graph


def edge_bc_demo() -> None:
    print("=== 1. edge betweenness: find the barbell bridge ===")
    g = barbell_graph(5, 2)  # two K5s joined by a 2-edge path
    arc_scores = edge_betweenness_bc(g)
    edges = undirected_edge_scores(g, arc_scores)
    (u, v), score = max(edges.items(), key=lambda kv: kv[1])
    print(f"highest-betweenness edge: {u}-{v} (score {score:.0f})")
    print(f"that edge is on the bridge path: {4 <= u <= 6 and 4 <= v <= 7}")


def weighted_demo() -> None:
    print("\n=== 2. weighted BC: congestion reroutes centrality ===")
    # a ring of 8 intersections
    ring = [(i, (i + 1) % 8) for i in range(8)]
    g = from_edges(ring)
    flat = weighted_brandes_bc(g)  # unit weights: perfectly symmetric
    print(f"unit weights   : all BC equal -> {np.unique(flat.round(6))}")
    src, dst = g.arcs()
    weights = np.ones(g.num_arcs)
    jammed = ((src == 0) & (dst == 1)) | ((src == 1) & (dst == 0))
    weights[jammed] = 9.0  # edge 0-1 is congested
    rerouted = weighted_brandes_bc(g, weights)
    print(
        "congested 0-1  : BC(5) grows to "
        f"{rerouted[5]:.1f} (was {flat[5]:.1f}) as traffic detours"
    )


def adaptive_demo() -> None:
    print("\n=== 3. adaptive sampling: cheap single-vertex estimates ===")
    hub_and_spokes = [(0, i) for i in range(1, 60)]
    g = from_edges(hub_and_spokes)
    exact = apgre_bc(g)[0]
    est = adaptive_bc(g, 0, c=2.0, seed=7)
    print(
        f"hub BC exact = {exact:.0f}; adaptive estimate = "
        f"{est.estimate:.0f} after only {est.samples}/{g.n} pivots "
        f"(converged={est.converged})"
    )


def conventions_demo() -> None:
    print("\n=== 4. score conventions ===")
    g = from_edges([(0, 1), (1, 2), (2, 3), (1, 3)])
    raw = apgre_bc(g)
    print(f"raw (ordered pairs)     : {raw}")
    print(f"networkx unnormalised   : {to_networkx_convention(raw, directed=False)}")
    print(f"normalised to [0, 1]    : {normalize_scores(raw).round(3)}")


def main() -> None:
    edge_bc_demo()
    weighted_demo()
    adaptive_demo()
    conventions_demo()


if __name__ == "__main__":
    main()
