"""Tests for the repro-bc command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.generators.structured import paper_example_graph
from repro.graph.build import from_edges
from repro.io import write_edgelist


@pytest.fixture
def graph_file(tmp_path):
    g = from_edges([(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)])
    path = tmp_path / "g.txt"
    write_edgelist(g, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro-bc" in capsys.readouterr().out

    def test_compute_defaults(self):
        args = build_parser().parse_args(["compute", "g.txt"])
        assert args.algorithm == "APGRE"
        assert args.top == 10
        assert not args.directed


class TestCompute:
    def test_compute_apgre(self, graph_file, capsys):
        assert main(["compute", graph_file]) == 0
        out = capsys.readouterr().out
        assert "APGRE BC" in out
        assert "vertex" in out

    def test_compute_serial_matches(self, graph_file, capsys):
        main(["compute", graph_file, "--algorithm", "serial", "--top", "2"])
        out = capsys.readouterr().out
        # vertices 1 and 3 are the most central in the fixture graph
        body = [l.split() for l in out.splitlines()[2:]]
        top_vertices = {int(row[0]) for row in body}
        assert top_vertices == {1, 3}

    def test_compute_directed_flag(self, tmp_path, capsys):
        g = paper_example_graph()
        path = tmp_path / "pe.txt"
        write_edgelist(g, path)
        assert main(["compute", str(path), "--directed"]) == 0


class TestPartition:
    def test_partition_output(self, graph_file, capsys):
        assert main(["partition", graph_file]) == 0
        out = capsys.readouterr().out
        assert "#SG=" in out
        assert "V/G.V" in out

    def test_partition_threshold(self, graph_file, capsys):
        assert main(["partition", graph_file, "--threshold", "0"]) == 0
        assert "threshold=0" in capsys.readouterr().out


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig10" in out

    def test_run_one_experiment(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_GRAPHS", raising=False)
        code = main(
            [
                "bench",
                "table1",
                "--scale",
                "0.25",
                "--graphs",
                "USA-roadBAY",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "USA-roadBAY" in out


class TestSuite:
    def test_suite_listing(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        monkeypatch.setenv("REPRO_GRAPHS", "Email-Enron")
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "Email-Enron" in out
        assert "scale=0.25" in out


class TestInfo:
    def test_info_output(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "articulation points" in out
        assert "directed             : no" in out

    def test_info_directed(self, tmp_path, capsys):
        g = paper_example_graph()
        path = tmp_path / "pe.txt"
        write_edgelist(g, path)
        assert main(["info", str(path), "--directed"]) == 0
        out = capsys.readouterr().out
        assert "directed             : yes" in out
        assert "articulation points  : 3" in out
        assert "pendant vertices     : 2" in out


class TestConvert:
    def test_text_to_text(self, graph_file, tmp_path, capsys):
        target = tmp_path / "g.gr"
        assert main(["convert", graph_file, str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.io import load_graph, read_dimacs

        assert read_dimacs(target, directed=False) == load_graph(
            graph_file, directed=False
        )

    def test_text_to_npz_roundtrip(self, graph_file, tmp_path, capsys):
        npz = tmp_path / "g.npz"
        assert main(["convert", graph_file, str(npz)]) == 0
        back = tmp_path / "back.txt"
        assert main(["convert", str(npz), str(back)]) == 0
        from repro.io import load_graph

        assert load_graph(back, directed=False) == load_graph(
            graph_file, directed=False
        )

    def test_explicit_format(self, graph_file, tmp_path):
        target = tmp_path / "odd_name"
        assert main(
            ["convert", graph_file, str(target), "--to", "matrixmarket"]
        ) == 0
        from repro.io import read_matrix_market

        assert read_matrix_market(target).n > 0


class TestCompare:
    def test_compare_exact_algorithms(self, graph_file, capsys):
        assert main(["compare", graph_file]) == 0
        out = capsys.readouterr().out
        assert "APGRE vs serial" in out
        assert "exact match      : yes" in out

    def test_compare_custom_pair(self, graph_file, capsys):
        code = main(
            ["compare", graph_file, "--reference", "serial",
             "--candidate", "treefold"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "treefold vs serial" in out
        assert "exact match      : yes" in out


class TestBenchSave:
    def test_save_results_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_GRAPHS", raising=False)
        out_file = tmp_path / "run.json"
        code = main(
            ["bench", "table1", "--scale", "0.25",
             "--graphs", "USA-roadBAY", "--save", str(out_file)]
        )
        assert code == 0
        from repro.bench.persistence import load_results

        loaded = load_results(out_file)
        assert loaded[0].exp_id == "Table 1"
        assert "saved 1 experiment" in capsys.readouterr().out


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "[ok]" in out


class TestErrorHandling:
    """ReproError/OSError exit with a clean one-liner, not a traceback."""

    def test_malformed_graph_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.mtx"
        bad.write_text("%%MatrixMarket nonsense\n1 2\n")
        code = main(["compute", str(bad)])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro-bc: error:")
        assert "Traceback" not in captured.err

    def test_missing_file_exits_nonzero(self, capsys):
        code = main(["info", "/nonexistent/graph.txt"])
        assert code == 2
        assert "repro-bc: error:" in capsys.readouterr().err

    def test_unknown_algorithm_exits_nonzero(self, graph_file, capsys):
        code = main(["compute", graph_file, "--algorithm", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err


class TestCacheFlags:
    def test_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["compute", "g.txt", "--cache", "--cache-dir", "/tmp/c",
             "--delta", "d.txt"]
        )
        assert args.cache
        assert args.cache_dir == "/tmp/c"
        assert args.delta == "d.txt"

    def test_compute_with_cache(self, graph_file, capsys):
        assert main(["compute", graph_file, "--cache"]) == 0
        assert "APGRE BC" in capsys.readouterr().out

    def test_compute_delta(self, graph_file, tmp_path, capsys):
        delta = tmp_path / "delta.txt"
        delta.write_text("# widen the 1-3 block\n+ 0 3\n- 2 3\n")
        code = main(["compute", graph_file, "--delta", str(delta)])
        assert code == 0
        out = capsys.readouterr().out
        assert "+1/-1 edges" in out
        assert "incremental:" in out

    def test_cache_requires_apgre(self, graph_file, capsys):
        code = main(
            ["compute", graph_file, "--algorithm", "serial", "--cache"]
        )
        assert code == 2
        assert "APGRE" in capsys.readouterr().err

    def test_malformed_delta_exits_two(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad_delta.txt"
        bad.write_text("+ 0 1\n* 2 3\n")
        code = main(["compute", graph_file, "--delta", str(bad)])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro-bc: error:")
        assert "bad_delta.txt:2" in captured.err
        assert "Traceback" not in captured.err

    def test_out_of_range_delta_exits_two(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "oob_delta.txt"
        bad.write_text("+ 0 99\n")
        code = main(["compute", graph_file, "--delta", str(bad)])
        assert code == 2
        assert "repro-bc: error:" in capsys.readouterr().err


class TestSupervisionFlags:
    def test_compute_flags_parse(self):
        args = build_parser().parse_args(
            ["compute", "g.txt", "--workers", "4", "--timeout", "30",
             "--max-retries", "1", "--no-fallback"]
        )
        assert args.timeout == 30.0
        assert args.max_retries == 1
        assert args.no_fallback

    def test_compute_with_supervised_workers(self, graph_file, capsys):
        code = main(
            ["compute", graph_file, "--workers", "2", "--timeout", "60"]
        )
        assert code == 0
        assert "APGRE BC" in capsys.readouterr().out

    def test_bench_timeout_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TIMEOUT", raising=False)
        import os

        assert main(["bench", "--list", "--timeout", "90"]) == 0
        assert os.environ.pop("REPRO_BENCH_TIMEOUT") == "90.0"
