"""Tests for biconnected components and articulation points vs networkx."""

import numpy as np
import networkx as nx
import pytest

from repro.decompose.articulation import (
    articulation_points,
    biconnected_components,
)
from repro.decompose.bcc_tree import build_block_cut_tree
from repro.errors import PartitionError
from repro.graph.build import from_edges, from_networkx
from repro.graph.ops import to_undirected


class TestArticulationPoints:
    def test_matches_networkx(self, zoo_entry):
        _name, g, nxg = zoo_entry
        und = nxg.to_undirected() if nxg.is_directed() else nxg
        expected = sorted(nx.articulation_points(und))
        assert articulation_points(g).tolist() == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx_random(self, seed):
        nxg = nx.gnm_random_graph(40, 50, seed=seed)
        g = from_networkx(nxg, n=40)
        assert articulation_points(g).tolist() == sorted(
            nx.articulation_points(nxg)
        )

    def test_cycle_has_none(self):
        g = from_edges([(i, (i + 1) % 8) for i in range(8)])
        assert articulation_points(g).size == 0

    def test_path_interior_all(self):
        g = from_edges([(i, i + 1) for i in range(5)])
        assert articulation_points(g).tolist() == [1, 2, 3, 4]

    def test_directed_uses_shadow(self):
        # 0->1->2 directed path: 1 cuts the undirected shadow
        g = from_edges([(0, 1), (1, 2)], directed=True)
        assert articulation_points(g).tolist() == [1]


class TestBiconnectedComponents:
    def test_rejects_directed(self):
        g = from_edges([(0, 1)], directed=True)
        with pytest.raises(PartitionError, match="undirected"):
            biconnected_components(g)

    def test_matches_networkx(self, zoo_entry):
        _name, g, nxg = zoo_entry
        und_nx = nxg.to_undirected() if nxg.is_directed() else nxg
        result = biconnected_components(to_undirected(g))
        ours = sorted(
            sorted(map(tuple, np.sort(edges, axis=1).tolist()))
            for edges in result.component_edges
        )
        theirs = sorted(
            sorted(tuple(sorted(e)) for e in comp)
            for comp in nx.biconnected_component_edges(und_nx)
        )
        assert ours == theirs

    def test_every_edge_in_exactly_one_component(self, und_random):
        result = biconnected_components(und_random)
        seen = {}
        for c, edges in enumerate(result.component_edges):
            for u, v in np.sort(edges, axis=1).tolist():
                assert (u, v) not in seen, "edge in two components"
                seen[(u, v)] = c
        assert len(seen) == und_random.num_undirected_edges

    def test_component_vertices_match_edges(self, und_random):
        result = biconnected_components(und_random)
        for edges, verts in zip(
            result.component_edges, result.component_vertices
        ):
            assert set(verts.tolist()) == set(edges.ravel().tolist())

    def test_isolated_vertices_reported(self):
        g = from_edges([(0, 1)], n=4)
        result = biconnected_components(g)
        assert result.isolated_vertices.tolist() == [2, 3]

    def test_empty_graph(self):
        g = from_edges([], n=3)
        result = biconnected_components(g)
        assert result.num_components == 0
        assert result.isolated_vertices.tolist() == [0, 1, 2]

    def test_single_edge_component(self):
        g = from_edges([(0, 1)])
        result = biconnected_components(g)
        assert result.num_components == 1
        assert result.articulation_points().size == 0

    def test_bridge_separates_components(self):
        # two triangles joined by a bridge
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        result = biconnected_components(g)
        assert result.num_components == 3  # triangle, bridge, triangle
        assert result.articulation_points().tolist() == [2, 3]

    def test_deep_graph_no_recursion_limit(self):
        # a path much longer than the default recursion limit
        n = 5000
        g = from_edges([(i, i + 1) for i in range(n - 1)])
        result = biconnected_components(g)
        assert result.num_components == n - 1


class TestBlockCutTree:
    def test_cut_vertices_have_degree_ge_2(self, und_random):
        tree = build_block_cut_tree(biconnected_components(und_random))
        for a in tree.cut_blocks:
            assert tree.degree_of_cut(a) >= 2

    def test_block_cuts_consistent(self, und_random):
        bcc = biconnected_components(und_random)
        tree = build_block_cut_tree(bcc)
        for c, cuts in enumerate(tree.block_cuts):
            for a in cuts.tolist():
                assert c in tree.cut_blocks[a].tolist()

    def test_tree_acyclic(self):
        # block-cut structure of any graph is a forest: |edges| =
        # |nodes| - |components of the bipartite structure|
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6)]
        )
        bcc = biconnected_components(g)
        tree = build_block_cut_tree(bcc)
        n_nodes = tree.num_blocks + len(tree.cut_blocks)
        n_edges = sum(len(c) for c in tree.block_cuts)
        assert n_edges == n_nodes - 1  # connected graph -> a tree

    def test_block_neighbors(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        # two cycles sharing vertex 2
        bcc = biconnected_components(g)
        tree = build_block_cut_tree(bcc)
        assert tree.num_blocks == 2
        assert tree.block_neighbors(0) == [1]
        assert tree.block_neighbors(1) == [0]


class TestBridges:
    def test_matches_networkx(self, zoo_entry):
        import networkx as nx
        from repro.decompose.articulation import bridges
        from repro.graph.ops import to_undirected

        _name, g, nxg = zoo_entry
        und_nx = nxg.to_undirected() if nxg.is_directed() else nxg
        ours = set(map(tuple, bridges(g).tolist()))
        theirs = {tuple(sorted(e)) for e in nx.bridges(und_nx)}
        assert ours == theirs

    def test_tree_all_edges_are_bridges(self):
        from repro.decompose.articulation import bridges

        g = from_edges([(0, 1), (1, 2), (1, 3), (3, 4)])
        assert bridges(g).shape == (4, 2)

    def test_cycle_has_none(self):
        from repro.decompose.articulation import bridges

        g = from_edges([(i, (i + 1) % 5) for i in range(5)])
        assert bridges(g).shape == (0, 2)

    def test_sorted_output(self):
        from repro.decompose.articulation import bridges

        g = from_edges([(3, 4), (0, 1), (1, 2)], n=5)
        arr = bridges(g)
        assert arr.tolist() == sorted(arr.tolist())
