"""Measurement plumbing shared by all experiments.

``time_algorithm`` runs one (algorithm, graph) pair, validates the
scores against the cached serial reference (a benchmark that silently
computes the wrong thing is worse than no benchmark) and returns
timing + MTEPS. Results are memoised per process so Table 2, Table 3
and Figure 6 — three views of the same measurement — run the
underlying computation once.

Runs can be bounded by a per-run wall-clock budget (the ``timeout``
argument, or ``REPRO_BENCH_TIMEOUT`` seconds in the environment):
the algorithm then executes in a supervised forked child
(:func:`repro.parallel.supervisor.call_with_timeout`) and a run that
exceeds the budget — or whose worker dies — degrades to the paper's
'-' cell instead of hanging or killing the whole benchmark sweep.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.registry import get_algorithm
from repro.errors import AlgorithmError, BenchmarkError, ExecutionError
from repro.graph.csr import CSRGraph
from repro.metrics.teps import graph_mteps
from repro.parallel.supervisor import call_with_timeout

__all__ = ["MeasuredRun", "ExperimentResult", "time_algorithm", "clear_cache"]


def _env_timeout() -> Optional[float]:
    """Per-run budget from ``REPRO_BENCH_TIMEOUT`` (seconds), if set."""
    raw = os.environ.get("REPRO_BENCH_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise BenchmarkError(
            f"REPRO_BENCH_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise BenchmarkError(
            f"REPRO_BENCH_TIMEOUT must be > 0, got {value:g}"
        )
    return value


@dataclass
class MeasuredRun:
    """One timed algorithm execution."""

    algorithm: str
    graph_name: str
    seconds: float
    mteps: float
    scores: np.ndarray


@dataclass
class ExperimentResult:
    """A rendered-ready experiment outcome (one table or figure)."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: str = ""

    def render(self) -> str:
        from repro.bench.report import render_table

        return render_table(
            f"{self.exp_id}: {self.title}",
            self.headers,
            self.rows,
            notes=self.notes,
        )


_RUN_CACHE: Dict[Tuple[str, str, int], MeasuredRun] = {}
_REFERENCE: Dict[str, np.ndarray] = {}


def clear_cache() -> None:
    """Drop memoised runs (tests use this for isolation)."""
    _RUN_CACHE.clear()
    _REFERENCE.clear()


def time_algorithm(
    algorithm: str,
    graph: CSRGraph,
    *,
    graph_name: str,
    repeat: int = 1,
    verify: bool = True,
    timeout: Optional[float] = None,
    **kwargs,
) -> Optional[MeasuredRun]:
    """Run and time one algorithm on one graph (best of ``repeat``).

    Returns ``None`` when the algorithm declines the input (the
    paper's '-' cells — e.g. ``async`` on directed graphs) *or* when
    a ``timeout`` (argument or ``REPRO_BENCH_TIMEOUT``) elapses or
    the supervised run dies — a misbehaving algorithm degrades one
    cell, never the sweep. Raises :class:`BenchmarkError` if an exact
    algorithm disagrees with the serial reference.
    """
    key = (algorithm, graph_name, graph.n)
    if key in _RUN_CACHE and not kwargs:
        return _RUN_CACHE[key]
    fn = get_algorithm(algorithm)
    if timeout is None:
        timeout = _env_timeout()
    best = float("inf")
    scores = None
    try:
        for _ in range(max(repeat, 1)):
            t0 = time.perf_counter()
            scores = call_with_timeout(fn, graph, timeout=timeout, **kwargs)
            best = min(best, time.perf_counter() - t0)
    except AlgorithmError:
        return None  # unsupported input: the paper's '-' cell
    except ExecutionError:
        return None  # timed out / crashed under supervision: '-' cell
    assert scores is not None
    run = MeasuredRun(
        algorithm=algorithm,
        graph_name=graph_name,
        seconds=best,
        mteps=graph_mteps(graph, best),
        scores=scores,
    )
    if verify:
        if graph_name not in _REFERENCE:
            if algorithm == "serial":
                _REFERENCE[graph_name] = scores
            else:
                _REFERENCE[graph_name] = get_algorithm("serial")(graph)
        ref = _REFERENCE[graph_name]
        if not np.allclose(scores, ref, rtol=1e-6, atol=1e-6):
            worst = float(np.abs(scores - ref).max())
            raise BenchmarkError(
                f"{algorithm} disagrees with serial reference on "
                f"{graph_name} (max abs diff {worst:.3g})"
            )
    if not kwargs:
        _RUN_CACHE[key] = run
    return run
