"""Strongly connected components and condensation (directed substrate).

Directed analogues of the component machinery: Tarjan's SCC algorithm
(iterative, like the biconnectivity pass) and the condensation DAG.
Used by the test oracles for directed reachability reasoning and by
downstream users analysing directed suite graphs (e.g. the email
analogues, whose pendant sources are exactly the singleton SCCs with
no in-arcs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["SCCResult", "strongly_connected_components", "condensation"]


@dataclass
class SCCResult:
    """Strongly-connected-component labelling.

    Attributes
    ----------
    labels:
        ``labels[v]`` is the component id of ``v``. Ids are assigned
        in *reverse topological order* of the condensation (Tarjan's
        natural output: a component is numbered when it is popped, so
        every arc between components goes from a higher label to a
        lower one).
    num_components:
        Component count.
    """

    labels: np.ndarray
    num_components: int

    def sizes(self) -> np.ndarray:
        """Component sizes indexed by component id."""
        return np.bincount(self.labels, minlength=self.num_components)

    def largest(self) -> np.ndarray:
        """Vertex ids of the largest SCC."""
        sizes = self.sizes()
        return np.flatnonzero(self.labels == int(np.argmax(sizes)))


def strongly_connected_components(graph: CSRGraph) -> SCCResult:
    """Tarjan's SCC algorithm, iteratively (no recursion limit).

    Undirected graphs are rejected: every undirected component is
    trivially strongly connected, so a silent answer would mask a
    caller bug — use :func:`repro.graph.ops.connected_components`.
    """
    if not graph.directed:
        raise GraphValidationError(
            "strongly_connected_components requires a directed graph; "
            "use connected_components for undirected input"
        )
    n = graph.n
    indptr, indices = graph.out_indptr, graph.out_indices
    index = np.full(n, -1, dtype=np.int64)  # discovery order
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    comp_stack: List[int] = []
    cursor = indptr[:-1].astype(np.int64).copy()
    counter = 0
    num_components = 0

    for root in range(n):
        if index[root] >= 0:
            continue
        dfs = [root]
        index[root] = low[root] = counter
        counter += 1
        comp_stack.append(root)
        on_stack[root] = True
        while dfs:
            v = dfs[-1]
            if cursor[v] < indptr[v + 1]:
                w = int(indices[cursor[v]])
                cursor[v] += 1
                if index[w] < 0:
                    index[w] = low[w] = counter
                    counter += 1
                    comp_stack.append(w)
                    on_stack[w] = True
                    dfs.append(w)
                elif on_stack[w] and index[w] < low[v]:
                    low[v] = index[w]
            else:
                dfs.pop()
                if dfs:
                    u = dfs[-1]
                    if low[v] < low[u]:
                        low[u] = low[v]
                if low[v] == index[v]:
                    while True:
                        w = comp_stack.pop()
                        on_stack[w] = False
                        labels[w] = num_components
                        if w == v:
                            break
                    num_components += 1
    return SCCResult(
        labels=labels.astype(VERTEX_DTYPE), num_components=num_components
    )


def condensation(graph: CSRGraph) -> Tuple[CSRGraph, SCCResult]:
    """The condensation DAG: one vertex per SCC, deduplicated arcs.

    Returns the condensed (directed, acyclic) graph and the SCC
    labelling; condensed vertex ``c`` corresponds to
    ``labels == c``.
    """
    scc = strongly_connected_components(graph)
    src, dst = graph.arcs()
    csrc = scc.labels[src].astype(np.int64)
    cdst = scc.labels[dst].astype(np.int64)
    keep = csrc != cdst
    condensed = CSRGraph.from_arcs(
        scc.num_components, csrc[keep], cdst[keep], directed=True
    )
    return condensed, scc
