"""Divide-and-conquer sharding of dominant biconnected components.

APGRE's coarse-grained parallelism is bounded by the block-cut tree:
one giant top BCC (the common case on social graphs) serialises the
whole run behind a single sub-graph.  This package splits any
sub-graph above a size threshold along *arbitrary* vertex separators —
the generalisation of the paper's articulation-point cuts worked out
by Erdős, Ishakian, Bestavros and Terzi (arXiv:1406.4173) — into k
balanced, content-addressable shards that compute independently and
sum exactly:

* :mod:`repro.shard.separator` — recursive BFS level-set bisection
  producing the shard labelling and the separator set;
* :mod:`repro.shard.plan` — the :class:`ShardPlan`: per-shard
  barrier-BFS tables, correction DAGs and the shard graphs ``H_i``
  (shard interior + separator + weighted boundary multi-arcs);
* :mod:`repro.shard.kernel` — the exact per-shard kernel: home-source
  sweeps on ``H_i`` plus boundary-correction sweeps crediting the
  other shards' interiors, matching :func:`repro.core.bc_subgraph`
  to float64 tolerance;
* :mod:`repro.shard.fingerprint` — content keys making each shard a
  first-class unit of the contribution cache and the run journal.

See docs/SHARDING.md for the separator algorithm, the correction-sweep
math and the composition matrix.
"""

from repro.shard.fingerprint import shard_key
from repro.shard.kernel import bc_subgraph_sharded, shard_task_scores
from repro.shard.plan import ShardPlan, shard_plan
from repro.shard.separator import find_shard_labels

__all__ = [
    "ShardPlan",
    "bc_subgraph_sharded",
    "find_shard_labels",
    "shard_key",
    "shard_plan",
    "shard_task_scores",
]
