"""Integration tests: APGRE equals Brandes, always.

This is the central invariant of the reproduction (DESIGN.md §3). The
tests sweep graph families, configuration toggles and execution modes;
the property-based sweep lives in test_properties.py.
"""

import numpy as np
import networkx as nx
import pytest

from repro.baselines.brandes import brandes_bc, brandes_python_bc
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import AlgorithmError
from repro.generators.structured import paper_example_graph
from repro.generators.suite import analogue_graph, suite_names
from repro.graph.build import from_edges, from_networkx

from tests.conftest import nx_betweenness


def assert_matches_brandes(g, **kwargs):
    ref = brandes_bc(g)
    ours = apgre_bc(g, **kwargs)
    np.testing.assert_allclose(ours, ref, rtol=1e-9, atol=1e-8)


class TestExactness:
    def test_zoo(self, zoo_entry):
        name, g, nxg = zoo_entry
        ref = nx_betweenness(nxg)
        ours = apgre_bc(g)
        np.testing.assert_allclose(ours, ref, rtol=1e-9, atol=1e-8, err_msg=name)

    def test_matches_exact_fraction_brandes(self):
        nxg = nx.gnm_random_graph(25, 45, seed=11)
        g = from_networkx(nxg, n=25)
        exact = brandes_python_bc(g, exact=True)
        np.testing.assert_allclose(apgre_bc(g), exact, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("threshold", [0, 1, 2, 4, 8, 32, 10_000])
    def test_threshold_independence(self, threshold):
        nxg = nx.gnm_random_graph(40, 55, seed=2)
        g = from_networkx(nxg, n=40)
        assert_matches_brandes(g, threshold=threshold)

    @pytest.mark.parametrize("seed", range(5))
    def test_directed_random(self, seed):
        nxg = nx.gnm_random_graph(35, 60, seed=seed, directed=True)
        g = from_networkx(nxg, n=35)
        assert_matches_brandes(g)

    def test_suite_analogues_small(self):
        for name in suite_names():
            g = analogue_graph(name, scale=0.25)
            assert_matches_brandes(g)

    def test_paper_example(self):
        assert_matches_brandes(paper_example_graph())

    def test_trees(self):
        for seed in range(3):
            nxg = nx.random_labeled_tree(30, seed=seed)
            assert_matches_brandes(from_networkx(nxg, n=30))

    def test_disconnected_with_isolates(self):
        nxg = nx.disjoint_union(
            nx.gnm_random_graph(15, 22, seed=1),
            nx.gnm_random_graph(12, 16, seed=2),
        )
        nxg.add_nodes_from([27, 28])
        assert_matches_brandes(from_networkx(nxg, n=29))

    def test_empty_and_tiny(self):
        assert apgre_bc(from_edges([], n=0)).size == 0
        assert apgre_bc(from_edges([], n=3)).tolist() == [0, 0, 0]
        assert apgre_bc(from_edges([(0, 1)])).tolist() == [0, 0]

    def test_undirected_pendant_chains(self):
        # caterpillar + extra chain: exercises the v==s "-1" correction
        edges = [(i, i + 1) for i in range(5)]
        edges += [(2, 6), (2, 7), (3, 8)]
        assert_matches_brandes(from_edges(edges))

    def test_directed_pendant_into_articulation(self):
        # pendant source aimed at a boundary articulation point:
        # exercises the alpha(s) correction in the v==s merge
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 2)]
        assert_matches_brandes(from_edges(edges, directed=True), threshold=0)


class TestConfigToggles:
    def test_no_pendant_elimination(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        assert_matches_brandes(g, eliminate_pendants=False)

    def test_alpha_beta_methods_agree(self, und_random):
        a = apgre_bc(und_random, alpha_beta_method="bfs")
        b = apgre_bc(und_random, alpha_beta_method="tree")
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_invalid_parallel_mode(self):
        with pytest.raises(AlgorithmError, match="parallel"):
            APGREConfig(parallel="gpu")

    def test_invalid_workers(self):
        with pytest.raises(AlgorithmError, match="workers"):
            APGREConfig(workers=0)

    def test_invalid_ab_method(self):
        with pytest.raises(AlgorithmError, match="alpha_beta_method"):
            APGREConfig(alpha_beta_method="magic")

    def test_invalid_threshold(self):
        with pytest.raises(AlgorithmError, match="threshold"):
            APGREConfig(threshold=-3)


class TestParallelModes:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_processes(self, und_random, workers):
        assert_matches_brandes(
            und_random, parallel="processes", workers=workers
        )

    def test_threads(self, dir_random):
        assert_matches_brandes(dir_random, parallel="threads", workers=3)

    def test_processes_directed(self, dir_random):
        assert_matches_brandes(
            dir_random, parallel="processes", workers=2
        )


class TestDetailedResult:
    def test_stats_populated(self, und_random):
        result = apgre_bc_detailed(und_random)
        s = result.stats
        assert s.num_subgraphs >= 1
        assert s.num_sources > 0
        assert s.edges_traversed > 0
        assert s.alpha_beta_method in ("bfs", "tree")
        assert s.timings.total > 0
        fr = s.timings.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_sources_plus_removed_cover_graph(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        result = apgre_bc_detailed(g)
        s = result.stats
        # every vertex is either a BFS source in its sub-graph or a
        # removed pendant; boundary arts are sources in each sub-graph
        assert s.num_sources + s.num_removed_pendants >= g.n

    def test_top_k(self, und_random):
        result = apgre_bc_detailed(und_random)
        top = result.top_k(5)
        assert top.size == 5
        scores = result.scores[top]
        assert (np.diff(scores) <= 1e-12).all()  # descending
        assert scores[0] == result.scores.max()

    def test_partition_reuse(self, und_random):
        partition = graph_partition(und_random)
        compute_alpha_beta(und_random, partition)
        result = apgre_bc_detailed(und_random, partition=partition)
        np.testing.assert_allclose(
            result.scores, brandes_bc(und_random), rtol=1e-9, atol=1e-8
        )
        # partition phase timings stay zero when reusing
        assert result.stats.timings.partition == 0.0

    def test_eliminate_false_source_count(self, und_random):
        full = apgre_bc_detailed(
            und_random, APGREConfig(eliminate_pendants=False)
        )
        assert full.stats.num_sources >= und_random.n


class TestBCSubgraphUnits:
    def test_root_subsets_compose(self, und_random):
        partition = graph_partition(und_random)
        compute_alpha_beta(und_random, partition)
        sg = partition.top
        whole = bc_subgraph(sg)
        half = sg.roots.size // 2
        part1 = bc_subgraph(sg, roots=sg.roots[:half])
        part2 = bc_subgraph(sg, roots=sg.roots[half:])
        np.testing.assert_allclose(part1 + part2, whole, rtol=1e-12)

    def test_empty_subgraph(self):
        g = from_edges([], n=4)
        partition = graph_partition(g)
        for sg in partition.subgraphs:
            assert bc_subgraph(sg).tolist() == [0.0] * sg.num_vertices
