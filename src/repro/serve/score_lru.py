"""LRU of materialised full-graph score vectors, keyed by
``(graph version, config fingerprint)``.

One level above the :class:`~repro.cache.store.ContributionStore`:
the store caches *per-sub-graph* contributions (so a delta recomputes
only dirty BCCs), while this LRU caches the *assembled* final vector
of a (version, config) pair — a repeat query skips decomposition,
replay and assembly entirely and is served straight from memory.

Entries are immutable (the arrays are marked read-only, like store
entries) and carry the metadata of the run that produced them — the
replay/traversal edge split and the producing request's health — so a
cache hit can still answer ``/stats``-grade questions about where its
numbers came from.  Eviction is plain LRU bounded by entry count and
total score bytes; retiring a graph version purges its keys eagerly
(:meth:`ScoreLRU.purge_version`) since no request can ever name it
again.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ServeError
from repro.types import SCORE_DTYPE

__all__ = ["ScoreEntry", "ScoreLRU"]

#: Default budgets: a served graph rarely needs more than a handful of
#: config variants per version; 64 vectors / 512 MB is roomy for the
#: "few hot configs x few live versions" shape the daemon produces.
_DEFAULT_MAX_ENTRIES = 64
_DEFAULT_MAX_BYTES = 512 * 1024 * 1024


@dataclass
class ScoreEntry:
    """One materialised score vector plus its producing-run metadata."""

    scores: np.ndarray
    version: int
    fingerprint: str
    meta: Dict = field(default_factory=dict)


class ScoreLRU:
    """Bounded LRU of final score vectors for the serving daemon."""

    def __init__(
        self,
        *,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        max_bytes: int = _DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ServeError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ServeError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Tuple[int, str], ScoreEntry]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.purged = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, version: int, fingerprint: str) -> Optional[ScoreEntry]:
        """The entry for one (version, config) pair, or ``None``."""
        key = (int(version), str(fingerprint))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self,
        version: int,
        fingerprint: str,
        scores: np.ndarray,
        meta: Optional[Dict] = None,
    ) -> ScoreEntry:
        """Admit one vector (copied, frozen); returns the entry."""
        scores = np.array(scores, dtype=SCORE_DTYPE, copy=True)
        scores.flags.writeable = False
        entry = ScoreEntry(
            scores=scores,
            version=int(version),
            fingerprint=str(fingerprint),
            meta=dict(meta or {}),
        )
        key = (entry.version, entry.fingerprint)
        with self._lock:
            self.puts += 1
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.scores.nbytes
            self._entries[key] = entry
            self._bytes += entry.scores.nbytes
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                if len(self._entries) == 1:
                    break  # one oversized vector still gets served
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.scores.nbytes
                self.evictions += 1
        return entry

    def purge_version(self, version: int) -> int:
        """Drop every entry of a retired graph version; returns count."""
        version = int(version)
        with self._lock:
            doomed = [k for k in self._entries if k[0] == version]
            for key in doomed:
                entry = self._entries.pop(key)
                self._bytes -= entry.scores.nbytes
            self.purged += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict:
        """Counters + occupancy as one flat dict (the ``/stats`` view)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "purged": self.purged,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }
