"""α/β counting for boundary articulation points (paper §3.1/§4).

For each sub-graph ``SGi`` and each of its boundary articulation
points ``a``:

* ``α_SGi(a)`` — "the number of vertices which a can reach without
  passing through SGi in G", obtained by a *blocked BFS* from ``a``
  that may not enter ``SGi \\ {a}``;
* ``β_SGi(a)`` — "the number of vertices which can reach a ... without
  passing through SGi in G", obtained by a blocked *reverse* BFS.

Two implementations are provided:

``method="bfs"``
    The paper's direct method (one blocked BFS + one blocked reverse
    BFS per (sub-graph, articulation-point) pair). Works for directed
    and undirected graphs; cost O(Σ|A_sgi| · (V+E)).
``method="tree"``
    An O(V+E) dynamic program over the sub-graph-level block-cut tree,
    valid for *undirected* graphs where reachability-away-from-``SGi``
    is exactly the weight of the tree side hanging off ``a`` (and
    α == β by symmetry). This is this reproduction's main algorithmic
    extension; equivalence with the BFS method is asserted by property
    tests and quantified by the feature-ablation benchmark.
``method="auto"``
    ``tree`` for undirected inputs, ``bfs`` for directed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.decompose.partition import Partition
from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_blocked, reverse_bfs_blocked
from repro.types import SCORE_DTYPE

__all__ = ["AlphaBetaStats", "compute_alpha_beta"]


@dataclass
class AlphaBetaStats:
    """Accounting for the α/β phase (feeds the Figure-8 breakdown)."""

    method: str
    pairs: int  # (sub-graph, articulation point) pairs processed
    bfs_runs: int  # blocked BFS invocations (0 for the tree DP)


def _alpha_beta_bfs(graph: CSRGraph, partition: Partition) -> AlphaBetaStats:
    """The paper's blocked-BFS method (§4, step 2)."""
    pairs = 0
    runs = 0
    blocked = np.zeros(graph.n, dtype=bool)
    for sg in partition.subgraphs:
        arts = sg.boundary_arts()
        if arts.size == 0:
            continue
        blocked[sg.vertices] = True
        for a_local in arts.tolist():
            a_global = int(sg.vertices[a_local])
            blocked[a_global] = False
            sg.alpha[a_local] = bfs_blocked(graph, a_global, blocked)
            if graph.directed:
                sg.beta[a_local] = reverse_bfs_blocked(
                    graph, a_global, blocked
                )
                runs += 2
            else:
                sg.beta[a_local] = sg.alpha[a_local]
                runs += 1
            blocked[a_global] = True
            pairs += 1
        blocked[sg.vertices] = False
    return AlphaBetaStats(method="bfs", pairs=pairs, bfs_runs=runs)


def _alpha_beta_tree(graph: CSRGraph, partition: Partition) -> AlphaBetaStats:
    """Block-cut-tree dynamic program (undirected graphs only).

    Build the bipartite tree whose nodes are sub-graphs and boundary
    articulation points; an edge joins ``a`` and ``SGi`` iff
    ``a ∈ SGi``. With vertex weights

    * ``weight(SGi)`` = interior vertex count (vertices minus boundary
      articulation points), and
    * ``weight(a)`` = 1,

    ``α_SGi(a)`` is the total weight of the tree component containing
    ``a`` after deleting the edge ``(a, SGi)``, minus 1 for ``a``
    itself. One rooted pass computes all subtree sums; the values for
    both orientations of every edge follow by subtraction.
    """
    if graph.directed:
        raise PartitionError("tree-DP α/β requires an undirected graph")
    subgraphs = partition.subgraphs
    k = len(subgraphs)
    boundary_flags = partition.boundary_art_flags
    arts = np.flatnonzero(boundary_flags)
    art_node: Dict[int, int] = {
        int(a): k + i for i, a in enumerate(arts.tolist())
    }
    num_nodes = k + arts.size

    weights = np.zeros(num_nodes, dtype=np.int64)
    adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
    # edge identity: (sub-graph node, art node) -> local art id
    for i, sg in enumerate(subgraphs):
        locals_ = sg.boundary_arts()
        weights[i] = sg.num_vertices - locals_.size
        for a_local in locals_.tolist():
            node = art_node[int(sg.vertices[a_local])]
            adjacency[i].append(node)
            adjacency[node].append(i)
    weights[k:] = 1

    # rooted subtree sums per tree component (iterative post-order)
    parent = np.full(num_nodes, -2, dtype=np.int64)  # -2 = unvisited
    subtree = weights.astype(np.int64).copy()
    comp_total = np.zeros(num_nodes, dtype=np.int64)
    for root in range(num_nodes):
        if parent[root] != -2:
            continue
        parent[root] = -1
        order = [root]
        stack = [root]
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if parent[v] == -2:
                    parent[v] = u
                    order.append(v)
                    stack.append(v)
        for u in reversed(order):
            if parent[u] >= 0:
                subtree[parent[u]] += subtree[u]
        comp_total[order] = subtree[root]

    # α_SGi(a): weight on a's side of the (SGi, a) edge, minus a itself.
    pairs = 0
    for i, sg in enumerate(subgraphs):
        for a_local in sg.boundary_arts().tolist():
            node = art_node[int(sg.vertices[a_local])]
            if parent[node] == i:
                side = subtree[node]  # a hangs below SGi
            elif parent[i] == node:
                side = comp_total[i] - subtree[i]  # SGi hangs below a
            else:  # pragma: no cover - bipartite tree guarantees adjacency
                raise PartitionError("block-cut tree adjacency broken")
            val = float(side - 1)
            sg.alpha[a_local] = val
            sg.beta[a_local] = val
            pairs += 1
    return AlphaBetaStats(method="tree", pairs=pairs, bfs_runs=0)


def compute_alpha_beta(
    graph: CSRGraph, partition: Partition, *, method: str = "auto"
) -> AlphaBetaStats:
    """Fill every sub-graph's ``alpha``/``beta`` arrays in place.

    See the module docstring for the available methods. Returns the
    phase statistics used by the execution-breakdown metrics.
    """
    if method == "auto":
        method = "bfs" if graph.directed else "tree"
    if method == "bfs":
        return _alpha_beta_bfs(graph, partition)
    if method == "tree":
        return _alpha_beta_tree(graph, partition)
    raise PartitionError(f"unknown alpha/beta method {method!r}")
