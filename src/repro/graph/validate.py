"""Structural validation of :class:`CSRGraph` instances.

The constructors already guarantee these invariants for graphs built
through the public API; :func:`validate_graph` exists for graphs
assembled from raw arrays (e.g. deserialised) and as the executable
specification the property-based tests assert against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = ["validate_graph"]


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise GraphValidationError(message)


def validate_graph(graph: CSRGraph) -> None:
    """Raise :class:`GraphValidationError` on any broken invariant.

    Checked invariants:

    * ``indptr`` arrays are monotone, start at 0, end at ``num_arcs``;
    * every adjacency target lies in ``[0, n)``;
    * per-row adjacency is sorted and free of duplicates/self-loops;
    * the reverse CSR is the exact transpose of the forward CSR;
    * undirected graphs are symmetric and share forward/reverse arrays.
    """
    n = graph.n
    for name, indptr, indices in (
        ("out", graph.out_indptr, graph.out_indices),
        ("in", graph.in_indptr, graph.in_indices),
    ):
        _check(indptr.shape == (n + 1,), f"{name}_indptr must have n+1 entries")
        _check(int(indptr[0]) == 0, f"{name}_indptr must start at 0")
        _check(
            int(indptr[-1]) == indices.size,
            f"{name}_indptr must end at the arc count",
        )
        _check(
            bool(np.all(np.diff(indptr) >= 0)),
            f"{name}_indptr must be non-decreasing",
        )
        if indices.size:
            _check(
                0 <= int(indices.min()) and int(indices.max()) < n,
                f"{name}_indices contains out-of-range vertex ids",
            )
        # sorted rows without duplicates: within each row, strictly
        # increasing targets. Vectorised: adjacent pairs inside a row.
        if indices.size > 1:
            row_of = np.repeat(np.arange(n), np.diff(indptr))
            same_row = row_of[1:] == row_of[:-1]
            _check(
                bool(np.all(indices[1:][same_row] > indices[:-1][same_row])),
                f"{name} adjacency rows must be sorted and duplicate-free",
            )
        # self loops
        row_of = np.repeat(np.arange(n), np.diff(indptr))
        _check(
            not bool(np.any(indices == row_of)),
            f"{name} adjacency contains self-loops",
        )

    _check(
        graph.out_indices.size == graph.in_indices.size,
        "forward and reverse CSR must store the same number of arcs",
    )

    if graph.directed:
        # the reverse CSR must be the transpose of the forward CSR
        src = np.repeat(np.arange(n), np.diff(graph.out_indptr))
        fwd = set(zip(src.tolist(), graph.out_indices.tolist()))
        rsrc = np.repeat(np.arange(n), np.diff(graph.in_indptr))
        rev = set(zip(graph.in_indices.tolist(), rsrc.tolist()))
        _check(fwd == rev, "reverse CSR is not the transpose of forward CSR")
    else:
        _check(
            graph.out_indptr is graph.in_indptr
            and graph.out_indices is graph.in_indices,
            "undirected graphs must share forward/reverse arrays",
        )
        # symmetry: u in adj(v) iff v in adj(u)
        src = np.repeat(np.arange(n), np.diff(graph.out_indptr))
        fwd = set(zip(src.tolist(), graph.out_indices.tolist()))
        _check(
            all((v, u) in fwd for (u, v) in fwd),
            "undirected adjacency is not symmetric",
        )
