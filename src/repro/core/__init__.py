"""APGRE — the paper's contribution.

* :mod:`repro.core.dependencies` — the four-dependency backward kernel
  (paper equations 3–6);
* :mod:`repro.core.bc_subgraph` — per-sub-graph BC (paper Algorithm 2,
  with the R/γ total-redundancy elimination and the v==s merge rule of
  equation 7);
* :mod:`repro.core.apgre` — the three-step driver (Algorithm 5 /
  Figure 5): decompose, count α/β, compute per-sub-graph scores and
  merge (equation 8), with serial / process / thread execution modes;
* :mod:`repro.core.config` / :mod:`repro.core.result` — options and
  the instrumented result type.
"""

from repro.core.config import APGREConfig
from repro.core.result import APGREStats, BCResult, PhaseTimings
from repro.core.bc_subgraph import bc_subgraph
from repro.core.batched_subgraph import bc_subgraph_batched
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.treefold import treefold_bc, peel_pendant_trees
from repro.core.weighted_apgre import weighted_apgre_bc

__all__ = [
    "APGREConfig",
    "APGREStats",
    "BCResult",
    "PhaseTimings",
    "bc_subgraph",
    "bc_subgraph_batched",
    "apgre_bc",
    "apgre_bc_detailed",
    "treefold_bc",
    "peel_pendant_trees",
    "weighted_apgre_bc",
]
