"""Configuration for the APGRE driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.decompose.partition import DEFAULT_THRESHOLD
from repro.errors import AlgorithmError

__all__ = ["APGREConfig"]

_PARALLEL_MODES = ("serial", "processes", "threads")
_AB_METHODS = ("auto", "bfs", "tree")
_BACKENDS = ("auto", "serial", "threads", "processes")
_KERNELS = ("auto", "arcs", "spmm", "pull", "numba")


@dataclass(frozen=True)
class APGREConfig:
    """Options controlling an APGRE run.

    Attributes
    ----------
    threshold:
        Algorithm-1 small-BCC merge threshold (vertices). Swept by the
        threshold ablation benchmark.
    alpha_beta_method:
        ``"bfs"`` (the paper's blocked BFS), ``"tree"`` (this
        reproduction's block-cut-tree DP, undirected only) or
        ``"auto"`` (tree when undirected).
    eliminate_pendants:
        Enable the total-redundancy elimination (R/γ). Disabling it
        runs every vertex as a source — the partial-redundancy-only
        ablation.
    parallel:
        ``"serial"``, ``"processes"`` (coarse-grained sub-graph
        parallelism over a fork pool — the paper's ``cilk_for`` level)
        or ``"threads"`` (same tasks on a thread pool; GIL-bound, kept
        for the scaling study).  Superseded for batched execution by
        ``backend``, which dispatches root batches through the
        execution-backend registry.
    backend:
        Execution engine for the batched BC phase
        (:mod:`repro.parallel.backends`): ``"threads"`` (worker
        threads over the shared in-process CSR — true multicore via
        the GIL-releasing SpMM kernel, zero fork/pickle overhead),
        ``"processes"`` (the persistent shared-memory fork pool),
        ``"serial"`` (inline chunk loop), or ``"auto"`` (best engine
        for this host, honouring ``REPRO_PARALLEL_BACKEND``).  ``None``
        (default) keeps the legacy ``parallel``/``parallel_batched``
        dispatch.  Setting a backend implies ``batch_size="auto"``
        when no batch size is set; the engine fans each sub-graph's
        root batches out over ``workers``.
    workers:
        Worker count for the parallel modes.
    timeout:
        Per-task wall-clock budget in seconds for supervised process
        execution (``None`` disables timeouts). Stuck workers are
        killed and their task retried/degraded per the ladder in
        docs/ROBUSTNESS.md.
    max_retries:
        Pool re-dispatches allowed per failed/timed-out task before
        the task drops to the serial rung.
    fallback:
        ``True`` (default) enables graceful degradation (serial task
        re-runs, and full-serial/Brandes rungs when the pool is
        unhealthy); ``False`` raises
        :class:`~repro.errors.ExecutionError` subclasses instead.
    batch_size:
        Route each sub-graph's root set through the multi-source
        batched kernel (:mod:`repro.graph.batched`), ``batch_size``
        sources at a time. ``None`` (default) keeps the per-source
        kernel; ``"auto"`` sizes batches from the graph and available
        memory; a positive int fixes the batch width.
    parallel_batched:
        Run the process-parallel BC phase on the persistent
        shared-memory pool (:mod:`repro.parallel.batched_pool`):
        workers accumulate batched root-slice deltas into shared score
        rows instead of pickling a score vector per task, with
        LPT-planned placement and work stealing.  Requires
        ``parallel="processes"``; implies ``batch_size="auto"`` when
        no batch size is set.
    steal:
        Allow idle pool workers to steal the heaviest remaining batch
        of the most-loaded peer (``parallel_batched`` runs only).
        ``False`` keeps the static LPT placement — kept as the
        measurable baseline the steal scheduler is compared against.
    cache:
        Enable the decomposition-aware contribution cache
        (:mod:`repro.cache`): sub-graphs whose content fingerprint
        (local edges + incoming α/β/γ summaries) is already stored
        replay their scores instead of recomputing; misses fan out
        through the configured parallel machinery and are stored.
        ``True`` uses the process-global default store (shared across
        runs), a :class:`~repro.cache.store.ContributionStore` is used
        as-is, ``None``/``False`` disables caching (unless
        ``cache_dir`` is set, which implies ``True``).
    cache_dir:
        Directory for the cache's persistent on-disk layer; setting it
        enables caching. Separate processes and CLI invocations
        pointed at the same directory share warmth.
    compress:
        Run each sub-graph through the structural compression ladder
        (:mod:`repro.compress`) before its BC sweeps: twin classes
        (same open/closed neighbourhood) merge into weighted
        representatives, maximal degree-2 chains contract to integer-
        length super-edges, and single-level pendants fold into
        endpoint mass.  Scores are identical to the uncompressed
        kernels (the plan inverts the compression exactly); sub-graphs
        where no rule fires route through the plain kernels unchanged.
        Composes with every execution path, including ``cache=`` —
        compressed runs fingerprint the *plan*, so structurally
        twin-heavy identical sub-graphs share one store entry.
    journal_dir:
        Directory for the crash-safe run journal (:mod:`repro.journal`):
        every completed sub-graph contribution is durably committed to
        an append-only checksummed log so a killed run resumes from its
        last committed sub-graph.  ``None`` (default) disables
        journaling.  The fingerprint pins only score-relevant fields
        (threshold / alpha_beta_method / eliminate_pendants), so a run
        may resume under a different execution strategy than it was
        journaled under.
    resume:
        Resume from the journal in ``journal_dir``: replay every valid
        record (torn tails are dropped by checksum) and recompute only
        the unjournaled sub-graphs.  Requires ``journal_dir``; a
        missing journal or a fingerprint mismatch raises
        :class:`~repro.errors.JournalError`.
    shard:
        Split every undirected sub-graph larger than
        ``shard_max_size`` along divide-and-conquer vertex separators
        (:mod:`repro.shard`, docs/SHARDING.md): each shard computes
        its home sources independently on a shard-plus-separator
        graph, boundary-correction sweeps reconcile the paths that
        cross the separator, and the per-shard vectors sum to exactly
        the unsharded scores.  Shards are first-class work units —
        they schedule independently through the execution backends,
        carry their own cache keys and journal records, and turn the
        dominant-BCC critical path from O(whole BCC) into O(largest
        shard + correction).  Sub-graphs a shard plan cannot split
        (directed, small, clique-like) run the unsharded kernels;
        sharded sub-graphs skip the compression ladder (the two
        reductions do not compose — see the docs matrix).
    shard_max_size:
        Interior size ceiling per shard (vertices).  Only sub-graphs
        strictly larger than this are split.
    kernel:
        Compute kernel for the batched traversals
        (:mod:`repro.graph.kernels`): ``"arcs"`` (pure numpy,
        bit-identical to serial), ``"spmm"`` (scipy sparse-matmul
        levels), ``"pull"`` (direction-optimizing push/pull),
        ``"numba"`` (optional compiled per-source Brandes), or
        ``"auto"`` (per-sub-graph selection from structural features).
        ``None`` (default) defers to the ``REPRO_KERNEL`` environment
        variable and then automatic selection.  Kernels run inside the
        batched paths, so setting one implies ``batch_size="auto"``
        when no batch size is set; requesting an unavailable kernel
        degrades to the default with a ``RuntimeWarning``.
    """

    threshold: int = DEFAULT_THRESHOLD
    alpha_beta_method: str = "auto"
    eliminate_pendants: bool = True
    parallel: str = "serial"
    backend: Optional[str] = None
    workers: int = 1
    timeout: Optional[float] = None
    max_retries: int = 2
    fallback: bool = True
    batch_size: Optional[Union[int, str]] = None
    parallel_batched: bool = False
    steal: bool = True
    cache: object = None
    cache_dir: Optional[str] = None
    compress: bool = False
    journal_dir: Optional[str] = None
    resume: bool = False
    shard: bool = False
    shard_max_size: int = 2048
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel is not None:
            if self.kernel not in _KERNELS:
                raise AlgorithmError(
                    f"kernel must be one of {_KERNELS} or None, "
                    f"got {self.kernel!r}"
                )
            if self.batch_size is None:
                # kernels run inside the batched paths; auto is the
                # only safe unattended batch width
                object.__setattr__(self, "batch_size", "auto")
        if self.parallel not in _PARALLEL_MODES:
            raise AlgorithmError(
                f"parallel must be one of {_PARALLEL_MODES}, "
                f"got {self.parallel!r}"
            )
        if self.backend is not None:
            if self.backend not in _BACKENDS:
                raise AlgorithmError(
                    f"backend must be one of {_BACKENDS} or None, "
                    f"got {self.backend!r}"
                )
            if self.parallel_batched:
                raise AlgorithmError(
                    "backend and parallel_batched are mutually "
                    "exclusive; parallel_batched is the legacy "
                    "spelling of backend='processes'"
                )
            if self.batch_size is None:
                # the engines move batched deltas, so a batch width is
                # needed; auto is the only safe unattended default
                object.__setattr__(self, "batch_size", "auto")
        if self.parallel_batched:
            if self.parallel != "processes":
                raise AlgorithmError(
                    "parallel_batched requires parallel='processes', "
                    f"got parallel={self.parallel!r}"
                )
            if self.batch_size is None:
                # the pool moves batched deltas, so it needs a batch
                # width; auto is the only safe unattended default
                object.__setattr__(self, "batch_size", "auto")
        if self.alpha_beta_method not in _AB_METHODS:
            raise AlgorithmError(
                f"alpha_beta_method must be one of {_AB_METHODS}, "
                f"got {self.alpha_beta_method!r}"
            )
        if self.workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {self.workers}")
        if self.threshold < 0:
            raise AlgorithmError(
                f"threshold must be >= 0, got {self.threshold}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise AlgorithmError(
                f"timeout must be > 0 seconds, got {self.timeout}"
            )
        if self.max_retries < 0:
            raise AlgorithmError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not isinstance(self.shard_max_size, int) or isinstance(
            self.shard_max_size, bool
        ):
            raise AlgorithmError(
                f"shard_max_size must be an int, got {self.shard_max_size!r}"
            )
        if self.shard_max_size < 16:
            # thinner shards than this drown in separator tables; the
            # floor also keeps the level-cut heuristic meaningful
            raise AlgorithmError(
                f"shard_max_size must be >= 16, got {self.shard_max_size}"
            )
        if self.resume and not self.journal_dir:
            raise AlgorithmError(
                "resume=True requires journal_dir (there is no journal "
                "to resume from without one)"
            )
        if self.cache is not None and not isinstance(self.cache, bool):
            # duck-typed on purpose: importing repro.cache here would
            # close an import cycle through the APGRE driver
            if not (
                callable(getattr(self.cache, "get", None))
                and callable(getattr(self.cache, "put", None))
            ):
                raise AlgorithmError(
                    "cache must be None, a bool, or a ContributionStore-"
                    f"like object with get/put, got {self.cache!r}"
                )
        if self.batch_size is not None:
            if isinstance(self.batch_size, str):
                if self.batch_size != "auto":
                    raise AlgorithmError(
                        "batch_size must be None, 'auto' or a positive "
                        f"int, got {self.batch_size!r}"
                    )
            elif not isinstance(self.batch_size, int) or self.batch_size < 1:
                raise AlgorithmError(
                    "batch_size must be None, 'auto' or a positive "
                    f"int, got {self.batch_size!r}"
                )
