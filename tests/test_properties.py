"""Property-based tests (hypothesis) for the core invariants.

Random-graph strategies sweep directedness, density, pendant structure
and disconnection; each property is one of DESIGN.md §6's bullet
points. Graph sizes stay small so the exact oracles are cheap — the
value here is breadth of shapes, not scale.
"""

import numpy as np
import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.brandes import brandes_bc
from repro.baselines.common import per_source_delta
from repro.core.apgre import apgre_bc
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.articulation import biconnected_components
from repro.decompose.partition import graph_partition
from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_undirected
from repro.graph.traversal import bfs_sigma, bfs_sigma_hybrid
from repro.graph.validate import validate_graph

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_n=28, directed=None):
    """A random graph with skewed structure knobs.

    Mixes a G(n,m) core with optional pendant vertices (the APGRE-
    relevant structure) and optional extra isolated vertices.
    """
    n_core = draw(st.integers(min_value=1, max_value=max_n))
    if directed is None:
        directed = draw(st.booleans())
    max_m = n_core * (n_core - 1) // (1 if directed else 2)
    m = draw(st.integers(min_value=0, max_value=min(max_m, 3 * n_core)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.integers(0, n_core, size=2)
        if u == v:
            continue
        if not directed:
            u, v = min(u, v), max(u, v)
        edges.add((int(u), int(v)))
    edge_list = sorted(edges)
    n = n_core
    # pendants
    n_pend = draw(st.integers(min_value=0, max_value=8))
    for _ in range(n_pend):
        anchor = int(rng.integers(0, n))
        edge_list.append((n, anchor))
        n += 1
    # isolated tail vertices
    n += draw(st.integers(min_value=0, max_value=3))
    return from_edges(edge_list, n=n, directed=directed)


@given(random_graphs())
@settings(**SETTINGS)
def test_apgre_equals_brandes(g):
    """(a) APGRE == Brandes on every graph."""
    np.testing.assert_allclose(
        apgre_bc(g), brandes_bc(g), rtol=1e-8, atol=1e-8
    )


@given(random_graphs(), st.integers(min_value=0, max_value=20))
@settings(**SETTINGS)
def test_apgre_threshold_invariance(g, threshold):
    """(a') ... for every partition threshold."""
    np.testing.assert_allclose(
        apgre_bc(g, threshold=threshold),
        brandes_bc(g),
        rtol=1e-8,
        atol=1e-8,
    )


@given(random_graphs())
@settings(**SETTINGS)
def test_apgre_without_pendant_elimination(g):
    np.testing.assert_allclose(
        apgre_bc(g, eliminate_pendants=False),
        brandes_bc(g),
        rtol=1e-8,
        atol=1e-8,
    )


@given(random_graphs())
@settings(**SETTINGS)
def test_partition_invariants(g):
    """(b) the partition covers the graph exactly once (modulo arts)."""
    partition = graph_partition(g)
    partition.validate()
    for sg in partition.subgraphs:
        validate_graph(sg.graph)
        assert sg.gamma.sum() == sg.removed.size


@given(random_graphs(directed=False))
@settings(**SETTINGS)
def test_alpha_beta_tree_equals_bfs(g):
    """(c) the tree DP and blocked BFS agree on undirected graphs."""
    p1 = graph_partition(g)
    p2 = graph_partition(g)
    compute_alpha_beta(g, p1, method="bfs")
    compute_alpha_beta(g, p2, method="tree")
    for sg1, sg2 in zip(p1.subgraphs, p2.subgraphs):
        np.testing.assert_array_equal(sg1.alpha, sg2.alpha)
        np.testing.assert_array_equal(sg1.beta, sg2.beta)


@given(random_graphs())
@settings(**SETTINGS)
def test_articulation_matches_networkx(g):
    """(d) BCC decomposition agrees with networkx."""
    und = to_undirected(g)
    result = biconnected_components(und)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(und.iter_edges())
    assert result.articulation_points().tolist() == sorted(
        nx.articulation_points(nxg)
    )
    ours = sorted(
        sorted(map(tuple, np.sort(e, axis=1).tolist()))
        for e in result.component_edges
    )
    theirs = sorted(
        sorted(tuple(sorted(e)) for e in comp)
        for comp in nx.biconnected_component_edges(nxg)
    )
    assert ours == theirs


@given(random_graphs(), st.integers(min_value=0, max_value=27))
@settings(**SETTINGS)
def test_sigma_and_dist_match_networkx(g, source_pick):
    """(e) σ/dist agree with networkx shortest-path counting."""
    if g.n == 0:
        return
    s = source_pick % g.n
    nxg = nx.DiGraph() if g.directed else nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(g.iter_edges())
    res = bfs_sigma(g, s)
    lengths = nx.single_source_shortest_path_length(nxg, s)
    for v in range(g.n):
        assert res.dist[v] == lengths.get(v, -1)
    for v, d in lengths.items():
        if v != s and d > 0:
            expected = len(list(nx.all_shortest_paths(nxg, s, v)))
            assert res.sigma[v] == expected


@given(random_graphs())
@settings(**SETTINGS)
def test_hybrid_bfs_equals_plain(g):
    if g.n == 0:
        return
    a = bfs_sigma(g, 0)
    b = bfs_sigma_hybrid(g, 0, alpha=1.0)
    np.testing.assert_array_equal(a.dist, b.dist)
    np.testing.assert_allclose(a.sigma, b.sigma)


@given(random_graphs())
@settings(**SETTINGS)
def test_accumulation_modes_agree(g):
    if g.n == 0:
        return
    ref = per_source_delta(g, 0, mode="arcs")
    for mode in ("succs", "edge"):
        np.testing.assert_allclose(
            per_source_delta(g, 0, mode=mode), ref, rtol=1e-9, atol=1e-12
        )


@given(random_graphs())
@settings(**SETTINGS)
def test_bc_nonnegative_and_zero_on_leaves(g):
    scores = brandes_bc(g)
    assert (scores >= -1e-9).all()
    if not g.directed:
        leaves = np.flatnonzero(g.out_degrees() == 1)
        # a degree-1 vertex lies on no shortest path interior
        assert np.allclose(scores[leaves], 0.0)


@given(random_graphs(directed=False))
@settings(**SETTINGS)
def test_bc_total_mass_bound(g):
    """Σ_v BC(v) = Σ_{s≠t} (hops(s,t) − 1) over connected ordered
    pairs — interior vertices counted per pair."""
    scores = brandes_bc(g)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    nxg.add_edges_from(g.iter_edges())
    expected = 0
    for s in range(g.n):
        lengths = nx.single_source_shortest_path_length(nxg, s)
        expected += sum(d - 1 for t, d in lengths.items() if t != s and d >= 1)
    assert np.isclose(scores.sum(), expected)
