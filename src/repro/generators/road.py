"""Road-network-like graphs.

The paper's USA-roadNY / USA-roadBAY rows behave differently from the
social graphs: degree distributions are narrow (not power-law), yet
"there are also redundancy computation, e.g., 5% partial redundancy and
16% total redundancy in USA-roadNY" (§5.3). These generators produce
planar-ish lattices with dead-end streets (pendants) and
bridge-connected districts so the analogue suite reproduces those
modest redundancy fractions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["grid_road_graph", "districted_road_graph"]


def grid_road_graph(
    rows: int,
    cols: int,
    *,
    keep_prob: float = 0.92,
    dead_end_frac: float = 0.15,
    seed: Seed = None,
) -> CSRGraph:
    """An ``rows × cols`` street grid with random deletions and dead ends.

    ``keep_prob`` thins the lattice (creating the long detours that
    make road BC expensive); ``dead_end_frac·rows·cols`` extra degree-1
    vertices are attached as cul-de-sacs (the paper's road-graph total
    redundancy). The largest connected chunk dominates by
    construction for ``keep_prob`` ≳ 0.7.
    """
    if rows < 1 or cols < 1:
        raise GraphValidationError("grid needs rows >= 1 and cols >= 1")
    if not 0.0 <= keep_prob <= 1.0:
        raise GraphValidationError(f"keep_prob must be in [0,1], got {keep_prob}")
    rng = as_rng(seed)
    n = rows * cols
    idx = np.arange(n).reshape(rows, cols)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    keep = rng.random(src.size) < keep_prob
    src, dst = src[keep], dst[keep]
    # cul-de-sacs: fresh vertices hanging off random grid vertices
    extra = int(dead_end_frac * n)
    if extra:
        anchors = rng.integers(0, n, size=extra)
        leaves = np.arange(n, n + extra, dtype=np.int64)
        src = np.concatenate([src, anchors])
        dst = np.concatenate([dst, leaves])
        n += extra
    return CSRGraph.from_arcs(n, src, dst, directed=False)


def districted_road_graph(
    n_districts: int,
    district_rows: int,
    district_cols: int,
    *,
    bridges_per_pair: int = 1,
    dead_end_frac: float = 0.12,
    seed: Seed = None,
) -> CSRGraph:
    """Several street grids joined in a chain by single bridge vertices.

    Each bridge endpoint becomes an articulation point, so the
    decomposition finds one sub-graph per district — the road-graph
    shape in the paper's Table 4 (a dominant top sub-graph plus many
    small ones). ``bridges_per_pair > 1`` biconnects consecutive
    districts instead, shrinking the articulation structure (useful in
    ablations).
    """
    if n_districts < 1:
        raise GraphValidationError("need at least one district")
    rng = as_rng(seed)
    src_parts, dst_parts = [], []
    offset = 0
    size = district_rows * district_cols
    anchors = []
    for d in range(n_districts):
        # denser first district so the top sub-graph dominates
        keep = 0.95 if d == 0 else 0.85
        g = grid_road_graph(
            district_rows if d == 0 else max(2, district_rows // 2),
            district_cols if d == 0 else max(2, district_cols // 2),
            keep_prob=keep,
            dead_end_frac=dead_end_frac,
            seed=rng,
        )
        s, t = g.arcs()
        und = s <= t
        src_parts.append(s[und] + offset)
        dst_parts.append(t[und] + offset)
        anchors.append((offset, offset + g.n))
        offset += g.n
    # chain districts with bridge edges
    for d in range(1, n_districts):
        lo0, hi0 = anchors[d - 1]
        lo1, hi1 = anchors[d]
        for _b in range(bridges_per_pair):
            u = int(rng.integers(lo0, hi0))
            v = int(rng.integers(lo1, hi1))
            src_parts.append(np.asarray([u]))
            dst_parts.append(np.asarray([v]))
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    return CSRGraph.from_arcs(offset, src, dst, directed=False)
