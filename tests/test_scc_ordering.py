"""Tests for SCC/condensation and vertex-ordering substrate."""

import numpy as np
import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graph.build import from_edges, from_networkx
from repro.graph.ordering import (
    apply_ordering,
    bfs_order,
    degree_order,
    random_order,
)
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.validate import validate_graph


class TestSCC:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        nxg = nx.gnm_random_graph(35, 60, seed=seed, directed=True)
        g = from_networkx(nxg, n=35)
        scc = strongly_connected_components(g)
        expected = list(nx.strongly_connected_components(nxg))
        assert scc.num_components == len(expected)
        ours = {}
        for v in range(35):
            ours.setdefault(int(scc.labels[v]), set()).add(v)
        assert set(map(frozenset, ours.values())) == set(
            map(frozenset, expected)
        )

    def test_cycle_single_component(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        scc = strongly_connected_components(g)
        assert scc.num_components == 1
        assert scc.largest().tolist() == [0, 1, 2]

    def test_dag_all_singletons(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], directed=True)
        scc = strongly_connected_components(g)
        assert scc.num_components == 3

    def test_labels_reverse_topological(self):
        # every cross-component arc must go high label -> low label
        for seed in range(5):
            nxg = nx.gnm_random_graph(30, 55, seed=seed, directed=True)
            g = from_networkx(nxg, n=30)
            scc = strongly_connected_components(g)
            src, dst = g.arcs()
            ls, ld = scc.labels[src], scc.labels[dst]
            cross = ls != ld
            assert (ls[cross] > ld[cross]).all()

    def test_rejects_undirected(self):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphValidationError, match="directed"):
            strongly_connected_components(g)

    def test_sizes(self):
        g = from_edges([(0, 1), (1, 0), (2, 0)], directed=True)
        scc = strongly_connected_components(g)
        assert sorted(scc.sizes().tolist()) == [1, 2]

    def test_deep_chain_no_recursion_limit(self):
        n = 5000
        g = from_edges([(i, i + 1) for i in range(n - 1)], directed=True)
        scc = strongly_connected_components(g)
        assert scc.num_components == n


class TestCondensation:
    def test_is_dag(self):
        nxg = nx.gnm_random_graph(40, 90, seed=3, directed=True)
        g = from_networkx(nxg, n=40)
        dag, scc = condensation(g)
        validate_graph(dag)
        assert dag.n == scc.num_components
        dag_scc = strongly_connected_components(dag)
        assert dag_scc.num_components == dag.n  # acyclic

    def test_matches_networkx_condensation(self):
        nxg = nx.gnm_random_graph(25, 60, seed=5, directed=True)
        g = from_networkx(nxg, n=25)
        dag, scc = condensation(g)
        nxc = nx.condensation(nxg)
        assert dag.n == nxc.number_of_nodes()
        assert dag.num_arcs == nxc.number_of_edges()


class TestOrdering:
    @pytest.mark.parametrize("maker", [bfs_order, degree_order])
    def test_is_permutation(self, zoo_entry, maker):
        _name, g, _nxg = zoo_entry
        order = maker(g)
        assert np.array_equal(np.sort(order), np.arange(g.n))

    def test_random_order_seeded(self, und_random):
        a = random_order(und_random, seed=1)
        b = random_order(und_random, seed=1)
        assert np.array_equal(a, b)
        assert np.array_equal(np.sort(a), np.arange(und_random.n))

    def test_degree_order_hubs_first(self):
        g = from_edges([(0, 1), (0, 2), (0, 3), (2, 3)])
        order = degree_order(g)
        assert order[0] == 0  # the hub

    def test_bfs_order_groups_components(self):
        # two components: positions of each component's vertices must
        # be contiguous
        g = from_edges([(0, 1), (1, 2), (3, 4)], n=5)
        order = bfs_order(g).tolist()
        pos = {v: i for i, v in enumerate(order)}
        comp_a = sorted(pos[v] for v in (0, 1, 2))
        comp_b = sorted(pos[v] for v in (3, 4))
        assert comp_a == list(range(comp_a[0], comp_a[0] + 3))
        assert comp_b == list(range(comp_b[0], comp_b[0] + 2))

    def test_apply_ordering_preserves_bc(self, zoo_entry):
        """Relabeling must not change (translated) scores — the
        ordering is purely a layout transform."""
        from repro.baselines import brandes_bc

        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        order = bfs_order(g)
        relabeled, new_of_old = apply_ordering(g, order)
        validate_graph(relabeled)
        ref = brandes_bc(g)
        out = brandes_bc(relabeled)[new_of_old]
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)

    def test_apply_ordering_identity(self, und_random):
        order = np.arange(und_random.n)
        relabeled, _ = apply_ordering(und_random, order)
        assert relabeled == und_random

    def test_apply_ordering_rejects_non_permutation(self, und_random):
        with pytest.raises(GraphValidationError, match="permutation"):
            apply_ordering(und_random, np.zeros(und_random.n, dtype=int))
        with pytest.raises(GraphValidationError, match="permutation"):
            apply_ordering(und_random, np.arange(und_random.n - 1))

    def test_bfs_order_reduces_bandwidth_on_grid(self):
        """On a thin grid, CM ordering shrinks adjacency bandwidth
        versus a random shuffle — the locality effect ref [24] chases."""
        from repro.generators import grid_road_graph

        g = grid_road_graph(12, 12, keep_prob=1.0, dead_end_frac=0.0, seed=1)

        def bandwidth(graph):
            src, dst = graph.arcs()
            return int(np.abs(src.astype(int) - dst.astype(int)).max())

        cm, _ = apply_ordering(g, bfs_order(g))
        shuffled, _ = apply_ordering(g, random_order(g, seed=3))
        assert bandwidth(cm) < bandwidth(shuffled)
