"""The shard plan: everything the per-shard kernel reads, built once.

For one sub-graph split into interiors ``A_0..A_{k-1}`` plus the
separator set ``S`` (:mod:`repro.shard.separator`), the plan holds:

* **barrier tables** per shard ``j``: for every separator vertex
  ``p``, the *interior-only* distances ``L_j(p, t)`` and path counts
  ``σ_j(p, t)`` to every ``t ∈ A_j`` (and to every other separator
  vertex ``q``), obtained by a barrier BFS in which separator
  vertices are terminals — discovered, counted, never expanded.  The
  first hop must enter the interior, so a direct ``p–q`` arc (already
  an explicit arc of every shard graph) is never double-counted as an
  excursion;
* **correction DAGs** per ``(j, p)``: the barrier BFS's shortest-path
  DAG, stored bucket-ordered by depth so the kernel can replay a
  backward dependency sweep without re-traversing the graph;
* **shard graphs** ``H_i``: the induced graph on ``A_i ∪ S`` plus one
  weighted multi-arc per separator pair ``(p, q)`` carrying the
  minimum interior-excursion length through the *other* shards and
  its path multiplicity ``μ`` — so distances and path counts measured
  inside ``H_i`` equal those of the whole sub-graph for every vertex
  of ``A_i ∪ S`` (arXiv:1406.4173's distance-preserving sketch);
* **exterior tables** per shard ``i``: the concatenated barrier
  tables of all other shards, laid out for one vectorised
  ``(|S|, n_ext)`` derivation of exterior distances/σ per source.

Plans are deterministic functions of the sub-graph CSR and the shard
threshold; they are memoized on the ``Subgraph`` object (fork-based
workers inherit built plans) and fingerprinted by
:func:`repro.shard.fingerprint.shard_key`.  Table construction cost is
tallied in ``edges_correction`` — work the sharded run performs that
an unsharded run would not, kept out of TEPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import expand_frontier
from repro.shard.separator import find_shard_labels

__all__ = ["BarrierDag", "ExtTables", "ShardGraph", "ShardPlan", "shard_plan"]


@dataclass
class BarrierDag:
    """One ``(shard, separator vertex)`` correction DAG, bucket-ordered.

    Vertex ids are *barrier-local*: interiors of the shard first
    (``0..n_j-1``), then the separator vertices (``n_j + sep_pos``).
    ``src``/``dst`` list the DAG arcs sorted by ``dist[dst]``;
    ``bounds`` delimits the equal-depth buckets; ``sigma`` is the
    interior-only path-count array over the barrier-local vertices.
    """

    src: np.ndarray
    dst: np.ndarray
    bounds: np.ndarray
    sigma: np.ndarray


@dataclass
class ShardGraph:
    """``H_i``: shard interior + separator + weighted boundary arcs.

    ``verts`` maps H-local ids to sub-graph-local ids (interiors
    first, separator at ``n_i + sep_pos``).  Arc arrays carry explicit
    unit arcs first, then the ``n_w`` weighted separator-pair arcs
    (lengths ``>= 2``, multiplicities ``mu``); ``w_off`` is the index
    of the first weighted arc.  ``w_share[w, j]`` splits weighted-arc
    flow back onto the shards whose interior excursions realise it.
    """

    verts: np.ndarray
    ni: int
    src: np.ndarray
    dst: np.ndarray
    length: np.ndarray
    mu: np.ndarray
    w_off: int
    n_w: int
    w_p: np.ndarray
    w_q: np.ndarray
    w_share: np.ndarray
    _sssp_matrix: object = None

    @property
    def n(self) -> int:
        return int(self.verts.size)

    @property
    def num_arcs(self) -> int:
        return int(self.src.size)


@dataclass
class ExtTables:
    """Exterior of shard ``i``: all other shards' interiors, stacked.

    ``L``/``SIG`` are the ``(|S|, n_ext)`` interior-only distance and
    σ tables; ``shard_of``/``tpos`` map each exterior column back to
    its owning shard and barrier-local interior position.
    """

    verts: np.ndarray
    L: np.ndarray
    SIG: np.ndarray
    shard_of: np.ndarray
    tpos: np.ndarray


@dataclass
class ShardPlan:
    """Deterministic shard decomposition of one sub-graph."""

    k: int
    labels: np.ndarray
    sep: np.ndarray
    sep_pos: np.ndarray
    home: np.ndarray
    interiors: List[np.ndarray]
    int_pos: np.ndarray
    L: List[np.ndarray]
    SIG: List[np.ndarray]
    bdags: List[Dict[int, BarrierDag]]
    shard_graphs: List[ShardGraph]
    ext: List[ExtTables]
    edges_correction: int
    largest_shard: int = 0
    stats_cached: dict = field(default_factory=dict)

    @property
    def num_separator(self) -> int:
        return int(self.sep.size)

    def home_roots(self, roots: np.ndarray, shard: int) -> np.ndarray:
        """The sources shard ``shard`` sweeps (its home vertices)."""
        return roots[self.home[roots] == shard]


def _barrier_bfs(
    g: CSRGraph, p: int, allowed: np.ndarray, expandable: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """BFS from ``p`` where only ``expandable`` vertices expand.

    Returns ``(dist, sigma, dag_src, dag_dst)`` over sub-graph-local
    ids; unreached vertices have ``dist == -1``.  The level-0 frontier
    only discovers expandable (interior) vertices, so every counted
    path has at least one interior intermediate — direct separator-to-
    separator arcs are explicit arcs of the shard graphs, not
    excursions.
    """
    n = g.n
    dist = np.full(n, -1, np.int64)
    sigma = np.zeros(n)
    dist[p] = 0
    sigma[p] = 1.0
    frontier = np.array([p], np.int64)
    all_src: List[np.ndarray] = []
    all_dst: List[np.ndarray] = []
    d = 0
    while frontier.size:
        dst, src = expand_frontier(g.out_indptr, g.out_indices, frontier)
        if dst.size == 0:
            break
        keep = allowed[dst]
        if d == 0:
            keep &= expandable[dst]
        dst, src = dst[keep], src[keep]
        newly = np.unique(dst[dist[dst] == -1])
        dist[newly] = d + 1
        level = dist[dst] == d + 1
        dst, src = dst[level], src[level]
        np.add.at(sigma, dst, sigma[src])
        all_src.append(src)
        all_dst.append(dst)
        frontier = newly[expandable[newly]]
        d += 1
    if all_src:
        return dist, sigma, np.concatenate(all_src), np.concatenate(all_dst)
    empty = np.empty(0, np.int64)
    return dist, sigma, empty, empty


def _bucket_bounds(depth_keys: np.ndarray) -> np.ndarray:
    """Start offsets of equal-value runs in a sorted key array."""
    if depth_keys.size == 0:
        return np.zeros(1, np.int64)
    bounds = np.flatnonzero(
        np.concatenate(([True], np.diff(depth_keys) > 0))
    )
    return np.append(bounds, depth_keys.size)


def build_shard_plan(g: CSRGraph, max_size: int) -> Optional[ShardPlan]:
    """Build the full plan, or ``None`` when the graph resists splitting."""
    n = g.n
    labels, k = find_shard_labels(g, max_size)
    sep = np.flatnonzero(labels == -1)
    S = int(sep.size)
    if k < 2 or S == 0:
        return None
    sep_pos = np.full(n, -1, np.int64)
    sep_pos[sep] = np.arange(S)
    interiors = [np.flatnonzero(labels == i) for i in range(k)]
    int_pos = np.full(n, -1, np.int64)
    for verts in interiors:
        int_pos[verts] = np.arange(verts.size)

    # separator vertices are swept by the smallest adjacent shard
    home = labels.astype(np.int64)
    for p in sep.tolist():
        nl = labels[g.out_neighbors(p)]
        nl = nl[nl >= 0]
        home[p] = int(nl.min()) if nl.size else 0

    edges_correction = 0
    L: List[np.ndarray] = []
    SIG: List[np.ndarray] = []
    bdags: List[Dict[int, BarrierDag]] = []
    LQ = np.full((k, S, S), np.inf)
    SIGQ = np.zeros((k, S, S))
    for j in range(k):
        verts_j = interiors[j]
        nj = verts_j.size
        allowed = np.zeros(n, bool)
        allowed[verts_j] = True
        allowed[sep] = True
        expandable = np.zeros(n, bool)
        expandable[verts_j] = True
        b_id = np.full(n, -1, np.int64)
        b_id[verts_j] = np.arange(nj)
        b_id[sep] = nj + np.arange(S)
        Lj = np.full((S, nj), np.inf)
        Sj = np.zeros((S, nj))
        dags: Dict[int, BarrierDag] = {}
        for pi, p in enumerate(sep.tolist()):
            dist, sigma, dsrc, ddst = _barrier_bfs(
                g, p, allowed, expandable
            )
            edges_correction += int(dsrc.size)
            reach = verts_j[dist[verts_j] >= 0]
            Lj[pi, int_pos[reach]] = dist[reach]
            Sj[pi, int_pos[reach]] = sigma[reach]
            reach_q = sep[dist[sep] > 0]
            LQ[j, pi, sep_pos[reach_q]] = dist[reach_q]
            SIGQ[j, pi, sep_pos[reach_q]] = sigma[reach_q]
            if dsrc.size:
                order = np.argsort(dist[ddst], kind="stable")
                sigma_b = np.zeros(nj + S)
                reach_all = np.flatnonzero(dist >= 0)
                sigma_b[b_id[reach_all]] = sigma[reach_all]
                dags[pi] = BarrierDag(
                    src=b_id[dsrc[order]],
                    dst=b_id[ddst[order]],
                    bounds=_bucket_bounds(dist[ddst[order]]),
                    sigma=sigma_b,
                )
        L.append(Lj)
        SIG.append(Sj)
        bdags.append(dags)

    src_all, dst_all = g.arcs()
    is_sep = labels == -1
    shard_graphs: List[ShardGraph] = []
    for i in range(k):
        verts_i = interiors[i]
        ni = verts_i.size
        h_id = np.full(n, -1, np.int64)
        h_id[verts_i] = np.arange(ni)
        h_id[sep] = ni + np.arange(S)
        in_h = (labels == i) | is_sep
        mask = in_h[src_all] & in_h[dst_all]
        e_src = h_id[src_all[mask]]
        e_dst = h_id[dst_all[mask]]
        # weighted separator-pair arcs: the minimum interior-excursion
        # length through any *other* shard, multiplicity summed over
        # the shards achieving it
        lq = LQ.copy()
        lq[i] = np.inf
        lmin = lq.min(axis=0)
        ach = lq == lmin[None]
        mu = np.where(ach, SIGQ, 0.0).sum(axis=0)
        wp, wq = np.nonzero(np.isfinite(lmin) & (mu > 0))
        w_len = lmin[wp, wq]
        w_mu = mu[wp, wq]
        w_share = np.where(ach[:, wp, wq], SIGQ[:, wp, wq], 0.0).T
        if w_mu.size:
            w_share = w_share / w_mu[:, None]
        edges_correction += int(e_src.size) + int(wp.size)
        shard_graphs.append(
            ShardGraph(
                verts=np.concatenate([verts_i, sep]),
                ni=ni,
                src=np.concatenate([e_src, ni + wp]),
                dst=np.concatenate([e_dst, ni + wq]),
                length=np.concatenate(
                    [np.ones(e_src.size), w_len.astype(np.float64)]
                ),
                mu=np.concatenate([np.ones(e_src.size), w_mu]),
                w_off=int(e_src.size),
                n_w=int(wp.size),
                w_p=wp,
                w_q=wq,
                w_share=w_share,
            )
        )

    ext: List[ExtTables] = []
    for i in range(k):
        others = [j for j in range(k) if j != i]
        verts = np.concatenate([interiors[j] for j in others])
        ext.append(
            ExtTables(
                verts=verts,
                L=np.concatenate([L[j] for j in others], axis=1),
                SIG=np.concatenate([SIG[j] for j in others], axis=1),
                shard_of=np.concatenate(
                    [np.full(interiors[j].size, j, np.int64) for j in others]
                ),
                tpos=np.concatenate(
                    [np.arange(interiors[j].size) for j in others]
                ),
            )
        )

    plan = ShardPlan(
        k=k,
        labels=labels,
        sep=sep,
        sep_pos=sep_pos,
        home=home,
        interiors=interiors,
        int_pos=int_pos,
        L=L,
        SIG=SIG,
        bdags=bdags,
        shard_graphs=shard_graphs,
        ext=ext,
        edges_correction=edges_correction,
        largest_shard=max(h.n for h in shard_graphs),
    )
    return plan


def shard_plan(sg, *, max_size: int) -> Optional[ShardPlan]:
    """The (memoized) shard plan of one partition sub-graph.

    Returns ``None`` when sharding does not apply: directed
    sub-graphs (the correction algebra assumes symmetric excursions),
    sub-graphs at or under the threshold, and graphs whose level
    structure yields no usable cut.  Plans are cached on the
    ``Subgraph`` object per threshold, mirroring
    :func:`repro.compress.compression_plan` — fork-based workers
    inherit plans the parent already built.
    """
    g = sg.graph
    cache = getattr(sg, "_shard_plans", None)
    if cache is None:
        cache = {}
        sg._shard_plans = cache
    key = int(max_size)
    if key in cache:
        return cache[key]
    plan = None
    if not g.directed and g.n > max_size:
        plan = build_shard_plan(g, max_size)
    cache[key] = plan
    return plan
