"""Deterministic structured graphs and fixtures.

Small parametric families with known BC/decomposition structure — the
backbone of the unit tests (every family here has a closed-form or
hand-checkable answer) — plus :func:`paper_example_graph`, a
reconstruction of the 13-vertex directed worked example from the
paper's Figure 3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "barbell_graph",
    "lollipop_graph",
    "caterpillar_graph",
    "block_tree_graph",
    "pendant_augment",
    "paper_example_graph",
    "disease_network_analogue",
]


def path_graph(n: int, *, directed: bool = False) -> CSRGraph:
    """The path ``0 - 1 - ... - n-1`` (arcs point forward if directed)."""
    base = np.arange(max(n - 1, 0), dtype=np.int64)
    return CSRGraph.from_arcs(n, base, base + 1, directed=directed)


def cycle_graph(n: int, *, directed: bool = False) -> CSRGraph:
    """The cycle on ``n`` vertices; biconnected, zero articulation points."""
    if n < 3:
        raise GraphValidationError(f"cycles need n >= 3, got {n}")
    base = np.arange(n, dtype=np.int64)
    return CSRGraph.from_arcs(n, base, (base + 1) % n, directed=directed)


def star_graph(n_leaves: int) -> CSRGraph:
    """A hub (vertex 0) with ``n_leaves`` pendant leaves.

    The canonical total-redundancy graph: every leaf is removable and
    ``BC(hub) = n_leaves · (n_leaves - 1)`` under the paper's
    ordered-pair convention.
    """
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    return CSRGraph.from_arcs(
        n_leaves + 1, np.zeros(n_leaves, dtype=np.int64), leaves, directed=False
    )


def complete_graph(n: int, *, directed: bool = False) -> CSRGraph:
    """K_n: all BC scores are zero (every pair is adjacent)."""
    idx = np.arange(n, dtype=np.int64)
    src = np.repeat(idx, n)
    dst = np.tile(idx, n)
    keep = src != dst
    return CSRGraph.from_arcs(n, src[keep], dst[keep], directed=directed)


def barbell_graph(clique: int, bridge_len: int) -> CSRGraph:
    """Two K_``clique`` cliques joined by a path of ``bridge_len`` edges.

    Every path vertex (and the two attachment points) is an
    articulation point; the partition yields three obvious pieces.
    """
    if clique < 3:
        raise GraphValidationError(f"cliques need >= 3 vertices, got {clique}")
    n = 2 * clique + max(bridge_len - 1, 0)
    idx = np.arange(clique, dtype=np.int64)
    src_a = np.repeat(idx, clique)
    dst_a = np.tile(idx, clique)
    keep = src_a < dst_a
    parts_src = [src_a[keep]]
    parts_dst = [dst_a[keep]]
    offset = clique + max(bridge_len - 1, 0)
    parts_src.append(src_a[keep] + offset)
    parts_dst.append(dst_a[keep] + offset)
    # the bridge: clique-1 -> clique -> ... -> offset
    chain = np.arange(clique - 1, offset, dtype=np.int64)
    parts_src.append(chain)
    parts_dst.append(chain + 1)
    return CSRGraph.from_arcs(
        n, np.concatenate(parts_src), np.concatenate(parts_dst), directed=False
    )


def lollipop_graph(clique: int, tail: int) -> CSRGraph:
    """K_``clique`` with a ``tail``-edge path hanging off vertex 0."""
    if clique < 3:
        raise GraphValidationError(f"cliques need >= 3 vertices, got {clique}")
    idx = np.arange(clique, dtype=np.int64)
    src = np.repeat(idx, clique)
    dst = np.tile(idx, clique)
    keep = src < dst
    parts_src = [src[keep]]
    parts_dst = [dst[keep]]
    if tail:
        chain_src = np.concatenate(
            [[0], np.arange(clique, clique + tail - 1, dtype=np.int64)]
        )
        chain_dst = np.arange(clique, clique + tail, dtype=np.int64)
        parts_src.append(chain_src)
        parts_dst.append(chain_dst)
    return CSRGraph.from_arcs(
        clique + tail,
        np.concatenate(parts_src),
        np.concatenate(parts_dst),
        directed=False,
    )


def caterpillar_graph(spine: int, legs_per_vertex: int) -> CSRGraph:
    """A path of ``spine`` vertices, each carrying pendant legs.

    Maximises total redundancy: all ``spine · legs_per_vertex`` leaves
    are removable sources.
    """
    if spine < 1:
        raise GraphValidationError(f"spine must be >= 1, got {spine}")
    spine_idx = np.arange(spine - 1, dtype=np.int64)
    parts_src = [spine_idx]
    parts_dst = [spine_idx + 1]
    leaf = spine
    leg_src, leg_dst = [], []
    for v in range(spine):
        for _ in range(legs_per_vertex):
            leg_src.append(v)
            leg_dst.append(leaf)
            leaf += 1
    parts_src.append(np.asarray(leg_src, dtype=np.int64))
    parts_dst.append(np.asarray(leg_dst, dtype=np.int64))
    return CSRGraph.from_arcs(
        leaf, np.concatenate(parts_src), np.concatenate(parts_dst), directed=False
    )


def block_tree_graph(
    depth: int,
    branching: int,
    clique_size: int,
    *,
    seed: Seed = None,
) -> CSRGraph:
    """A tree of cliques glued at shared cut vertices.

    The root clique has ``branching`` child cliques, each child
    recursively again, down to ``depth`` levels. Each child clique
    shares exactly one vertex with its parent, so the block-cut tree of
    the result is the construction tree — the canonical APGRE-friendly
    topology with everything hand-predictable.
    """
    if clique_size < 3:
        raise GraphValidationError(
            f"clique_size must be >= 3, got {clique_size}"
        )
    rng = as_rng(seed)
    src_parts, dst_parts = [], []
    next_id = 0

    def make_clique(shared: int | None) -> np.ndarray:
        nonlocal next_id
        fresh = clique_size - (0 if shared is None else 1)
        ids = list(range(next_id, next_id + fresh))
        next_id += fresh
        if shared is not None:
            ids.append(shared)
        arr = np.asarray(ids, dtype=np.int64)
        s = np.repeat(arr, arr.size)
        t = np.tile(arr, arr.size)
        keep = s < t
        src_parts.append(s[keep])
        dst_parts.append(t[keep])
        return arr

    frontier = [make_clique(None)]
    for _level in range(depth):
        nxt = []
        for clique in frontier:
            for _child in range(branching):
                anchor = int(clique[rng.integers(0, clique.size)])
                nxt.append(make_clique(anchor))
        frontier = nxt
    return CSRGraph.from_arcs(
        next_id,
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        directed=False,
    )


def pendant_augment(
    graph: CSRGraph,
    n_pendants: int,
    *,
    seed: Seed = None,
    anchors: np.ndarray | None = None,
) -> CSRGraph:
    """Attach ``n_pendants`` fresh degree-1 vertices to a graph.

    For directed graphs the pendant arc points *into* the anchor
    (``u -> anchor``) with no in-edges at ``u`` — exactly the paper's
    total-redundancy pattern ("no incoming edges and a single outgoing
    edge"). For undirected graphs the pendant is a plain leaf.
    """
    rng = as_rng(seed)
    if anchors is None:
        anchors = rng.integers(0, graph.n, size=n_pendants)
    else:
        anchors = np.asarray(anchors, dtype=np.int64)
        if anchors.size != n_pendants:
            raise GraphValidationError(
                f"anchors has {anchors.size} entries, expected {n_pendants}"
            )
    src, dst = graph.arcs()
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
    leaves = np.arange(graph.n, graph.n + n_pendants, dtype=np.int64)
    src = np.concatenate([src, leaves])
    dst = np.concatenate([dst, anchors])
    return CSRGraph.from_arcs(
        graph.n + n_pendants, src, dst, directed=graph.directed
    )


def paper_example_graph() -> CSRGraph:
    """A reconstruction of the paper's Figure-3 worked example.

    13 directed vertices. Vertices 2, 3 and 6 are articulation points
    of the undirected shadow; vertices 0 and 1 are pendant sources into
    vertex 2 (the paper's total-redundancy example, γ(2) = 2); the
    decomposition yields three sub-graphs: SG1 = {3, 10, 11, 12},
    SG2 = {2, 3, 4, 5, 6} (+ pendants 0, 1) and SG3 = {6, 7, 8, 9}.
    The figure's exact arc list is not recoverable from the paper text,
    so this fixture reproduces the *described* structure (shared
    sub-DAG pattern, articulation points, pendant count), which is what
    the worked-example tests assert.
    """
    arcs = [
        # pendant sources (total redundancy)
        (0, 2),
        (1, 2),
        # SG2: strongly connected middle sub-graph {2,3,4,5,6}
        (2, 3),
        (3, 5),
        (5, 6),
        (6, 2),
        (2, 4),
        (4, 6),
        # SG3: {6,7,8,9} cycle back to 6
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 6),
        # SG1: {3,10,11,12}; 11 has two out-edges (not a pendant)
        (3, 12),
        (12, 10),
        (10, 3),
        (11, 12),
        (11, 10),
    ]
    arr = np.asarray(arcs, dtype=np.int64)
    return CSRGraph.from_arcs(13, arr[:, 0], arr[:, 1], directed=True)


def disease_network_analogue(*, seed: Seed = 29) -> CSRGraph:
    """A Human-Disease-Network-like graph (paper Figure 2).

    The paper motivates APGRE with the Human Disease Network (Goh et
    al., 2007; 1419 vertices, 3926 edges): a sparse undirected graph of
    disease clusters connected through hub disorders, rich in pendant
    vertices and articulation points. This analogue matches those
    statistics: ~1400 vertices, ~3900 undirected edges, a power-law
    cluster core with many degree-1 diseases attached.
    """
    from repro.generators.powerlaw import barabasi_albert_graph

    rng = as_rng(seed)
    core = barabasi_albert_graph(900, 4, seed=rng)
    src, dst = core.arcs()
    keep = src <= dst
    src_list = [src[keep].astype(np.int64)]
    dst_list = [dst[keep].astype(np.int64)]
    next_id = core.n
    # ~520 pendant diseases hanging off the core
    n_pend = 520
    anchors = rng.integers(0, core.n, size=n_pend)
    leaves = np.arange(next_id, next_id + n_pend, dtype=np.int64)
    src_list.append(leaves)
    dst_list.append(anchors.astype(np.int64))
    next_id += n_pend
    return CSRGraph.from_arcs(
        next_id,
        np.concatenate(src_list),
        np.concatenate(dst_list),
        directed=False,
    )
