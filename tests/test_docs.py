"""Documentation regression tests.

The tutorial's python blocks are executed verbatim so the docs cannot
rot; README/DESIGN/EXPERIMENTS are checked for the structural promises
they make (referenced files exist, module paths resolve).
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestTutorialExecutes:
    def test_all_python_blocks_run(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # tutorial writes /tmp files
        text = (ROOT / "docs" / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 6
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)


class TestReadmePromises:
    def test_quickstart_snippet_runs(self):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README must contain python examples"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "<readme>", "exec"), namespace)

    def test_referenced_files_exist(self):
        for rel in (
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/ALGORITHM.md",
            "docs/API.md",
            "docs/CACHING.md",
            "docs/PERFORMANCE.md",
            "docs/ROBUSTNESS.md",
            "docs/TUTORIAL.md",
            "LICENSE",
            "CONTRIBUTING.md",
            "CHANGELOG.md",
        ):
            assert (ROOT / rel).exists(), rel

    def test_examples_listed_exist(self):
        for name in (
            "quickstart.py",
            "community_detection.py",
            "power_grid_contingency.py",
            "road_network.py",
            "compare_algorithms.py",
            "extensions_tour.py",
            "approximation_tradeoffs.py",
        ):
            assert (ROOT / "examples" / name).exists(), name


class TestDesignModuleMap:
    def test_module_paths_resolve(self):
        """Every `repro.x.y` module path mentioned in DESIGN.md must
        import (the design doc is the map; stale entries mislead)."""
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules
        for dotted in sorted(modules):
            # table cells sometimes reference attributes; import the
            # longest importable prefix and require depth >= 2
            parts = dotted.split(".")
            imported = None
            for k in range(len(parts), 1, -1):
                try:
                    imported = importlib.import_module(".".join(parts[:k]))
                    break
                except ImportError:
                    continue
            assert imported is not None, dotted
