"""Fork-based process pools and thread pools.

``fork_map`` is the coarse-grained primitive: it runs a module-level
function over a list of payloads in worker processes created with the
``fork`` start method, so the (immutable, read-only) CSR graph arrays
are inherited copy-on-write — no serialisation of the graph, matching
the paper's shared-memory setting as closely as CPython allows.

On platforms without ``fork`` (or when ``workers <= 1``) everything
degrades to an in-process loop, keeping results bit-identical.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.supervisor import RunHealth, SupervisorConfig

__all__ = ["fork_map", "thread_map", "map_sources_bc", "available_workers"]

# worker-global state, installed by the pool initializer (inherited
# through fork, so large arrays are never pickled)
_STATE: dict = {}


def available_workers() -> int:
    """Number of usable CPUs (honours sched_getaffinity when present)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _supports_fork() -> bool:
    return "fork" in mp.get_all_start_methods()


def _install_state(state: dict) -> None:
    _STATE.clear()
    _STATE.update(state)


def fork_map(
    func: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    state: Optional[dict] = None,
) -> List[Any]:
    """Map ``func`` over ``payloads`` using forked worker processes.

    Parameters
    ----------
    func:
        A *module-level* function (picklable by reference). It may
        read the worker-global ``state`` via
        :func:`get_worker_state`.
    payloads:
        Small picklable items (vertex ranges, sub-graph indices...).
        Everything heavy belongs in ``state``.
    workers:
        Process count; must be ``>= 1`` (``ValueError`` otherwise,
        mirroring :func:`repro.parallel.scheduler.assign_lpt`).
    state:
        Read-only context installed in every worker before the map.
        Installed into the *parent* first (workers inherit it through
        fork) and always cleared again before returning, so a large
        graph is never retained across calls.

    Inline degradation contract: with ``workers == 1``, a single
    payload, or no ``fork`` support on the platform, the map runs
    in-process over the same ``func``/``state`` and the results are
    bit-identical to the pooled path. For supervision (crash
    detection, timeouts, retries) use
    :func:`repro.parallel.supervisor.supervised_map` instead — this
    primitive trusts its workers not to die.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    installed = state is not None
    if installed:
        _install_state(state)
    try:
        if workers == 1 or len(payloads) <= 1 or not _supports_fork():
            return [func(p) for p in payloads]
        ctx = mp.get_context("fork")
        workers = min(workers, len(payloads))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(func, payloads)
    finally:
        if installed:
            _STATE.clear()


def get_worker_state() -> dict:
    """The state dict installed by the enclosing :func:`fork_map`."""
    return _STATE


def thread_map(
    func: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
) -> List[Any]:
    """Thread-pool map, preserving payload order.

    Provided for the scaling benchmarks' thread mode: with CPython's
    GIL the speedup is limited to whatever time numpy kernels spend
    outside the interpreter — measuring exactly that is the point.
    Runs inline for ``workers == 1`` or a single payload; raises
    ``ValueError`` for ``workers < 1``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(payloads) <= 1:
        return [func(p) for p in payloads]
    with ThreadPoolExecutor(max_workers=workers) as ex:
        return list(ex.map(func, payloads))


# ----------------------------------------------------------------------
# source-parallel BC (used by the baselines' ``workers=`` option)
# ----------------------------------------------------------------------
def _bc_source_chunk(chunk: Sequence[int]) -> np.ndarray:
    from repro.baselines.common import run_per_source

    return run_per_source(
        _STATE["graph"],
        sources=chunk,
        mode=_STATE["mode"],
        forward=_STATE["forward"],
        batch_size=_STATE.get("batch_size"),
    )


def map_sources_bc(
    graph: CSRGraph,
    sources: Sequence[int],
    *,
    mode: str,
    forward: Callable,
    workers: int,
    supervisor: Optional["SupervisorConfig"] = None,
    health: Optional["RunHealth"] = None,
    batch_size=None,
) -> np.ndarray:
    """Sum per-source BC contributions across a supervised process pool.

    Chunks are dispatched through
    :func:`repro.parallel.supervisor.supervised_map`, so a crashed or
    stuck worker costs one retried chunk, not the whole run.
    ``supervisor`` sets the fault-tolerance policy (default: no
    timeout, 2 retries, serial fallback); pass a
    :class:`~repro.parallel.supervisor.RunHealth` as ``health`` to
    collect the supervision report.  ``batch_size`` makes each worker
    advance its chunk through the multi-source batched kernel
    (requires ``mode="arcs"``; see
    :func:`repro.baselines.common.run_per_source`).
    """
    from repro.parallel.supervisor import supervised_map

    if not sources:
        return np.zeros(graph.n, dtype=SCORE_DTYPE)
    chunk_count = max(workers * 4, 1)
    chunks = [
        list(sources[i::chunk_count])
        for i in range(chunk_count)
        if sources[i::chunk_count]
    ]
    parts = supervised_map(
        _bc_source_chunk,
        chunks,
        workers=workers,
        state={
            "graph": graph,
            "mode": mode,
            "forward": forward,
            "batch_size": batch_size,
        },
        config=supervisor,
        health=health,
    )
    total = np.zeros(graph.n, dtype=SCORE_DTYPE)
    for part in parts:
        total += part
    return total
