"""Shared fixtures and oracle helpers for the test suite."""

from __future__ import annotations

import signal
import threading

import numpy as np
import networkx as nx
import pytest

from repro.graph.build import from_networkx
from repro.graph.csr import CSRGraph

#: Default per-test wall-clock alarm (seconds). Override per test with
#: ``@pytest.mark.timeout(seconds)``. The point is hang protection —
#: a regression that reintroduces a blind ``Pool.map`` (which hangs
#: forever when a worker dies) must fail fast, not stall CI; the
#: fault-injection suite relies on this backstop.
DEFAULT_TEST_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def _test_alarm(request):
    """In-repo stand-in for pytest-timeout: SIGALRM per test.

    CPython delivers signals on the main thread even while it blocks
    in an interruptible wait (pipe reads, lock acquires, ``Pool.map``),
    so a hung test raises instead of wedging the suite. Skipped off
    the main thread and on platforms without ``SIGALRM``.
    """
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker else DEFAULT_TEST_TIMEOUT
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):  # pragma: no cover - non-POSIX / nested runners
        yield
        return

    def _on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds:g}s wall-clock alarm "
            f"(suspected hang)", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def nx_betweenness(nxg) -> np.ndarray:
    """networkx BC in this package's convention (ordered pairs).

    networkx halves unnormalised undirected scores (each unordered
    pair counted once); the paper sums over ordered pairs, so
    undirected oracle values are doubled.
    """
    raw = nx.betweenness_centrality(nxg, normalized=False)
    out = np.zeros(nxg.number_of_nodes())
    for v, score in raw.items():
        out[v] = score
    if not nxg.is_directed():
        out *= 2.0
    return out


def graph_pair(nxg) -> tuple:
    """(CSRGraph, networkx graph) with aligned integer labels."""
    n = nxg.number_of_nodes()
    return from_networkx(nxg, n=n), nxg


def zoo() -> list:
    """A diverse list of (name, CSRGraph, nx graph) triples.

    Covers: undirected/directed, dense/sparse, trees, disconnected,
    pendant-heavy, biconnected, and the paper's worked example.
    """
    out = []

    def add(name, nxg):
        g, nxg2 = graph_pair(nxg)
        out.append((name, g, nxg2))

    add("und-random", nx.gnm_random_graph(36, 60, seed=1))
    add("und-dense", nx.gnm_random_graph(20, 120, seed=2))
    add("und-sparse", nx.gnm_random_graph(40, 30, seed=3))
    add("dir-random", nx.gnm_random_graph(30, 70, seed=4, directed=True))
    add("dir-sparse", nx.gnm_random_graph(35, 40, seed=5, directed=True))
    add("tree", nx.random_labeled_tree(25, seed=6))
    add("cycle", nx.cycle_graph(12))
    add("complete", nx.complete_graph(8))
    add("star", nx.star_graph(9))
    add("path", nx.path_graph(10))
    add("barbell", nx.barbell_graph(5, 3))
    add("lollipop", nx.lollipop_graph(6, 4))
    # pendant-heavy directed graph (APGRE's total-redundancy case)
    rng = np.random.default_rng(7)
    pend = nx.gnm_random_graph(20, 35, seed=7, directed=True)
    for i in range(12):
        pend.add_edge(20 + i, int(rng.integers(0, 20)))
    add("dir-pendants", pend)
    # disconnected with isolated vertices
    disc = nx.disjoint_union(
        nx.gnm_random_graph(15, 25, seed=8), nx.gnm_random_graph(10, 14, seed=9)
    )
    disc.add_nodes_from([25, 26])
    disc.add_edge(27, 28)
    add("disconnected", disc)
    # the paper's worked example
    from repro.generators.structured import paper_example_graph

    pe = paper_example_graph()
    nxpe = nx.DiGraph()
    nxpe.add_nodes_from(range(pe.n))
    nxpe.add_edges_from(pe.iter_edges())
    out.append(("paper-example", pe, nxpe))
    return out


_ZOO = zoo()


@pytest.fixture(params=_ZOO, ids=[name for name, _g, _x in _ZOO])
def zoo_entry(request):
    """Parametrised fixture over the whole graph zoo."""
    return request.param


@pytest.fixture
def und_random() -> CSRGraph:
    g, _ = graph_pair(nx.gnm_random_graph(36, 60, seed=1))
    return g


@pytest.fixture
def dir_random() -> CSRGraph:
    g, _ = graph_pair(nx.gnm_random_graph(30, 70, seed=4, directed=True))
    return g
