"""Asynchronous worklist BC (the paper's ``async``).

Prountzos & Pingali (PPoPP'13) formulate BC as an asynchronous Galois
program: dependency accumulation proceeds from a worklist, a vertex
becoming ready as soon as *all its DAG successors* have been retired,
with no level barriers. This transcription keeps the defining
property — retirement order is a data-driven topological order of the
shortest-path DAG, not level-synchronous — using a per-vertex pending
successor count.

Like the paper's Galois implementation, "this version only deals with
undirected graphs"; directed input raises
:class:`~repro.errors.AlgorithmError`. (That restriction is why the
paper's Table 2 has ``-`` entries for async on directed inputs.)
The per-activity scheduling is inherently scalar, so this baseline
runs Python-loop speed — matching its role in the tables as a
qualitatively different execution strategy, not a fast path.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE

__all__ = ["async_bc"]


def async_bc(
    graph: CSRGraph,
    *,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC via asynchronous (worklist) dependency propagation."""
    if graph.directed:
        raise AlgorithmError(
            "the async baseline handles undirected graphs only "
            "(matching the paper's Galois implementation)"
        )
    n = graph.n
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    indptr, indices = graph.out_indptr, graph.out_indices
    for s in range(n):
        res = bfs_sigma(graph, s)
        if counter is not None:
            counter.add(res.edges_traversed)
        dist = res.dist
        sigma = res.sigma
        delta = np.zeros(n, dtype=SCORE_DTYPE)
        # pending[v] = number of unretired DAG successors of v
        pending = np.zeros(n, dtype=np.int64)
        reached = np.flatnonzero(dist >= 0)
        for v in reached.tolist():
            row = indices[indptr[v] : indptr[v + 1]]
            pending[v] = int(np.count_nonzero(dist[row] == dist[v] + 1))
        work = deque(int(v) for v in reached.tolist() if pending[v] == 0)
        retired = 0
        while work:
            w = work.popleft()
            retired += 1
            dw = delta[w]
            sw = sigma[w]
            for v in indices[indptr[w] : indptr[w + 1]].tolist():
                if counter is not None:
                    counter.edges += 1
                if dist[v] == dist[w] - 1:  # v is a DAG predecessor
                    delta[v] += sigma[v] / sw * (1.0 + dw)
                    pending[v] -= 1
                    if pending[v] == 0:
                        work.append(v)
        if retired != reached.size:  # pragma: no cover - DAG invariant
            raise AlgorithmError("async worklist failed to drain the DAG")
        delta[s] = 0.0
        bc += delta
    return bc
