"""Graph file I/O.

Readers for the three on-disk formats the paper's inputs ship in:
SNAP-style edge lists, DIMACS shortest-path ``.gr`` files, and
MatrixMarket coordinate files — plus writers and a format-sniffing
loader.
"""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.dimacs import read_dimacs, write_dimacs
from repro.io.matrixmarket import read_matrix_market, write_matrix_market
from repro.io.binary import load_npz, save_npz
from repro.io.registry import load_graph, save_graph, sniff_format

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_dimacs",
    "write_dimacs",
    "read_matrix_market",
    "write_matrix_market",
    "load_npz",
    "save_npz",
    "load_graph",
    "save_graph",
    "sniff_format",
]
