#!/usr/bin/env python
"""Road-network analysis: critical intersections and bridge districts.

The paper evaluates on the DIMACS USA road networks (Table 1) and notes
that even non-power-law road graphs carry 5–23% eliminable redundancy
(§5.3). This example builds a districted road network (street grids
joined by bridges, with cul-de-sacs), writes/reads it through the
DIMACS ``.gr`` format the real datasets use, and finds the critical
intersections.

Run:  python examples/road_network.py
"""

import io

import numpy as np

from repro import apgre_bc_detailed, brandes_bc
from repro.generators import districted_road_graph
from repro.io import read_dimacs, write_dimacs
from repro.metrics.redundancy import measure_redundancy
from repro.metrics.teps import graph_mteps
from repro.metrics.timers import stopwatch


def main() -> None:
    city = districted_road_graph(
        n_districts=4, district_rows=14, district_cols=14, seed=21
    )
    print(f"road network: {city} (4 districts joined by bridges)")

    # --- DIMACS round trip (what the real USA-road files look like) ---------
    buf = io.StringIO()
    write_dimacs(city, buf)
    buf.seek(0)
    reloaded = read_dimacs(buf, directed=False)
    assert reloaded == city
    header = buf.getvalue().splitlines()[1]
    print(f"DIMACS round-trip ok ({header!r})")

    # --- exact BC, timed both ways ------------------------------------------
    with stopwatch() as t_apgre:
        result = apgre_bc_detailed(city)
    with stopwatch() as t_serial:
        reference = brandes_bc(city)
    assert np.allclose(result.scores, reference)
    print(
        f"\nAPGRE  : {t_apgre.seconds:6.2f}s "
        f"({graph_mteps(city, t_apgre.seconds):7.1f} MTEPS)"
    )
    print(
        f"serial : {t_serial.seconds:6.2f}s "
        f"({graph_mteps(city, t_serial.seconds):7.1f} MTEPS)"
    )
    print(f"speedup: {t_serial.seconds / t_apgre.seconds:.2f}x")

    # --- why it wins on a road graph (paper §5.3) ----------------------------
    rb = measure_redundancy(city, name="road")
    print(
        f"\nredundancy on this road network: "
        f"{rb.partial_fraction:.0%} partial (bridge districts), "
        f"{rb.total_fraction:.0%} total (cul-de-sacs), "
        f"{rb.essential_fraction:.0%} essential"
    )

    # --- the critical intersections -----------------------------------------
    ranked = np.argsort(-result.scores)[:5]
    print("\nmost critical intersections (highest BC):")
    for v in ranked.tolist():
        print(f"  intersection {v:4d}   bc = {result.scores[v]:10.1f}")


if __name__ == "__main__":
    main()
