"""Shared type aliases and small value types used across the package.

Centralising these keeps signatures readable (``VertexArray`` instead of
``npt.NDArray[np.int32]``) and pins the dtype conventions in one place:

* vertex ids are ``int32`` (graphs here are far below 2**31 vertices and
  halving index memory roughly doubles effective cache size for the
  traversal kernels, per the HPC guide's cache-effects advice);
* ``indptr`` offsets are ``int64`` so edge counts never overflow;
* path counts σ and dependencies δ are ``float64`` (the standard choice
  in array BC implementations; see DESIGN.md §3 for the precision note).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.csr import CSRGraph

__all__ = [
    "VERTEX_DTYPE",
    "INDPTR_DTYPE",
    "SCORE_DTYPE",
    "VertexArray",
    "IndptrArray",
    "ScoreArray",
    "EdgeList",
    "BCAlgorithm",
    "Seed",
]

#: dtype used for vertex ids and adjacency targets.
VERTEX_DTYPE = np.int32

#: dtype used for CSR row offsets.
INDPTR_DTYPE = np.int64

#: dtype used for σ path counts, δ dependencies and BC scores.
SCORE_DTYPE = np.float64

#: 1-D array of vertex ids.
VertexArray = np.ndarray

#: 1-D array of CSR offsets.
IndptrArray = np.ndarray

#: 1-D array of float64 scores.
ScoreArray = np.ndarray

#: Anything accepted as an edge list by the graph builders.
EdgeList = Union[Sequence[tuple], np.ndarray, Mapping[int, Sequence[int]]]

#: Callable signature shared by every BC implementation in this package:
#: it receives a graph and returns the unnormalised BC score array.
BCAlgorithm = Callable[["CSRGraph"], ScoreArray]

#: Random seed accepted by the generators.
Seed = Union[int, np.random.Generator, None]


def as_rng(seed: Seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int`` (deterministic stream)
    or an existing generator (returned unchanged so callers can share a
    stream across several generator calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
