"""Predecessor-list level-synchronous BC (the paper's ``preds``).

Bader & Madduri's ICPP'06 parallelisation (the SSCA v2.2 kernel): the
forward BFS records, for every vertex, its shortest-path predecessors;
the backward phase walks levels deepest-first, each vertex pulling
contributions from its stored predecessor arcs. Here the per-level
predecessor arcs are exactly the ``level_arcs`` recorded by
:func:`repro.graph.traversal.bfs_sigma`, and the per-level parallel-for
is a vectorised scatter-add (see DESIGN.md §5 for the parallelism
mapping). ``workers > 1`` adds coarse-grained source parallelism over
a process pool.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.graph.csr import CSRGraph

__all__ = ["preds_bc"]


def preds_bc(
    graph: CSRGraph,
    *,
    workers: int = 1,
    counter: Optional[WorkCounter] = None,
    batch_size=None,
    steal: bool = True,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Exact BC with stored predecessor arcs (Bader–Madduri).

    ``batch_size`` routes the run through the multi-source batched
    kernel (the predecessor arcs are shared per level across the
    batch); composed with ``workers`` the batches fan out over the
    execution backend named by ``backend`` (threads / processes /
    serial, host default when unset — :mod:`repro.parallel.backends`;
    ``steal`` toggles work stealing).  ``kernel`` names the compute
    kernel for the batched traversals (:mod:`repro.graph.kernels`)
    and implies ``batch_size="auto"`` when none is set.
    """
    return run_per_source(
        graph,
        mode="arcs",
        workers=workers,
        counter=counter,
        batch_size=batch_size,
        steal=steal,
        backend=backend,
        kernel=kernel,
    )
