"""Graph and partition statistics (paper Tables 1 and 4).

Table 1 lists each evaluation graph's size and directedness; Table 4
reports, per graph, the number of sub-graphs and the sizes of the
three largest (with the top sub-graph's share of vertices and edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.decompose.partition import Partition
from repro.graph.csr import CSRGraph
from repro.graph.ops import degrees

__all__ = [
    "GraphStats",
    "SubgraphRow",
    "PartitionStats",
    "graph_stats",
    "partition_stats",
]


@dataclass
class GraphStats:
    """Structural summary of one graph (Table-1 row + APGRE knobs)."""

    name: str
    num_vertices: int
    num_arcs: int
    directed: bool
    num_articulation_points: int
    num_pendants: int  # degree-1 (und.) / source-pendant (dir.) vertices
    max_degree: int
    mean_degree: float

    @property
    def pendant_fraction(self) -> float:
        return self.num_pendants / self.num_vertices if self.num_vertices else 0.0


def graph_stats(graph: CSRGraph, *, name: str = "") -> GraphStats:
    """Compute a :class:`GraphStats` (runs one BCC decomposition)."""
    from repro.decompose.articulation import articulation_points

    deg = degrees(graph)
    if graph.directed:
        pend = int(
            ((graph.in_degrees() == 0) & (graph.out_degrees() == 1)).sum()
        )
    else:
        pend = int((deg == 1).sum())
    return GraphStats(
        name=name,
        num_vertices=graph.n,
        num_arcs=graph.num_arcs,
        directed=graph.directed,
        num_articulation_points=int(articulation_points(graph).size),
        num_pendants=pend,
        max_degree=int(deg.max()) if graph.n else 0,
        mean_degree=float(deg.mean()) if graph.n else 0.0,
    )


@dataclass
class SubgraphRow:
    """One sub-graph's size row (Table 4 columns)."""

    num_vertices: int
    num_arcs: int
    vertex_fraction: float  # V / G.V
    arc_fraction: float  # E / G.E


@dataclass
class PartitionStats:
    """Table-4 row for one graph."""

    name: str
    num_subgraphs: int
    rows: List[SubgraphRow]  # largest-first; at least top/2nd/3rd

    @property
    def top(self) -> SubgraphRow:
        return self.rows[0]


def partition_stats(
    partition: Partition, *, name: str = "", keep: int = 3
) -> PartitionStats:
    """Summarise a partition as the paper's Table 4 does.

    ``keep`` limits how many largest sub-graphs are materialised as
    rows (the paper shows three).
    """
    g = partition.graph
    n = max(g.n, 1)
    m = max(g.num_arcs, 1)
    ordered = sorted(
        partition.subgraphs, key=lambda s: (-s.num_arcs, -s.num_vertices)
    )
    rows = [
        SubgraphRow(
            num_vertices=sg.num_vertices,
            num_arcs=sg.num_arcs,
            vertex_fraction=sg.num_vertices / n,
            arc_fraction=sg.num_arcs / m,
        )
        for sg in ordered[:keep]
    ]
    while len(rows) < keep:  # tiny graphs may have < keep sub-graphs
        rows.append(SubgraphRow(0, 0, 0.0, 0.0))
    return PartitionStats(
        name=name, num_subgraphs=partition.num_subgraphs, rows=rows
    )
