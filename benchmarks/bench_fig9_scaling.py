"""Figure 9 — parallel scaling of the algorithms on the dblp analogue.

Benchmarks APGRE at several worker counts (process pool) and emits the
measured-speedup table with the LPT work-model column (this host has a
single core, so measured curves are flat; the model column carries the
paper's shape — see EXPERIMENTS.md).
"""

import pytest

from repro.bench.experiments import fig9
from repro.bench.workloads import get_partition, scaling_graph
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig

from conftest import one_shot


@pytest.mark.parametrize("workers", [1, 2, 4, 8, 12])
def test_apgre_workers(benchmark, workers):
    name, graph = scaling_graph()
    partition = get_partition(name)
    config = APGREConfig(
        parallel="processes" if workers > 1 else "serial", workers=workers
    )
    result = one_shot(
        benchmark, apgre_bc_detailed, graph, config, partition=partition
    )
    assert result.scores.shape == (graph.n,)
    benchmark.group = f"fig9-{name}"
    benchmark.extra_info["workers"] = workers


def test_report_fig9(benchmark, report, results_dir, capsys):
    result = one_shot(benchmark, fig9)
    # the model column grows monotonically with workers
    model = [row[-1] for row in result.rows]
    assert all(b >= a - 1e-9 for a, b in zip(model, model[1:]))
    assert model[0] == pytest.approx(1.0)
    report(result)
    from repro.bench.report import render_lines

    x = [row[0] for row in result.rows]
    series = {
        header: [row[i + 1] for row in result.rows]
        for i, header in enumerate(result.headers[1:])
    }
    chart = render_lines(
        "Figure 9 (chart): speedup vs workers", x, series
    )
    (results_dir / "figure9_chart.txt").write_text(chart + "\n")
    with capsys.disabled():
        print(f"\n{chart}\n")
