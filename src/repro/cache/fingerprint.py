"""Stable content fingerprints for graphs and sub-graph contributions.

A cache entry is valid iff the sub-graph's edges *and* the cross-
articulation summaries feeding it are byte-identical, so the key hashes
exactly the inputs :func:`repro.core.bc_subgraph.bc_subgraph` reads:

* the sub-graph's local CSR arrays and directedness;
* the root set ``R_sgi`` and pendant multiplicities ``γ_sgi``;
* the boundary mask ``A_sgi`` and the ``α_sgi``/``β_sgi`` summaries;
* the ``eliminate_pendants`` switch (it changes the source set).

Global vertex ids are deliberately **excluded**: local coordinates are
assigned deterministically (sorted global ids → ``arange``), and the
local score vector of two sub-graphs that agree on everything above is
identical regardless of where they sit in the host graph.  Structurally
repeated components (bridge chains, identical satellites) therefore
share one entry — content addressing, not location addressing.

Hashes are BLAKE2b-128 over dtype/shape/bytes of each array, with
domain separation between fields; arrays are made C-contiguous before
hashing (CSR arrays already are).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["array_digest", "graph_fingerprint", "subgraph_key"]

#: bytes of BLAKE2b digest — 128 bits, collision-safe at any realistic
#: cache population and half the key-string length of sha256
_DIGEST_SIZE = 16


def _feed(h, label: str, arr: np.ndarray) -> None:
    """Hash one array with a field label for domain separation."""
    arr = np.ascontiguousarray(arr)
    h.update(label.encode())
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def array_digest(arr: np.ndarray) -> str:
    """Hex digest of one array's dtype, shape and bytes."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    _feed(h, "array", arr)
    return h.hexdigest()


def graph_fingerprint(graph: CSRGraph) -> str:
    """Canonical hex fingerprint of a CSR graph's structure.

    Two graphs fingerprint equal iff they have the same vertex count,
    directedness and byte-identical CSR arrays (the reverse CSR is
    derived from the forward one, so hashing the forward arrays
    suffices for both orientations).
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"csr-graph")
    h.update(str(int(graph.n)).encode())
    h.update(b"d" if graph.directed else b"u")
    _feed(h, "indptr", graph.out_indptr)
    _feed(h, "indices", graph.out_indices)
    return h.hexdigest()


def subgraph_key(sg, *, eliminate_pendants: bool = True) -> str:
    """Cache key of one sub-graph's local contribution vector.

    ``sg`` is a :class:`repro.decompose.partition.Subgraph` whose
    ``alpha``/``beta`` arrays are already filled (the key *must* see
    the summaries — a sub-graph with unchanged edges but a changed α
    on a boundary articulation point produces different scores).
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"bc-contribution-v1")
    h.update(b"ep" if eliminate_pendants else b"all")
    h.update(graph_fingerprint(sg.graph).encode())
    _feed(h, "roots", sg.roots)
    _feed(h, "gamma", sg.gamma)
    _feed(h, "boundary", sg.is_boundary_art)
    _feed(h, "alpha", sg.alpha)
    _feed(h, "beta", sg.beta)
    return h.hexdigest()
