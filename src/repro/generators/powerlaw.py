"""Power-law (scale-free) graph models.

Real-world graphs "typically have the power-law degree distributions,
which implies that a small subset of the vertices are connected to a
large fraction of the graph, and there are many vertices with a single
edge" (paper §2.2) — the very structure APGRE exploits. These models
provide the scale-free cores of the analogue suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["barabasi_albert_graph", "powerlaw_cluster_graph"]


def barabasi_albert_graph(
    n: int, m: int, *, directed: bool = False, seed: Seed = None
) -> CSRGraph:
    """Barabási–Albert preferential attachment.

    Each new vertex attaches ``m`` edges to existing vertices chosen
    proportionally to degree (via the repeated-endpoints trick: sample
    uniformly from the running arc-endpoint list). For
    ``directed=True`` new arcs point from the newcomer to the chosen
    target, yielding a citation-style DAG-ish digraph with power-law
    in-degrees.

    Degrees-1 vertices do not arise for ``m >= 1`` beyond the seed
    clique, so pendant structure must be added separately (see
    :func:`repro.generators.structured.pendant_augment`).
    """
    if m < 1 or (n > 0 and m >= max(n, 2)):
        raise GraphValidationError(
            f"need 1 <= m < n for Barabási–Albert, got m={m} n={n}"
        )
    rng = as_rng(seed)
    if n <= m:
        return CSRGraph.from_arcs(n, [], [], directed=directed)
    # endpoint pool for preferential attachment; seeded with a star
    # over the first m+1 vertices so every early vertex has degree > 0
    src_list = [np.arange(1, m + 1, dtype=np.int64)]
    dst_list = [np.zeros(m, dtype=np.int64)]
    pool = np.concatenate([np.arange(m + 1), np.zeros(m - 1, dtype=np.int64)])
    pool = pool.astype(np.int64)
    for v in range(m + 1, n):
        targets = np.empty(0, dtype=np.int64)
        # rejection loop: resample collisions until m distinct targets
        while targets.size < m:
            need = m - targets.size
            cand = pool[rng.integers(0, pool.size, size=need * 2 + 2)]
            targets = np.unique(np.concatenate([targets, cand]))[:m]
        src_list.append(np.full(m, v, dtype=np.int64))
        dst_list.append(targets)
        pool = np.concatenate([pool, targets, np.full(m, v, dtype=np.int64)])
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    return CSRGraph.from_arcs(n, src, dst, directed=directed)


def powerlaw_cluster_graph(
    n: int,
    m: int,
    triangle_p: float,
    *,
    directed: bool = False,
    seed: Seed = None,
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle is closed with probability ``triangle_p`` (connect to a
    random neighbour of the previous target). Higher clustering makes
    the giant biconnected component denser — useful for web-graph
    analogues whose top sub-graph holds ~90% of the edges (Table 4).
    """
    if not 0.0 <= triangle_p <= 1.0:
        raise GraphValidationError(
            f"triangle_p must be in [0, 1], got {triangle_p}"
        )
    if m < 1 or (n > 0 and m >= max(n, 2)):
        raise GraphValidationError(
            f"need 1 <= m < n for Holme–Kim, got m={m} n={n}"
        )
    rng = as_rng(seed)
    if n <= m:
        return CSRGraph.from_arcs(n, [], [], directed=directed)
    adj = {v: set() for v in range(n)}

    def add(u: int, w: int) -> None:
        adj[u].add(w)
        adj[w].add(u)

    for i in range(1, m + 1):
        add(i, 0)
    pool = [0] * (2 * m)
    pool[: m + 1] = list(range(m + 1))
    for v in range(m + 1, n):
        added = set()
        last_target = None
        while len(added) < m:
            close_triangle = (
                last_target is not None
                and rng.random() < triangle_p
                and adj[last_target]
            )
            if close_triangle:
                w = int(
                    list(adj[last_target])[
                        rng.integers(0, len(adj[last_target]))
                    ]
                )
            else:
                w = int(pool[rng.integers(0, len(pool))])
            if w != v and w not in added:
                added.add(w)
                add(v, w)
                last_target = w
        pool.extend(added)
        pool.extend([v] * m)
    src, dst = [], []
    for u, nbrs in adj.items():
        for w in nbrs:
            if u < w:
                src.append(u)
                dst.append(w)
    return CSRGraph.from_arcs(n, src, dst, directed=directed)
