"""Result types for instrumented APGRE runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.supervisor import RunHealth

__all__ = [
    "PhaseTimings",
    "APGREStats",
    "BCResult",
    "normalize_scores",
    "to_networkx_convention",
]


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Rescale raw ordered-pair BC scores to [0, 1].

    The raw convention in this package sums ``σ_st(v)/σ_st`` over all
    ordered pairs ``s ≠ v ≠ t`` (the paper's definition), whose count
    is ``(n-1)(n-2)`` — the standard normaliser for both directed and
    undirected graphs (networkx's undirected normalisation, half the
    pairs over halved scores, cancels to the same value).
    """
    n = scores.size
    pairs = (n - 1) * (n - 2)
    if pairs <= 0:
        return scores.astype(np.float64, copy=True)
    return scores / pairs


def to_networkx_convention(
    scores: np.ndarray, *, directed: bool
) -> np.ndarray:
    """Convert raw scores to networkx's unnormalised convention.

    networkx counts each unordered pair once on undirected graphs, so
    undirected scores are halved; directed scores pass through.
    """
    if directed:
        return scores.astype(np.float64, copy=True)
    return scores / 2.0


@dataclass
class PhaseTimings:
    """Wall-clock seconds per APGRE phase (paper Figure 8).

    ``top_bc`` vs ``rest_bc`` splits the third phase between the top
    sub-graph and all others — the quantity Figure 8 plots ("the BC
    calculation of the top sub-graph is the majority of the total
    execution time"). The split is measured in serial mode; parallel
    modes report the whole phase under ``rest_bc``.
    """

    partition: float = 0.0
    alpha_beta: float = 0.0
    top_bc: float = 0.0
    rest_bc: float = 0.0

    @property
    def total(self) -> float:
        return self.partition + self.alpha_beta + self.top_bc + self.rest_bc

    def fractions(self) -> Dict[str, float]:
        """Phase shares of total time (empty-total guard included)."""
        t = self.total or 1.0
        return {
            "partition": self.partition / t,
            "alpha_beta": self.alpha_beta / t,
            "top_bc": self.top_bc / t,
            "rest_bc": self.rest_bc / t,
        }


@dataclass
class APGREStats:
    """Counters describing one APGRE run.

    ``edges_traversed`` counts edges the run actually examined;
    ``edges_replayed`` counts the examined-edge tallies of cached
    sub-graph contributions that were *replayed* instead of
    recomputed (cache-enabled runs only — docs/CACHING.md).  The two
    are never mixed: TEPS over ``edges_traversed`` stays an honest
    hardware rate, and ``edges_replayed`` quantifies the work the
    cache eliminated.

    ``edges_resumed`` / ``subgraphs_resumed`` are the journal's
    analogue (``resume=True`` runs only — docs/ROBUSTNESS.md): the
    examined-edge tallies and count of sub-graph contributions
    *replayed from the run journal* instead of recomputed.  Like
    ``edges_replayed`` they never feed TEPS, and the identity
    ``edges_resumed + edges_replayed + edges_traversed`` equals the
    from-scratch ``edges_traversed`` of an identical unjournaled run.

    ``shards_created`` / ``separator_vertices`` / ``edges_correction``
    describe divide-and-conquer sharding (``shard=True`` runs only;
    docs/SHARDING.md): the number of shard work units carved out of
    over-threshold sub-graphs, the total separator size, and the
    edges examined building the plans' barrier tables and shard
    graphs — one-time setup work a sharded run performs that an
    unsharded run would not.  ``largest_shard_ratio`` is the largest
    shard (interior + separator) over its sub-graph's vertex count,
    maximised over the sharded sub-graphs (1.0 when nothing sharded)
    — the critical-path shrink factor sharding bought.
    ``edges_correction`` stays out of ``edges_traversed``/TEPS,
    exactly like the replay tallies; the per-source sweeps *and* the
    correction-sweep replays they trigger are real per-run traversal
    work and stay inside ``edges_traversed``.

    ``vertices_merged`` / ``chains_contracted`` / ``vertices_peeled``
    tally the structural compression (``compress=True`` runs only;
    docs/COMPRESSION.md): twin-class members collapsed into their
    representatives, chain interiors contracted into super-edges, and
    pendants folded into endpoint mass.  ``compression_ratio`` is
    ``Σ n / Σ n_core`` over all sub-graphs (1.0 when compression is
    off or nothing fired).  Like ``edges_replayed``, these never feed
    TEPS — they describe work *avoided*, not performed.

    ``edges_pulled`` / ``kernel_switches`` describe the direction-
    optimizing compute kernel (docs/KERNELS.md): arcs examined by
    bottom-up (pull) passes and the number of push↔pull direction
    flips.  ``edges_traversed`` counts top-down probes and backward
    replays, so ``edges_traversed + edges_pulled`` is a kernelled
    run's true examined-arc total — both terms are real memory
    traffic and feed TEPS; ``kernel_switches`` is heuristic
    bookkeeping and stays outside it.
    """

    num_subgraphs: int = 0
    num_articulation_points: int = 0
    num_boundary_arts: int = 0
    num_removed_pendants: int = 0
    num_sources: int = 0
    edges_traversed: int = 0
    edges_pulled: int = 0
    kernel_switches: int = 0
    edges_replayed: int = 0
    edges_resumed: int = 0
    subgraphs_replayed: int = 0
    subgraphs_resumed: int = 0
    subgraphs_recomputed: int = 0
    alpha_beta_pairs: int = 0
    alpha_beta_method: str = ""
    shards_created: int = 0
    separator_vertices: int = 0
    edges_correction: int = 0
    largest_shard_ratio: float = 1.0
    vertices_merged: int = 0
    chains_contracted: int = 0
    vertices_peeled: int = 0
    compression_ratio: float = 1.0
    timings: PhaseTimings = field(default_factory=PhaseTimings)


@dataclass
class BCResult:
    """Scores plus run statistics.

    ``scores[v]`` is the exact unnormalised BC of vertex ``v`` (same
    convention as every baseline in :mod:`repro.baselines`).

    ``health`` is the supervision report of a
    ``parallel="processes"`` run (retries, worker crashes, timeouts,
    serial fallbacks — see
    :class:`repro.parallel.supervisor.RunHealth`); ``None`` for
    serial and thread runs, which have no pool to supervise. Check
    ``health.degraded`` to detect a run that needed any fallback.
    """

    scores: np.ndarray
    stats: APGREStats
    health: Optional["RunHealth"] = None

    def top_k(self, k: int) -> np.ndarray:
        """Vertex ids of the ``k`` highest-BC vertices, best first."""
        k = min(k, self.scores.size)
        idx = np.argpartition(-self.scores, np.arange(k))[:k]
        return idx.astype(np.int64)
