"""Unit tests for the graph builders and converters."""

import numpy as np
import networkx as nx
import pytest

from repro.errors import GraphValidationError
from repro.graph.build import (
    empty_graph,
    from_adjacency,
    from_edges,
    from_networkx,
)
from repro.graph.convert import (
    from_scipy_sparse,
    to_edge_array,
    to_networkx,
    to_scipy_sparse,
)


class TestFromEdges:
    def test_basic_undirected(self):
        g = from_edges([(0, 1), (1, 2)])
        assert not g.directed
        assert g.n == 3
        assert g.num_undirected_edges == 2

    def test_basic_directed(self):
        g = from_edges([(0, 1), (1, 0)], directed=True)
        assert g.directed
        assert g.num_arcs == 2

    def test_explicit_n_allows_isolated(self):
        g = from_edges([(0, 1)], n=5)
        assert g.n == 5
        assert list(g.out_neighbors(4)) == []

    def test_numpy_input(self):
        arr = np.asarray([[0, 1], [1, 2]])
        g = from_edges(arr)
        assert g.n == 3

    def test_empty_iterable(self):
        g = from_edges([])
        assert g.n == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphValidationError, match=r"\(m, 2\)"):
            from_edges(np.zeros((3, 3)))


class TestFromAdjacency:
    def test_basic(self):
        g = from_adjacency({0: [1, 2], 1: [2]})
        assert g.n == 3
        assert g.has_edge(2, 0)  # undirected

    def test_directed(self):
        g = from_adjacency({0: [1]}, directed=True)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_keyless_targets(self):
        g = from_adjacency({0: [5]})
        assert g.n == 6

    def test_keys_beyond_targets_count(self):
        g = from_adjacency({0: [1], 7: []})
        assert g.n == 8

    def test_empty(self):
        assert from_adjacency({}).n == 0


class TestNetworkxRoundTrip:
    def test_roundtrip_undirected(self):
        nxg = nx.gnm_random_graph(20, 35, seed=1)
        g = from_networkx(nxg)
        back = to_networkx(g)
        assert set(back.edges()) == set(nxg.edges())
        assert back.number_of_nodes() == 20

    def test_roundtrip_directed(self):
        nxg = nx.gnm_random_graph(15, 40, seed=2, directed=True)
        g = from_networkx(nxg)
        back = to_networkx(g)
        assert set(back.edges()) == set(nxg.edges())
        assert back.is_directed()

    def test_isolated_nodes_preserved(self):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(4))
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.n == 4
        assert to_networkx(g).number_of_nodes() == 4

    def test_non_integer_labels_rejected(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(GraphValidationError, match="ints"):
            from_networkx(nxg)

    def test_empty_nx_graph(self):
        assert from_networkx(nx.Graph()).n == 0


class TestScipy:
    def test_scipy_roundtrip_directed(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        mat = to_scipy_sparse(g)
        assert mat.shape == (3, 3)
        back = from_scipy_sparse(mat, directed=True)
        assert back == g

    def test_scipy_symmetric_for_undirected(self):
        g = from_edges([(0, 1)])
        mat = to_scipy_sparse(g).toarray()
        assert (mat == mat.T).all()

    def test_edge_array_undirected_unique(self):
        g = from_edges([(0, 1), (1, 2)])
        arr = to_edge_array(g)
        assert arr.shape == (2, 2)
        assert (arr[:, 0] <= arr[:, 1]).all()

    def test_edge_array_directed_all_arcs(self):
        g = from_edges([(0, 1), (1, 0)], directed=True)
        assert to_edge_array(g).shape == (2, 2)


class TestEmptyGraph:
    def test_empty(self):
        g = empty_graph(4)
        assert g.n == 4 and g.num_arcs == 0

    def test_empty_directed(self):
        assert empty_graph(2, directed=True).directed
