"""POSIX shared-memory arrays.

With the ``fork`` start method the read-only graph is shared for free
(copy-on-write pages), so the pool never strictly needs this module.
It exists for the two situations where fork is unavailable or
insufficient: ``spawn``-only platforms (broadcasting the CSR arrays
without per-task pickling) and *writeback* buffers that must outlive a
worker — the batched pool's per-worker score slots
(:mod:`repro.parallel.batched_pool`) are exactly that.  The wrapper
owns the segment lifecycle explicitly because the interpreter does not
reliably garbage-collect shared memory at exit: every instance carries
a :mod:`weakref` finalizer that closes (and, for the creating process,
unlinks) the segment if the owner forgets to, so an exception anywhere
between ``create`` and ``unlink`` cannot leak a ``/dev/shm`` segment
for the lifetime of the machine.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = ["SharedArray"]


def _cleanup(shm: shared_memory.SharedMemory, owner: bool, pid: int) -> None:
    """Finalizer body: close this mapping, unlink if we created it.

    The ``pid`` guard matters under ``fork``: children inherit the
    parent's ``SharedArray`` objects, and a child exiting normally runs
    the inherited finalizers — without the guard it would unlink the
    segment out from under the parent and its siblings.
    """
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed
        pass
    if owner and os.getpid() == pid:
        try:
            shm.unlink()
        except FileNotFoundError:  # already unlinked explicitly
            pass


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment.

    Usage::

        owner = SharedArray.create((n,), np.float64)   # parent
        view  = SharedArray.attach(owner.name, (n,), np.float64)  # child
        ...
        view.close()      # every attacher
        owner.unlink()    # owner only, once

    or, scope the whole lifecycle (close + owner unlink) with a
    ``with`` block::

        with SharedArray.create((n,), np.float64) as buf:
            buf.array[:] = scores

    The array is exposed via :attr:`array`; it remains valid until
    :meth:`close`.  Instances also carry a finalizer so a leaked
    reference is cleaned up at garbage collection / interpreter exit
    (creating process only — forked children never unlink).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        import weakref

        self._finalizer = weakref.finalize(
            self, _cleanup, shm, owner, os.getpid()
        )

    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        """Allocate a zero-initialised shared array (caller owns it)."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        out = cls(shm, shape, dtype, owner=True)
        out.array.fill(0)
        return out

    @classmethod
    def attach(
        cls, name: str, shape: Tuple[int, ...], dtype
    ) -> "SharedArray":
        """Attach to an existing segment by name (non-owning view)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    @property
    def name(self) -> str:
        """Segment name to hand to :meth:`attach` in another process."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        """Whether this instance created (and must unlink) the segment."""
        return self._owner

    def close(self) -> None:
        """Release this process's mapping (array becomes invalid)."""
        if self._closed:
            return
        self._closed = True
        # drop the numpy view first: closing a mapped buffer raises
        self.array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after close)."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            self._finalizer.detach()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - lost race
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()
