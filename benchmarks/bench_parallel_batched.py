"""Parallel-batched bench: serial batched vs the execution backends.

The coarse-level companion to ``bench_batched_kernel.py``: the same
two >= 50k-vertex suite graphs and fixed source sample, measuring the
serial batched path (``batch_size="auto"``, its best configuration)
against every requested execution backend
(:mod:`repro.parallel.backends` — the GIL-free thread engine of
:mod:`repro.parallel.threaded` and the persistent shared-memory
process pool) at ``--workers`` workers with work stealing on.  One row
per graph x backend.  Each engine run uses a fixed batch width that
yields ``~2 x workers`` batches so the LPT/steal scheduler has
something to schedule; scores are asserted against serial to 1e-9 and
the WorkCounter edge tallies must match exactly.

Every row also reports ``model_speedup`` — the work/critical-path
bound ``sum(batch) / lpt_makespan(batch, workers)`` from
:mod:`repro.parallel.scheduler` — and the JSON embeds the environment
provenance block (active backend, worker count, cores, which backends
the host can run), because the measured column is only meaningful next
to the machine that produced it.

Honest numbers note: the acceptance bars (threads >= 1.5x, processes
>= 2.5x over serial batched at 4 workers) are multi-core numbers; on a
1-CPU container the workers timeshare one core and the measured
speedup is ~1x minus scheduling overhead, so those assertions are
gated on ``available_workers() >= workers``.  CI enforces the threads
bar unconditionally on a >= 4-core runner via ``--min-speedup`` (see
.github/workflows/ci.yml, job ``bench-multicore``); a committed
``BENCH_parallel.json`` regenerated on a single-core host records the
single-core measurement plus the model column, with the environment
block saying exactly that.  The unconditional guards are correctness,
exact tallies, and not falling below half the committed baseline.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.common import WorkCounter, run_per_source
from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.metrics.teps import examined_mteps
from repro.parallel.backends import backend_names, get_backend
from repro.parallel.pool import available_workers
from repro.parallel.scheduler import lpt_makespan
from repro.parallel.supervisor import RunHealth

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: (suite graph, scale, sources) — the BENCH_baseline.json workloads.
WORKLOADS = [
    ("USA-roadBAY", 10.5, 128),
    ("WikiTalk", 49.0, 128),
]
QUICK_WORKLOADS = [
    ("USA-roadBAY", 3.0, 32),
]
SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise
WORKERS = 4
QUICK_WORKERS = 2

#: Measured-speedup acceptance bar per backend, applied only when the
#: host has at least as many cores as workers (serial is the 1x
#: reference and has no bar).
SPEEDUP_TARGETS = {"threads": 1.5, "processes": 2.5}


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_workload(name, scale, n_sources, workers=WORKERS,
                     backends=("processes",)):
    """One graph's serial-batched vs per-backend measurement rows."""
    graph = get_graph(name, scale=scale)
    rng = np.random.default_rng(SEED)
    sources = np.sort(
        rng.choice(graph.n, size=min(n_sources, graph.n), replace=False)
    ).tolist()
    # fixed engine batch width: ~2 batches per worker, so LPT placement
    # and stealing have a schedule to work with (auto would often give
    # one batch for the whole sample, leaving workers idle)
    batch = max(len(sources) // (2 * workers), 1)
    n_batches = -(-len(sources) // batch)
    weights = [
        min(batch, len(sources) - lo)
        for lo in range(0, len(sources), batch)
    ]

    counter = WorkCounter()
    run_per_source(
        graph, sources=sources, mode="arcs", counter=counter,
        batch_size="auto",
    )
    edges = counter.edges
    serial, t_serial = _best_of(
        lambda: run_per_source(
            graph, sources=sources, mode="arcs", batch_size="auto"
        )
    )
    serial_same_batch = WorkCounter()
    run_per_source(
        graph, sources=sources, mode="arcs", counter=serial_same_batch,
        batch_size=batch,
    )

    rows = []
    for backend in backends:
        health = RunHealth()
        engine_counter = WorkCounter()

        def engine_run():
            return run_per_source(
                graph,
                sources=sources,
                mode="arcs",
                batch_size=batch,
                workers=workers,
                backend=backend,
            )

        result, t_engine = _best_of(engine_run)
        # correctness + exact-tally checks on an instrumented run
        checked = run_per_source(
            graph,
            sources=sources,
            mode="arcs",
            batch_size=batch,
            workers=workers,
            backend=backend,
            counter=engine_counter,
            health=health,
        )
        np.testing.assert_allclose(result, serial, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(checked, serial, rtol=1e-9, atol=1e-9)
        assert engine_counter.edges == serial_same_batch.edges, (
            f"{name}/{backend}: engine edge tally {engine_counter.edges} "
            f"!= serial {serial_same_batch.edges}"
        )
        rows.append({
            "graph": name,
            "backend": backend,
            "scale": scale,
            "n": graph.n,
            "m": graph.num_arcs,
            "sources": len(sources),
            "workers": workers,
            "pool_batch": batch,
            "batches": n_batches,
            "edges_examined": edges,
            "serial_batched_seconds": round(t_serial, 4),
            "pooled_seconds": round(t_engine, 4),
            "serial_batched_mteps": round(examined_mteps(edges, t_serial), 2),
            "pooled_mteps": round(examined_mteps(edges, t_engine), 2),
            "speedup": round(t_serial / t_engine, 3),
            "model_speedup": round(
                sum(weights) / lpt_makespan(weights, workers), 3
            ),
            "steals": health.steals,
            "health": health.summary(),
        })
    return rows


def available_backend_names():
    """Registry backends this host can actually run, preference order."""
    return [n for n in backend_names() if get_backend(n).available()]


def run_bench(quick=False, out_path=None, workers=None, backends=None):
    """Measure every workload x backend; returns (payload, path)."""
    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    if workers is None:
        workers = QUICK_WORKERS if quick else WORKERS
    if backends is None:
        backends = available_backend_names()
    rows = []
    for w in workloads:
        rows.extend(measure_workload(*w, workers=workers, backends=backends))
    payload = {
        "bench": "bench_parallel_batched",
        "seed": SEED,
        "repeat": REPEAT,
        "quick": quick,
        "backends": list(backends),
        "environment": environment_provenance(
            workers=workers, backend=",".join(backends)
        ),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_parallel_batched.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False, min_speedup=None):
    """Perf guards, scaled to what this machine can actually show.

    ``min_speedup`` (the CI knob) unconditionally asserts every
    non-serial backend row reaches that measured speedup — the caller
    is vouching that the host has the cores (the workflow gates the
    job on ``nproc``).  Without it, the per-backend targets in
    ``SPEEDUP_TARGETS`` apply only when ``available_workers()`` covers
    the worker count.
    """
    cores = available_workers()
    for row in rows:
        backend = row.get("backend", "processes")
        target = SPEEDUP_TARGETS.get(backend)
        if min_speedup is not None and backend != "serial":
            assert row["speedup"] >= min_speedup, (
                f"{row['graph']}/{backend}: measured {row['speedup']}x at "
                f"{row['workers']} workers is below the enforced "
                f"--min-speedup {min_speedup}x"
            )
        elif (
            target is not None
            and not quick
            and cores >= row["workers"]
        ):
            # the real acceptance bar — only measurable with the cores
            assert row["speedup"] >= target, (
                f"{row['graph']}/{backend}: {row['speedup']}x at "
                f"{row['workers']} workers on {cores} cores "
                f"(target >= {target}x)"
            )
        # scheduler-model sanity: the LPT bound must show headroom for
        # the fan-out even when the host cannot
        assert row["model_speedup"] >= 2.0 or row["workers"] < 4, (
            f"{row['graph']}: LPT model speedup {row['model_speedup']}x "
            f"leaves the engine starved — batch plan is wrong"
        )
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {
        (r["graph"], r.get("backend", "processes")): r
        for r in baseline["workloads"]
    }
    for row in rows:
        backend = row.get("backend", "processes")
        base = base_rows.get((row["graph"], backend))
        if base is None:
            continue
        assert row["speedup"] >= 0.5 * base["speedup"], (
            f"{row['graph']}/{backend}: speedup {row['speedup']}x fell to "
            f"less than half the committed baseline {base['speedup']}x"
        )


def test_parallel_batched_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph, 2 workers — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=("serial", "threads", "processes"),
        default=None,
        help="backend(s) to measure (repeatable; default: every "
        "backend this host can run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker count (default {QUICK_WORKERS} with --quick, "
        f"else {WORKERS})",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="unconditionally require every non-serial backend row to "
        "reach X measured speedup (the CI enforcement knob — only pass "
        "on a host with enough cores)",
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(
        quick=args.quick,
        out_path=args.out,
        workers=args.workers,
        backends=args.backend,
    )
    print(json.dumps(payload, indent=2))
    check_rows(
        payload["workloads"], quick=args.quick, min_speedup=args.min_speedup
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
