"""Decomposition-aware contribution cache (docs/CACHING.md).

APGRE's BCC tree localises dependency flow: a sub-graph's local score
vector depends only on its own edges plus the α/β/γ summaries crossing
its articulation points (PAPER.md §3–4).  This package turns that
theorem into a cache:

* :mod:`repro.cache.fingerprint` — canonical, content-addressed keys
  over exactly the inputs the local scores depend on;
* :mod:`repro.cache.store` — an in-memory LRU with an optional
  on-disk layer (``cache_dir``), storing each sub-graph's local score
  vector *and* its exact examined-edge tally so TEPS accounting stays
  honest on replay;
* :mod:`repro.cache.incremental` — ``apgre_bc_delta``: apply a small
  edge delta, re-decompose, and recompute only the sub-graphs whose
  fingerprints changed, replaying everything else.

``apgre_bc_delta`` is re-exported lazily (PEP 562) because it imports
the APGRE driver, which itself consults this package's store layer.
"""

from repro.cache.fingerprint import (
    graph_fingerprint,
    subgraph_key,
)
from repro.cache.store import (
    CacheEntry,
    CacheStats,
    ContributionStore,
    resolve_store,
)

__all__ = [
    "graph_fingerprint",
    "subgraph_key",
    "CacheEntry",
    "CacheStats",
    "ContributionStore",
    "resolve_store",
    "apgre_bc_delta",
    "apply_edge_delta",
    "DeltaResult",
    "parse_delta_file",
    "parse_delta_lines",
]

_INCREMENTAL_NAMES = (
    "apgre_bc_delta",
    "apply_edge_delta",
    "DeltaResult",
    "parse_delta_file",
    "parse_delta_lines",
)


def __getattr__(name: str):
    if name in _INCREMENTAL_NAMES:
        from repro.cache import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
