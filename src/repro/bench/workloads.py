"""Benchmark workload construction and caching.

Graphs are deterministic for a given scale, so one process-wide cache
serves every experiment; partitions (with α/β filled) are cached too,
letting the scaling benchmarks time only the phase they sweep.

Environment knobs:

``REPRO_SCALE``
    Float multiplier on every analogue graph's size (default 1.0).
    ``REPRO_SCALE=2`` roughly quadruples BC work.
``REPRO_GRAPHS``
    Comma-separated Table-1 names to restrict the suite (default all
    12), e.g. ``REPRO_GRAPHS=Email-Enron,USA-roadNY pytest benchmarks``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import Partition, graph_partition
from repro.errors import BenchmarkError
from repro.generators.suite import analogue_graph, suite_names
from repro.graph.csr import CSRGraph

__all__ = [
    "bench_scale",
    "get_redundancy",
    "bench_graph_names",
    "get_graph",
    "get_suite",
    "get_partition",
    "scaling_graph",
]

_GRAPH_CACHE: Dict[Tuple[str, float], CSRGraph] = {}
_PARTITION_CACHE: Dict[Tuple[str, float, int, str], Partition] = {}
_REDUNDANCY_CACHE: Dict[Tuple[str, float], object] = {}


def bench_scale() -> float:
    """The active ``REPRO_SCALE`` (validated)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise BenchmarkError(f"REPRO_SCALE must be a float, got {raw!r}")
    if scale <= 0:
        raise BenchmarkError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


def bench_graph_names() -> List[str]:
    """Suite names selected by ``REPRO_GRAPHS`` (default: all 12)."""
    raw = os.environ.get("REPRO_GRAPHS", "").strip()
    if not raw:
        return suite_names()
    names = [part.strip() for part in raw.split(",") if part.strip()]
    unknown = [n for n in names if n not in suite_names()]
    if unknown:
        raise BenchmarkError(
            f"REPRO_GRAPHS contains unknown graphs: {', '.join(unknown)}"
        )
    return names


def get_graph(name: str, *, scale: float | None = None) -> CSRGraph:
    """One analogue graph, cached per (name, scale)."""
    scale = bench_scale() if scale is None else scale
    key = (name, scale)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = analogue_graph(name, scale=scale)
    return _GRAPH_CACHE[key]


def get_suite(*, scale: float | None = None) -> Dict[str, CSRGraph]:
    """The selected suite graphs in Table-1 order."""
    return {name: get_graph(name, scale=scale) for name in bench_graph_names()}


def get_partition(
    name: str,
    *,
    scale: float | None = None,
    config: APGREConfig | None = None,
) -> Partition:
    """A cached partition with α/β filled for one suite graph."""
    scale = bench_scale() if scale is None else scale
    config = config or APGREConfig()
    key = (name, scale, config.threshold, config.alpha_beta_method)
    if key not in _PARTITION_CACHE:
        graph = get_graph(name, scale=scale)
        partition = graph_partition(graph, threshold=config.threshold)
        compute_alpha_beta(graph, partition, method=config.alpha_beta_method)
        _PARTITION_CACHE[key] = partition
    return _PARTITION_CACHE[key]


def get_redundancy(name: str, *, scale: float | None = None):
    """Cached Figure-7 redundancy breakdown for one suite graph.

    The measurement costs roughly two BC forward phases, and both the
    per-graph benchmark and the fig7 report need it — hence the cache.
    """
    from repro.metrics.redundancy import measure_redundancy

    scale = bench_scale() if scale is None else scale
    key = (name, scale)
    if key not in _REDUNDANCY_CACHE:
        _REDUNDANCY_CACHE[key] = measure_redundancy(
            get_graph(name, scale=scale), name=name
        )
    return _REDUNDANCY_CACHE[key]


def scaling_graph() -> Tuple[str, CSRGraph]:
    """The graph for the Figure-9/10 scaling study.

    The paper uses dblp-2010 for Figure 9; its analogue is the natural
    pick (large secondary sub-graph, so both parallelism levels
    matter).
    """
    name = "dblp-2010"
    return name, get_graph(name)
