"""Tests for the random and structured graph generators."""

import numpy as np
import pytest

from repro.errors import BenchmarkError, GraphValidationError
from repro.generators import (
    SUITE_SPECS,
    analogue_graph,
    barabasi_albert_graph,
    barbell_graph,
    block_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    districted_road_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_road_graph,
    paper_example_graph,
    paper_suite,
    path_graph,
    pendant_augment,
    powerlaw_cluster_graph,
    rmat_graph,
    star_graph,
    suite_names,
    watts_strogatz_graph,
)
from repro.generators.structured import lollipop_graph
from repro.graph.ops import connected_components, degrees
from repro.graph.validate import validate_graph


class TestGnp:
    def test_sizes_and_validity(self):
        g = gnp_random_graph(50, 0.1, seed=1)
        validate_graph(g)
        assert g.n == 50

    def test_p_zero_and_one(self):
        assert gnp_random_graph(10, 0.0, seed=1).num_arcs == 0
        g = gnp_random_graph(10, 1.0, seed=1)
        assert g.num_undirected_edges == 45
        g = gnp_random_graph(6, 1.0, directed=True, seed=1)
        assert g.num_arcs == 30

    def test_determinism(self):
        a = gnp_random_graph(30, 0.2, seed=7)
        b = gnp_random_graph(30, 0.2, seed=7)
        assert a == b

    def test_expected_density(self):
        g = gnp_random_graph(200, 0.05, seed=3)
        expected = 0.05 * 200 * 199 / 2
        assert abs(g.num_undirected_edges - expected) < 0.25 * expected

    def test_bad_p(self):
        with pytest.raises(GraphValidationError, match="p must be"):
            gnp_random_graph(5, 1.5)

    def test_empty(self):
        assert gnp_random_graph(0, 0.5).n == 0

    def test_directed_no_self_loops(self):
        g = gnp_random_graph(20, 0.3, directed=True, seed=2)
        src, dst = g.arcs()
        assert (src != dst).all()


class TestGnm:
    def test_exact_edge_count(self):
        for m in (0, 1, 17, 100):
            g = gnm_random_graph(30, m, seed=1)
            assert g.num_undirected_edges == m
            validate_graph(g)

    def test_directed_exact(self):
        g = gnm_random_graph(20, 150, directed=True, seed=2)
        assert g.num_arcs == 150

    def test_m_capped_at_slots(self):
        g = gnm_random_graph(5, 1000, seed=1)
        assert g.num_undirected_edges == 10

    def test_negative_m(self):
        with pytest.raises(GraphValidationError, match=">= 0"):
            gnm_random_graph(5, -1)

    def test_determinism(self):
        assert gnm_random_graph(25, 40, seed=3) == gnm_random_graph(
            25, 40, seed=3
        )


class TestPowerlaw:
    def test_ba_edge_count(self):
        g = barabasi_albert_graph(100, 3, seed=1)
        validate_graph(g)
        # m seed-star edges + 3 per newcomer
        assert g.num_undirected_edges == 3 + 3 * (100 - 4)

    def test_ba_connected(self):
        g = barabasi_albert_graph(80, 2, seed=2)
        _labels, k = connected_components(g)
        assert k == 1

    def test_ba_skewed_degrees(self):
        g = barabasi_albert_graph(300, 2, seed=3)
        deg = degrees(g)
        assert deg.max() > 5 * np.median(deg)

    def test_ba_directed(self):
        g = barabasi_albert_graph(50, 2, directed=True, seed=4)
        assert g.directed
        validate_graph(g)

    def test_ba_bad_m(self):
        with pytest.raises(GraphValidationError, match="1 <= m < n"):
            barabasi_albert_graph(10, 0)
        with pytest.raises(GraphValidationError, match="1 <= m < n"):
            barabasi_albert_graph(5, 5)

    def test_holme_kim_valid(self):
        g = powerlaw_cluster_graph(80, 3, 0.6, seed=5)
        validate_graph(g)
        _labels, k = connected_components(g)
        assert k == 1

    def test_holme_kim_bad_p(self):
        with pytest.raises(GraphValidationError, match="triangle_p"):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestRmat:
    def test_sizes(self):
        g = rmat_graph(8, 4, seed=1)
        validate_graph(g)
        assert g.n == 256
        assert 0 < g.num_arcs <= 256 * 4

    def test_skew(self):
        g = rmat_graph(9, 8, seed=2)
        deg = g.out_degrees() + g.in_degrees()
        assert deg.max() > 4 * max(np.median(deg), 1)

    def test_determinism(self):
        assert rmat_graph(6, 4, seed=3) == rmat_graph(6, 4, seed=3)

    def test_bad_probs(self):
        with pytest.raises(GraphValidationError, match="probabilities"):
            rmat_graph(4, 2, a=0.9, b=0.2, c=0.2)

    def test_bad_scale(self):
        with pytest.raises(GraphValidationError, match="scale"):
            rmat_graph(-1)


class TestSmallWorld:
    def test_basic(self):
        g = watts_strogatz_graph(40, 4, 0.1, seed=1)
        validate_graph(g)
        assert g.n == 40

    def test_no_rewiring_is_lattice(self):
        g = watts_strogatz_graph(10, 4, 0.0, seed=1)
        assert g.num_undirected_edges == 20
        assert (degrees(g) == 4).all()

    def test_odd_k_rejected(self):
        with pytest.raises(GraphValidationError, match="even"):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large(self):
        with pytest.raises(GraphValidationError, match="n > k"):
            watts_strogatz_graph(4, 4, 0.1)

    def test_bad_p(self):
        with pytest.raises(GraphValidationError, match="p must be"):
            watts_strogatz_graph(10, 2, -0.5)


class TestRoad:
    def test_grid_sizes(self):
        g = grid_road_graph(10, 10, dead_end_frac=0.0, keep_prob=1.0, seed=1)
        assert g.n == 100
        assert g.num_undirected_edges == 180  # 2*10*9

    def test_dead_ends_add_pendants(self):
        g = grid_road_graph(8, 8, dead_end_frac=0.25, seed=2)
        assert g.n == 64 + 16
        assert int((degrees(g) == 1).sum()) >= 14

    def test_bad_args(self):
        with pytest.raises(GraphValidationError):
            grid_road_graph(0, 5)
        with pytest.raises(GraphValidationError, match="keep_prob"):
            grid_road_graph(3, 3, keep_prob=2.0)

    def test_districted(self):
        g = districted_road_graph(3, 8, 8, seed=3)
        validate_graph(g)
        _labels, k = connected_components(g)
        # bridges keep the chain connected (dead-ends may detach only
        # if a district fragment exists; allow a couple of fragments)
        assert k <= 4

    def test_districted_needs_one(self):
        with pytest.raises(GraphValidationError, match="at least one"):
            districted_road_graph(0, 4, 4)


class TestStructured:
    def test_path(self):
        g = path_graph(5)
        assert g.num_undirected_edges == 4
        assert degrees(g).tolist() == [1, 2, 2, 2, 1]

    def test_cycle(self):
        g = cycle_graph(6)
        assert (degrees(g) == 2).all()
        with pytest.raises(GraphValidationError, match="n >= 3"):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert degrees(g).tolist() == [7] + [1] * 7

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_undirected_edges == 15
        gd = complete_graph(4, directed=True)
        assert gd.num_arcs == 12

    def test_barbell(self):
        g = barbell_graph(4, 3)
        validate_graph(g)
        assert g.n == 4 + 4 + 2
        _labels, k = connected_components(g)
        assert k == 1
        with pytest.raises(GraphValidationError):
            barbell_graph(2, 1)

    def test_lollipop(self):
        g = lollipop_graph(5, 3)
        assert g.n == 8
        assert int((degrees(g) == 1).sum()) == 1

    def test_caterpillar(self):
        g = caterpillar_graph(4, 3)
        assert g.n == 4 + 12
        assert int((degrees(g) == 1).sum()) >= 12
        with pytest.raises(GraphValidationError):
            caterpillar_graph(0, 1)

    def test_block_tree(self):
        g = block_tree_graph(2, 2, 4, seed=1)
        validate_graph(g)
        _labels, k = connected_components(g)
        assert k == 1
        with pytest.raises(GraphValidationError, match="clique_size"):
            block_tree_graph(1, 1, 2)

    def test_pendant_augment_undirected(self):
        base = cycle_graph(5)
        g = pendant_augment(base, 4, seed=1)
        assert g.n == 9
        assert int((degrees(g) == 1).sum()) == 4

    def test_pendant_augment_directed(self):
        base = cycle_graph(5, directed=True)
        g = pendant_augment(base, 3, seed=2)
        pend = (g.in_degrees() == 0) & (g.out_degrees() == 1)
        assert int(pend.sum()) == 3

    def test_pendant_augment_anchors(self):
        base = cycle_graph(4)
        g = pendant_augment(base, 2, anchors=np.asarray([0, 0]))
        assert degrees(g)[0] == 4

    def test_pendant_augment_anchor_mismatch(self):
        with pytest.raises(GraphValidationError, match="anchors"):
            pendant_augment(cycle_graph(4), 2, anchors=np.asarray([0]))

    def test_paper_example_structure(self):
        from repro.decompose import articulation_points

        g = paper_example_graph()
        assert g.n == 13 and g.directed
        assert articulation_points(g).tolist() == [2, 3, 6]
        # pendant sources 0 and 1 into vertex 2 (γ(2) = 2)
        assert (g.in_degrees()[[0, 1]] == 0).all()
        assert (g.out_degrees()[[0, 1]] == 1).all()


class TestSuite:
    def test_all_names_build_and_match_spec(self):
        for name in suite_names():
            g = analogue_graph(name, scale=0.3)
            validate_graph(g)
            assert g.directed == SUITE_SPECS[name].directed, name
            assert g.n > 20, name

    def test_determinism(self):
        a = analogue_graph("WikiTalk", scale=0.5)
        b = analogue_graph("WikiTalk", scale=0.5)
        assert a == b

    def test_scale_changes_size(self):
        small = analogue_graph("web-Google", scale=0.3)
        big = analogue_graph("web-Google", scale=0.8)
        assert big.n > small.n

    def test_unknown_name(self):
        with pytest.raises(BenchmarkError, match="unknown suite graph"):
            analogue_graph("nope")

    def test_paper_suite_subset(self):
        suite = paper_suite(scale=0.3, names=["Email-Enron", "USA-roadNY"])
        assert list(suite) == ["Email-Enron", "USA-roadNY"]

    def test_paper_suite_unknown(self):
        with pytest.raises(BenchmarkError, match="unknown suite graphs"):
            paper_suite(names=["bogus"])

    def test_pendant_heavy_specs_have_pendants(self):
        g = analogue_graph("Email-EuAll", scale=0.5)
        pend = (g.in_degrees() == 0) & (g.out_degrees() == 1)
        assert pend.sum() > 0.4 * g.n

    def test_road_specs_are_narrow_degree(self):
        g = analogue_graph("USA-roadNY", scale=0.5)
        assert degrees(g).max() <= 12

    def test_slashdot_has_no_directed_pendants(self):
        g = analogue_graph("Slashdot0811", scale=0.5)
        pend = (g.in_degrees() == 0) & (g.out_degrees() == 1)
        # the paper: no total redundancy on Slashdot
        assert pend.sum() <= 0.02 * g.n

    def test_dblp_has_large_second_community(self):
        from repro.decompose import graph_partition

        g = analogue_graph("dblp-2010", scale=0.5)
        partition = graph_partition(g)
        sizes = sorted(
            (sg.num_vertices for sg in partition.subgraphs), reverse=True
        )
        assert sizes[1] > 0.1 * g.n


class TestDiseaseAnalogue:
    """The paper's Figure-2 motivation graph (Human Disease Network)."""

    def test_size_matches_figure2(self):
        from repro.generators import disease_network_analogue

        g = disease_network_analogue()
        # paper: 1419 vertices, 3926 edges — analogue within ~10%
        assert abs(g.n - 1419) / 1419 < 0.10
        assert abs(g.num_undirected_edges - 3926) / 3926 < 0.10

    def test_pendant_rich(self):
        from repro.generators import disease_network_analogue

        g = disease_network_analogue()
        leaf_frac = float((degrees(g) == 1).mean())
        assert leaf_frac > 0.25  # "a large number of vertices with a
        # single edge" (paper §2.2)

    def test_many_articulation_points(self):
        from repro.decompose import articulation_points
        from repro.generators import disease_network_analogue

        g = disease_network_analogue()
        assert articulation_points(g).size > 50

    def test_deterministic(self):
        from repro.generators import disease_network_analogue

        assert disease_network_analogue() == disease_network_analogue()
