"""Incremental APGRE over small edge deltas (``apgre_bc_delta``).

When a graph evolves by a few edges, everything outside the touched
biconnected components is provably unchanged: a sub-graph's local
contribution depends only on its own edges and the α/β/γ summaries
crossing its articulation points.  The incremental front-end therefore
does *not* patch score vectors — it applies the delta, re-runs the
(cheap, near-linear) decomposition and α/β phases, and lets the
content-addressed cache decide what is dirty:

* a sub-graph whose local CSR **and** incoming summaries fingerprint
  identically to a cached entry is *clean* — its scores are replayed;
* everything else (the components the new/removed edges landed in,
  plus any component whose α/β summaries shifted because the far side
  of the tree grew or shrank) is *dirty* and recomputed through the
  ordinary APGRE machinery — including the batched kernel and the
  shared-memory pool when the config asks for them.

Comparing fingerprints *is* the BCC-tree diff: the cache key of each
block-cut-tree node covers exactly the state the paper's Theorems 1–3
say its contribution depends on, so "key unchanged" ⇔ "node untouched
by the delta" (see docs/CACHING.md for why this also catches summary-
only invalidations that a pure edge-diff would miss).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.cache.store import ContributionStore, resolve_store
from repro.errors import CacheError, GraphFormatError, GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = [
    "DeltaResult",
    "apply_edge_delta",
    "apgre_bc_delta",
    "parse_delta_file",
    "parse_delta_lines",
]


def _canonical_pairs(
    edges, n: int, directed: bool, what: str
) -> np.ndarray:
    """Validate an edge-delta array into canonical ``(k, 2)`` int64.

    Undirected pairs are canonicalised to ``u < v``. Raises
    :class:`~repro.errors.GraphValidationError` on anything malformed —
    non-integer entries, wrong shape, out-of-range endpoints or self
    loops (BC is defined on simple graphs).
    """
    if edges is None:
        return np.empty((0, 2), dtype=np.int64)
    try:
        arr = np.asarray(edges, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise GraphValidationError(
            f"{what} edges must be integer pairs: {exc}"
        ) from exc
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphValidationError(
            f"{what} edges must have shape (k, 2), got {arr.shape}"
        )
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= n:
        raise GraphValidationError(
            f"{what} edge endpoint out of range [0, {n}): saw [{lo}, {hi}]"
        )
    if (arr[:, 0] == arr[:, 1]).any():
        bad = int(arr[(arr[:, 0] == arr[:, 1])][0, 0])
        raise GraphValidationError(
            f"{what} edges contain the self loop ({bad}, {bad})"
        )
    if not directed:
        arr = np.stack(
            [np.minimum(arr[:, 0], arr[:, 1]),
             np.maximum(arr[:, 0], arr[:, 1])],
            axis=1,
        )
    return arr


def apply_edge_delta(
    graph: CSRGraph,
    edges_added=None,
    edges_removed=None,
) -> CSRGraph:
    """Return a new graph with ``edges_removed`` gone, ``edges_added`` in.

    The vertex set is unchanged (endpoints must lie in ``[0, n)``).
    Removing an edge that does not exist raises
    :class:`~repro.errors.GraphValidationError` — a silent no-op there
    almost always means the caller's bookkeeping has drifted from the
    graph. Adding an edge that already exists is an idempotent no-op
    (construction dedupes), matching how streaming edge feeds deliver
    duplicates.
    """
    n = graph.n
    add = _canonical_pairs(edges_added, n, graph.directed, "added")
    rem = _canonical_pairs(edges_removed, n, graph.directed, "removed")

    src, dst = graph.arcs()
    if not graph.directed:
        keep = src < dst  # each undirected edge once, canonical
        src, dst = src[keep], dst[keep]
    keys = src.astype(np.int64) * n + dst.astype(np.int64)
    keys.sort()
    if rem.size:
        rem_keys = rem[:, 0] * n + rem[:, 1]
        pos = np.searchsorted(keys, rem_keys)
        present = (pos < keys.size) & (
            keys[np.minimum(pos, keys.size - 1)] == rem_keys
        )
        if not present.all():
            missing = rem[~present][0]
            raise GraphValidationError(
                f"cannot remove absent edge ({missing[0]}, {missing[1]})"
            )
        keys = np.setdiff1d(keys, rem_keys, assume_unique=False)
    if add.size:
        keys = np.union1d(keys, add[:, 0] * n + add[:, 1])
    return CSRGraph.from_arcs(
        n, keys // n, keys % n, directed=graph.directed
    )


@dataclass
class DeltaResult:
    """Result of one incremental run.

    ``graph`` is the post-delta graph (build your next delta on it);
    ``result`` is the full :class:`~repro.core.result.BCResult` whose
    ``stats`` carry the replay split (``subgraphs_replayed`` /
    ``subgraphs_recomputed``, ``edges_replayed`` vs
    ``edges_traversed``); ``store`` is the cache that served the run,
    now warmed for the next delta.
    """

    graph: CSRGraph
    result: "BCResult"  # noqa: F821 - forward ref, import cycle
    store: ContributionStore

    @property
    def scores(self) -> np.ndarray:
        return self.result.scores


def apgre_bc_delta(
    graph: CSRGraph,
    edges_added=None,
    edges_removed=None,
    *,
    cache: Union[bool, ContributionStore, None] = True,
    cache_dir=None,
    config: Optional["APGREConfig"] = None,  # noqa: F821
) -> DeltaResult:
    """Exact BC of ``graph`` ± an edge delta, replaying clean sub-graphs.

    Apply the delta, re-decompose, and recompute only the sub-graphs
    whose content fingerprints are not already in ``cache`` — the
    clean ones replay their stored local vectors (and report the work
    as ``edges_replayed``, never as traversed).  Cache misses run
    through the ordinary APGRE BC phase of ``config``, so
    ``parallel="processes"``/``workers=``/``steal=``/``batch_size=``
    fan the dirty components out exactly like any other run.

    The cache must have been warmed on the pre-delta graph with the
    *same* store and an equivalent config (threshold,
    ``eliminate_pendants``) for anything to replay — a cold store
    simply recomputes everything and warms itself.

    Returns a :class:`DeltaResult`; chain deltas by passing its
    ``graph`` (and the same store) back in.
    """
    from repro.core.apgre import apgre_bc_detailed
    from repro.core.config import APGREConfig

    store = resolve_store(cache, cache_dir)
    if store is None:
        raise CacheError(
            "apgre_bc_delta requires a cache (pass cache=True, a "
            "ContributionStore, or cache_dir=...)"
        )
    config = config or APGREConfig()
    if config.cache is not None or config.cache_dir is not None:
        resolved = resolve_store(config.cache, config.cache_dir)
        if resolved is not store:
            raise CacheError(
                "config.cache conflicts with the cache passed to "
                "apgre_bc_delta — pass the store once"
            )
    config = replace(config, cache=store, cache_dir=None)
    new_graph = apply_edge_delta(graph, edges_added, edges_removed)
    result = apgre_bc_detailed(new_graph, config)
    return DeltaResult(graph=new_graph, result=result, store=store)


def parse_delta_lines(
    text: str, *, name: str = "<delta>"
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse delta-file text into ``(edges_added, edges_removed)``.

    The in-memory core of :func:`parse_delta_file`, shared with the
    serving daemon whose ``POST /delta`` bodies arrive as text rather
    than files. One operation per line: ``+ u v`` / ``add u v`` adds an
    edge, ``- u v`` / ``remove u v`` removes one. Blank lines and ``#``
    comments are skipped. Malformed lines raise
    :class:`~repro.errors.GraphFormatError` naming ``name`` and the
    line number.
    """
    ops = {"+": "add", "add": "add", "-": "remove", "remove": "remove"}
    added, removed = [], []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        op = ops.get(parts[0].lower())
        if op is None or len(parts) != 3:
            raise GraphFormatError(
                f"{name}:{lineno}: expected '+|-|add|remove u v', "
                f"got {raw.strip()!r}"
            )
        try:
            u, v = int(parts[1]), int(parts[2])
        except ValueError:
            raise GraphFormatError(
                f"{name}:{lineno}: endpoints must be integers, "
                f"got {raw.strip()!r}"
            ) from None
        (added if op == "add" else removed).append((u, v))
    return (
        np.asarray(added, dtype=np.int64).reshape(-1, 2),
        np.asarray(removed, dtype=np.int64).reshape(-1, 2),
    )


def parse_delta_file(
    path: Union[str, Path]
) -> Tuple[np.ndarray, np.ndarray]:
    """Read an edge-delta file into ``(edges_added, edges_removed)``.

    One operation per line: ``+ u v`` / ``add u v`` adds an edge,
    ``- u v`` / ``remove u v`` removes one. Blank lines and ``#``
    comments are skipped. Malformed lines raise
    :class:`~repro.errors.GraphFormatError` naming the line number
    (the CLI turns that into a clean exit 2).
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise GraphFormatError(f"cannot read delta file {path}: {exc}") from exc
    return parse_delta_lines(text, name=str(path))
