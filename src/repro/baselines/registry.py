"""Name → algorithm registry, matching the paper's table headers.

The benchmark harness looks algorithms up by the names used in
Tables 2/3 ("serial", "APGRE", "preds", "succs", "lockSyncFree",
"async", "hybrid") so benchmark code reads like the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.baselines.algebraic import algebraic_bc
from repro.baselines.async_bc import async_bc
from repro.baselines.brandes import brandes_bc
from repro.baselines.hybrid import hybrid_bc
from repro.baselines.lockfree import lockfree_bc
from repro.baselines.preds import preds_bc
from repro.baselines.succs import succs_bc
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = ["ALGORITHMS", "get_algorithm", "algorithm_names"]


def _apgre(graph: CSRGraph, **kwargs) -> np.ndarray:
    # local import: repro.core imports the baselines for its own tests
    from repro.core.apgre import apgre_bc

    return apgre_bc(graph, **kwargs)


def _treefold(graph: CSRGraph, **kwargs) -> np.ndarray:
    from repro.core.treefold import treefold_bc

    return treefold_bc(graph, **kwargs)


def _batched(graph: CSRGraph, **kwargs) -> np.ndarray:
    kwargs.setdefault("batch_size", "auto")
    return brandes_bc(graph, **kwargs)


#: Paper table name -> callable(graph, **kwargs) -> scores.
ALGORITHMS: Dict[str, Callable[..., np.ndarray]] = {
    "serial": brandes_bc,
    "APGRE": _apgre,
    "preds": preds_bc,
    "succs": succs_bc,
    "lockSyncFree": lockfree_bc,
    "async": async_bc,
    "hybrid": hybrid_bc,
    # extension comparators (not Table-2 columns): the paper's
    # related-work algebraic method [23], the BADIOS-style
    # pendant-tree contraction generalising APGRE's gamma elimination,
    # and Brandes over the multi-source batched kernel
    "algebraic": algebraic_bc,
    "treefold": _treefold,
    "batched": _batched,
}


def algorithm_names() -> List[str]:
    """Table-2 column order."""
    return list(ALGORITHMS)


def get_algorithm(name: str) -> Callable[..., np.ndarray]:
    """Look an algorithm up by its paper name.

    Raises
    ------
    AlgorithmError
        For unknown names (message lists the valid ones).
    """
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}"
        ) from None
