"""Binary (``.npz``) graph serialisation.

Text formats (edge lists, DIMACS) parse at tens of MB/s; the CSR
arrays themselves round-trip through ``numpy.savez_compressed`` orders
of magnitude faster. Intended for caching generated workloads between
benchmark runs and for shipping pre-built graphs to ``spawn``-start
worker processes.

The on-disk schema is versioned so later format changes stay
detectable: ``{version, directed, n, out_indptr, out_indices[,
in_indptr, in_indices]}`` (reverse arrays stored only for directed
graphs — undirected CSRs share them).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz"]

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: Union[str, Path]) -> None:
    """Write a graph as a compressed ``.npz`` bundle."""
    payload = {
        "version": np.asarray(_FORMAT_VERSION),
        "directed": np.asarray(graph.directed),
        "n": np.asarray(graph.n),
        "out_indptr": graph.out_indptr,
        "out_indices": graph.out_indices,
    }
    if graph.directed:
        payload["in_indptr"] = graph.in_indptr
        payload["in_indices"] = graph.in_indices
    np.savez_compressed(path, **payload)


def load_npz(path: Union[str, Path]) -> CSRGraph:
    """Read a graph written by :func:`save_npz`.

    Raises
    ------
    GraphFormatError
        On missing fields or an unknown format version.
    """
    try:
        with np.load(path) as bundle:
            data = {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot read npz graph {path}: {exc}") from exc
    for field in ("version", "directed", "n", "out_indptr", "out_indices"):
        if field not in data:
            raise GraphFormatError(f"npz graph missing field {field!r}")
    version = int(data["version"])
    if version != _FORMAT_VERSION:
        raise GraphFormatError(
            f"unsupported npz graph version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    directed = bool(data["directed"])
    n = int(data["n"])
    out_indptr = data["out_indptr"]
    out_indices = data["out_indices"]
    if directed:
        if "in_indptr" not in data or "in_indices" not in data:
            raise GraphFormatError("directed npz graph missing reverse CSR")
        in_indptr = data["in_indptr"]
        in_indices = data["in_indices"]
    else:
        in_indptr, in_indices = out_indptr, out_indices
    graph = CSRGraph(n, out_indptr, out_indices, in_indptr, in_indices, directed)
    from repro.graph.validate import validate_graph

    validate_graph(graph)  # untrusted input: enforce invariants
    return graph
