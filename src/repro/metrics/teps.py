"""Traversed-edges-per-second rates (paper §5.1).

"For the exact computation of betweenness centrality, the number of
TEPS has been defined as TEPS_BC = n·m / t" (Sarıyüce et al., JPDC'14,
as adopted by the paper). Note this is a *normalised problem-size*
rate, not a count of edges the algorithm actually touched — that is
precisely what makes redundancy elimination show up as a rate increase
(APGRE touches fewer edges for the same n·m credit).
"""

from __future__ import annotations

from repro.errors import BenchmarkError
from repro.graph.csr import CSRGraph

__all__ = [
    "teps",
    "mteps",
    "graph_teps",
    "graph_mteps",
    "examined_teps",
    "examined_mteps",
]


def teps(n: int, m: int, seconds: float) -> float:
    """TEPS_BC = n·m/t for an exact BC run over the whole graph."""
    if seconds <= 0:
        raise BenchmarkError(f"elapsed time must be positive, got {seconds}")
    return (n * m) / seconds


def mteps(n: int, m: int, seconds: float) -> float:
    """Millions of TEPS (the unit of the paper's Table 3)."""
    return teps(n, m, seconds) / 1e6


def graph_teps(graph: CSRGraph, seconds: float) -> float:
    """TEPS_BC with n/m taken from the graph (m = stored arcs)."""
    return teps(graph.n, graph.num_arcs, seconds)


def graph_mteps(graph: CSRGraph, seconds: float) -> float:
    """MTEPS with n/m taken from the graph."""
    return graph_teps(graph, seconds) / 1e6


def examined_teps(edges_examined: int, seconds: float) -> float:
    """Rate over edges a kernel *actually* examined (WorkCounter.edges).

    Unlike :func:`teps` this is not the normalised n·m credit — it
    measures raw kernel throughput, which is what the batched
    multi-source kernel improves (same edge tally, less per-level
    overhead).
    """
    if seconds <= 0:
        raise BenchmarkError(f"elapsed time must be positive, got {seconds}")
    if edges_examined < 0:
        raise BenchmarkError(
            f"edges_examined must be >= 0, got {edges_examined}"
        )
    return edges_examined / seconds


def examined_mteps(edges_examined: int, seconds: float) -> float:
    """Millions of examined edges per second."""
    return examined_teps(edges_examined, seconds) / 1e6
