"""Persistence for cached sub-graph contributions.

Two layers behind one interface:

* an in-memory LRU (``OrderedDict``) bounded by entry count and total
  score-vector bytes — the hot path for repeated in-process runs;
* an optional on-disk layer under ``cache_dir`` (one ``.npz`` per key,
  the same ``numpy.savez_compressed`` array serialisation as
  :mod:`repro.io.binary`), so separate processes and separate CLI
  invocations share warmth.  Writes are atomic (tmp file + ``rename``),
  a corrupted or truncated file degrades to a miss, and a *failed*
  write (``ENOSPC``, I/O error) degrades to a memory-only put — the
  disk layer can never crash or corrupt a run (docs/ROBUSTNESS.md).

Every entry stores the local score vector **and** the exact
examined-edge tally of the traversal that produced it, so a replayed
entry reports its work as *replayed* edges — never as traversed — and
``WorkCounter``/TEPS accounting stays honest (docs/CACHING.md).

The store is thread-safe: the in-memory LRU mutates an ``OrderedDict``
on every ``get`` (recency bump) as well as on ``put``, so concurrent
readers — the serving daemon (:mod:`repro.serve`) runs one handler
thread per request against a single shared store — serialise on an
internal lock.  Numpy work (the copy on ``put``, the ``.npz``
round-trip of the disk layer) happens outside the lock.
"""

from __future__ import annotations

import os
import threading
import warnings
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import CacheError
from repro.parallel import faults as _faults
from repro.types import SCORE_DTYPE

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ContributionStore",
    "resolve_store",
]

#: On-disk entry format version (bumped on any layout change; old
#: files are treated as misses and rewritten, never mis-read).
_ENTRY_VERSION = 1

#: Default LRU budgets: generous for sub-graph score vectors (a 1M-
#: vertex float64 vector is 8 MB; 256 MB holds a large decomposition).
_DEFAULT_MAX_ENTRIES = 4096
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class CacheEntry:
    """One cached contribution: local scores + exact edge tally."""

    scores: np.ndarray
    edges: int


@dataclass
class CacheStats:
    """Counters describing how a store has been used."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
        }


class ContributionStore:
    """Content-addressed store of sub-graph contribution vectors.

    Parameters
    ----------
    max_entries, max_bytes:
        In-memory LRU budgets (count of entries, total score bytes).
        The least recently used entries are evicted first; disk copies
        (when ``cache_dir`` is set) survive eviction.
    cache_dir:
        Optional directory for the persistent layer. Created on first
        write. Entries are stored as ``<key>.npz``.
    """

    def __init__(
        self,
        *,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        cache_dir: Union[str, Path, None] = None,
    ) -> None:
        if max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise CacheError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._bytes = 0
        self._disk_warned = False
        self._lock = threading.RLock()
        self.counters = CacheStats()

    # ------------------------------------------------------------------
    # mapping-ish surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return self._disk_path(key) is not None

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        """Look a key up; memory first, then disk. ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.counters.hits += 1
                return entry
        entry = self._load_disk(key)
        with self._lock:
            if entry is not None:
                self.counters.hits += 1
                self.counters.disk_hits += 1
                self._admit(key, entry)
                return entry
            self.counters.misses += 1
            return None

    def put(self, key: str, scores: np.ndarray, edges: int) -> CacheEntry:
        """Insert one contribution (overwrites any previous entry)."""
        # private copy: the caller may mutate its array after the put,
        # and replayed vectors are handed out shared and read-only
        scores = np.array(scores, dtype=SCORE_DTYPE, copy=True)
        scores.flags.writeable = False
        entry = CacheEntry(scores=scores, edges=int(edges))
        with self._lock:
            self.counters.puts += 1
            self._admit(key, entry)
        if self.cache_dir is not None:
            self._write_disk(key, entry)
        return entry

    # ------------------------------------------------------------------
    # in-memory LRU (callers hold self._lock)
    # ------------------------------------------------------------------
    def _admit(self, key: str, entry: CacheEntry) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.scores.nbytes
        self._entries[key] = entry
        self._bytes += entry.scores.nbytes
        while self._entries and (
            len(self._entries) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            if len(self._entries) == 1:
                break  # a single oversized entry still gets served
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.scores.nbytes
            self.counters.evictions += 1

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        return path if path.exists() else None

    def _load_disk(self, key: str) -> Optional[CacheEntry]:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with np.load(path) as bundle:
                if int(bundle["version"]) != _ENTRY_VERSION:
                    return None
                scores = np.asarray(bundle["scores"], dtype=SCORE_DTYPE)
                edges = int(bundle["edges"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # corrupted/truncated entry: a miss, not a failure
            with self._lock:
                self.counters.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        scores.flags.writeable = False
        return CacheEntry(scores=scores, edges=edges)

    def _write_disk(self, key: str, entry: CacheEntry) -> None:
        """Persist one entry; a failed write degrades, never raises.

        A full or faulty disk must not take down a run whose in-memory
        layer is still serving (the same never-crash discipline as the
        run journal, docs/ROBUSTNESS.md): the error is counted in
        ``stats.disk_errors``, warned about once per store, and the
        put stays memory-only.  The write consults the disk-fault
        hook (:func:`repro.parallel.faults.fire_disk_faults`, target
        ``"cache.disk"``) so torn-write/ENOSPC behaviour is tested
        deterministically — a torn file is rejected by
        :meth:`_load_disk` on the next read and recomputed.
        """
        assert self.cache_dir is not None
        tmp = self.cache_dir / f".{key}.{os.getpid()}.tmp.npz"
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            final = self.cache_dir / f"{key}.npz"
            np.savez_compressed(
                tmp,
                version=np.asarray(_ENTRY_VERSION),
                scores=entry.scores,
                edges=np.asarray(entry.edges, dtype=np.int64),
            )
            spec = _faults.fire_disk_faults("cache.disk")
            if spec is not None and spec.kind == "torn_write":
                size = tmp.stat().st_size
                with open(tmp, "r+b") as fh:
                    fh.truncate(max(size // 2, 1))
            os.replace(tmp, final)
        except OSError as exc:
            with self._lock:
                self.counters.disk_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            if not self._disk_warned:
                self._disk_warned = True
                warnings.warn(
                    f"cache disk layer failed to persist under "
                    f"{self.cache_dir} ({exc}); entries stay "
                    f"memory-only until writes succeed again",
                    stacklevel=3,
                )

    def stats(self) -> Dict:
        """Hit/miss/eviction/size counters as one flat dict.

        The public observability surface — the serving daemon's
        ``/stats`` endpoint and BENCH_cache.json both embed this
        verbatim.  Keys: ``hits``, ``misses``, ``puts``, ``evictions``,
        ``disk_hits``, ``disk_errors``, ``entries_in_memory``,
        ``bytes_in_memory``, ``cache_dir``.
        """
        with self._lock:
            out: Dict = dict(self.counters.as_dict())
            out["entries_in_memory"] = len(self._entries)
            out["bytes_in_memory"] = self._bytes
        out["cache_dir"] = str(self.cache_dir) if self.cache_dir else None
        return out

    def summary(self) -> str:
        """One-line human-readable state (CLI/bench reporting)."""
        s = self.counters
        disk = (
            f", dir={self.cache_dir}" if self.cache_dir is not None else ""
        )
        return (
            f"cache: {len(self._entries)} entries in memory "
            f"({self._bytes / 1e6:.1f} MB), {s.hits} hits / "
            f"{s.misses} misses ({s.disk_hits} from disk){disk}"
        )

    def summary_dict(self) -> Dict:
        """Alias of :meth:`stats` (older spelling, kept for callers)."""
        return self.stats()


# process-global default stores, keyed by resolved cache_dir ("" for
# the pure in-memory store) — this is what lets ``cache=True`` warm
# across separate apgre_bc calls without threading a store object
_DEFAULT_STORES: Dict[str, ContributionStore] = {}


def resolve_store(
    cache: Union[bool, ContributionStore, None],
    cache_dir: Union[str, Path, None] = None,
) -> Optional[ContributionStore]:
    """Resolve the (cache, cache_dir) config pair to a store.

    * a :class:`ContributionStore` is used as-is (``cache_dir`` must
      not disagree with the store's own directory);
    * ``True`` (or any set ``cache_dir``) yields the process-global
      default store for that directory, so repeated runs share warmth;
    * ``False``/``None`` (with no ``cache_dir``) disables caching.
    """
    if isinstance(cache, ContributionStore):
        if cache_dir is not None and Path(cache_dir) != cache.cache_dir:
            raise CacheError(
                f"cache_dir={cache_dir!r} conflicts with the provided "
                f"store's directory {cache.cache_dir!r}"
            )
        return cache
    if cache is False:
        return None
    if cache is None and cache_dir is None:
        return None
    key = str(Path(cache_dir)) if cache_dir is not None else ""
    store = _DEFAULT_STORES.get(key)
    if store is None:
        store = ContributionStore(cache_dir=cache_dir)
        _DEFAULT_STORES[key] = store
    return store
