"""R-MAT (recursive matrix) graph generator.

The Graph500/SSCA benchmarks (the paper's ``preds`` implementation "is
part of the SSCA v2.2 benchmark") use R-MAT inputs; the generator
recursively subdivides the adjacency matrix into quadrants with
probabilities (a, b, c, d), producing skewed, community-rich graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    directed: bool = True,
    seed: Seed = None,
    permute: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count (Graph500 convention).
    edge_factor:
        Arcs generated per vertex (duplicates collapse, so the final
        count is slightly lower — Graph500 semantics).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c``. The defaults are
        the Graph500 constants.
    directed:
        Arc interpretation.
    seed:
        RNG seed.
    permute:
        Randomly relabel vertices, hiding the recursive structure
        (Graph500 does this too).
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphValidationError(
            f"quadrant probabilities must be >= 0, got a={a} b={b} c={c} d={d}"
        )
    if scale < 0:
        raise GraphValidationError(f"scale must be >= 0, got {scale}")
    rng = as_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # vectorised bit-by-bit placement: at every level flip two biased
    # coins per edge to choose the quadrant
    for _level in range(scale):
        src <<= 1
        dst <<= 1
        row_bit = rng.random(m) < (c + d)
        # column bias depends on the chosen row half (a,b vs c,d)
        col_p = np.where(row_bit, d / (c + d) if c + d else 0.0,
                         b / (a + b) if a + b else 0.0)
        col_bit = rng.random(m) < col_p
        src |= row_bit.astype(np.int64)
        dst |= col_bit.astype(np.int64)
    if permute:
        perm = rng.permutation(n)
        src = perm[src]
        dst = perm[dst]
    return CSRGraph.from_arcs(n, src, dst, directed=directed)
