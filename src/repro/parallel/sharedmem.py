"""POSIX shared-memory arrays.

With the ``fork`` start method the read-only graph is shared for free
(copy-on-write pages), so the pool never needs this module. It exists
for the two situations where fork is unavailable or insufficient:
``spawn``-only platforms (broadcasting the CSR arrays without per-task
pickling) and writeback buffers that must outlive a worker. The
wrapper owns the segment lifecycle explicitly because the interpreter
does not reliably garbage-collect shared memory at exit.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = ["SharedArray"]


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment.

    Usage::

        owner = SharedArray.create((n,), np.float64)   # parent
        view  = SharedArray.attach(owner.name, (n,), np.float64)  # child
        ...
        view.close()      # every attacher
        owner.unlink()    # owner only, once

    The array is exposed via :attr:`array`; it remains valid until
    :meth:`close`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        """Allocate a zero-initialised shared array (caller owns it)."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        out = cls(shm, shape, dtype, owner=True)
        out.array.fill(0)
        return out

    @classmethod
    def attach(
        cls, name: str, shape: Tuple[int, ...], dtype
    ) -> "SharedArray":
        """Attach to an existing segment by name (non-owning view)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    @property
    def name(self) -> str:
        """Segment name to hand to :meth:`attach` in another process."""
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (array becomes invalid)."""
        # drop the numpy view first: closing a mapped buffer raises
        self.array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after close)."""
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()
