"""Format sniffing and a one-call loader/saver.

``load_graph`` picks the right reader from the file extension, falling
back to content sniffing (a DIMACS problem line, a MatrixMarket banner,
otherwise edge list) so downloaded files with odd names still load.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.io.dimacs import read_dimacs, write_dimacs
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.matrixmarket import read_matrix_market, write_matrix_market

__all__ = ["sniff_format", "load_graph", "save_graph"]

_EXTENSIONS = {
    ".txt": "edgelist",
    ".edges": "edgelist",
    ".el": "edgelist",
    ".gr": "dimacs",
    ".dimacs": "dimacs",
    ".mtx": "matrixmarket",
    ".mm": "matrixmarket",
}


def sniff_format(path: Union[str, Path]) -> str:
    """Best-effort format detection: extension first, then content.

    Returns one of ``"edgelist"``, ``"dimacs"``, ``"matrixmarket"``.
    """
    path = Path(path)
    ext = path.suffix.lower()
    if ext in _EXTENSIONS:
        return _EXTENSIONS[ext]
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.lower().startswith("%%matrixmarket"):
                return "matrixmarket"
            if stripped.startswith(("p sp", "c ")) or stripped == "c":
                return "dimacs"
            if stripped.startswith("#"):
                return "edgelist"
            return "edgelist"
    return "edgelist"


def load_graph(
    path: Union[str, Path], *, directed: bool = False, fmt: str = ""
) -> CSRGraph:
    """Load a graph, auto-detecting the format unless ``fmt`` is given.

    ``directed`` applies to formats that do not encode directedness
    themselves (edge lists, DIMACS); MatrixMarket symmetry wins for
    ``.mtx`` files.
    """
    fmt = fmt or sniff_format(path)
    if fmt == "edgelist":
        graph, _ids = read_edgelist(path, directed=directed)
        return graph
    if fmt == "dimacs":
        return read_dimacs(path, directed=directed)
    if fmt == "matrixmarket":
        return read_matrix_market(path)
    raise GraphFormatError(f"unknown graph format {fmt!r}")


def save_graph(graph: CSRGraph, path: Union[str, Path], *, fmt: str = "") -> None:
    """Save a graph; the format defaults to the extension's."""
    fmt = fmt or _EXTENSIONS.get(Path(path).suffix.lower(), "edgelist")
    if fmt == "edgelist":
        write_edgelist(graph, path)
    elif fmt == "dimacs":
        write_dimacs(graph, path)
    elif fmt == "matrixmarket":
        write_matrix_market(graph, path)
    else:
        raise GraphFormatError(f"unknown graph format {fmt!r}")
