"""Tests for the GIL-free threaded backend and the engine registry.

Covers the PR's contract surface: the threaded engine matches Brandes
to 1e-9 with *exactly* the serial examined-edge tally under every
composition (plain, batched, cached, compressed, journaled), injected
thread kills/timeouts walk the same degradation ladder as the process
pool, the backend registry probes capabilities / honours
``REPRO_PARALLEL_BACKEND`` / degrades gracefully on unavailable
engines, the shared-address-space RAM model charges the CSR once, and
reusable batch workspaces change nothing about the scores.
"""

import threading

import numpy as np
import pytest

import networkx as nx

from repro.baselines.brandes import brandes_bc, brandes_python_bc
from repro.baselines.common import WorkCounter, run_per_source
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.errors import (
    AlgorithmError,
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.graph.batched import (
    BatchWorkspace,
    auto_batch_size,
    batched_bc_scores,
    batched_contributions,
    resolve_batch_size,
)
from repro.graph.build import from_networkx
from repro.parallel.backends import (
    BACKEND_ENV_VAR,
    ExecutionBackend,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.parallel.faults import (
    FaultSpec,
    WorkerThreadKilled,
    fire_thread_faults,
    injected_faults,
)
from repro.parallel.supervisor import RunHealth, SupervisorConfig
from repro.parallel.threaded import threaded_bc_scores, threaded_contributions

WORKERS = 3
ALWAYS = tuple(range(16))


class TestThreadedMatchesSerial:
    @pytest.mark.parametrize("steal", [True, False])
    def test_scores_and_tally_match_serial(self, und_random, steal):
        sources = list(range(0, und_random.n, 2))
        serial_counter = WorkCounter()
        serial = batched_bc_scores(
            und_random, sources, batch=5, counter=serial_counter
        )
        counter = WorkCounter()
        health = RunHealth()
        threaded = threaded_bc_scores(
            und_random,
            sources,
            batch=5,
            workers=WORKERS,
            steal=steal,
            counter=counter,
            health=health,
        )
        np.testing.assert_allclose(threaded, serial, rtol=1e-9, atol=1e-9)
        assert counter.edges == serial_counter.edges
        assert not health.degraded
        assert health.tasks == -(-len(sources) // 5)

    def test_matches_brandes_oracle(self, und_random):
        oracle = brandes_python_bc(und_random)
        threaded = threaded_bc_scores(
            und_random, range(und_random.n), batch=6, workers=WORKERS
        )
        np.testing.assert_allclose(threaded, oracle, rtol=1e-9, atol=1e-9)

    def test_directed_graph(self, dir_random):
        sources = list(range(dir_random.n))
        serial = batched_bc_scores(dir_random, sources, batch=7)
        threaded = threaded_bc_scores(
            dir_random, sources, batch=7, workers=2
        )
        np.testing.assert_allclose(threaded, serial, rtol=1e-9, atol=1e-9)

    def test_inline_single_worker_bit_identical(self, und_random):
        sources = list(range(0, und_random.n, 3))
        serial = batched_bc_scores(und_random, sources, batch=4)
        health = RunHealth()
        inline = threaded_bc_scores(
            und_random, sources, batch=4, workers=1, health=health
        )
        assert (inline == serial).all()  # same code path, not just close
        assert health.inline
        assert not health.degraded

    def test_inline_single_chunk_bit_identical(self, und_random):
        sources = list(range(10))
        serial = batched_bc_scores(und_random, sources, batch=64)
        inline = threaded_bc_scores(
            und_random, sources, batch=64, workers=4
        )
        assert (inline == serial).all()

    def test_empty_sources(self, und_random):
        out = threaded_bc_scores(und_random, [], batch=4, workers=2)
        assert out.shape == (und_random.n,)
        assert not out.any()

    def test_arcs_kernel_bit_identical_to_serial(self, und_random):
        # the arcs kernel is deterministic per chunk and the engine's
        # tree reduction is order-fixed, so forcing kernel="arcs"
        # through the threads engine is bit-identical to serial chunks
        sources = list(range(und_random.n))
        serial = batched_bc_scores(
            und_random, sources, batch=64, kernel="arcs"
        )
        threaded = threaded_bc_scores(
            und_random, sources, batch=64, workers=2, kernel="arcs"
        )
        np.testing.assert_allclose(threaded, serial, rtol=1e-9, atol=1e-9)

    def test_invalid_args(self, und_random):
        with pytest.raises(ValueError, match="batch"):
            threaded_bc_scores(und_random, [0], batch=0, workers=2)
        with pytest.raises(ValueError, match="workers"):
            threaded_bc_scores(und_random, [0], batch=2, workers=0)

    def test_contributions_run_on_worker_threads(self, und_random):
        seen = set()
        main = threading.get_ident()

        def compute(batch_id):
            seen.add(threading.get_ident())
            return None, np.full(und_random.n, float(batch_id)), batch_id

        total, edge_total, batch_edges = threaded_contributions(
            compute, [1.0] * 8, n=und_random.n, workers=WORKERS
        )
        # all work off the parent thread (a fast worker may legally
        # claim every batch before its peers start, so no >= 2 bound)
        assert main not in seen and len(seen) >= 1
        np.testing.assert_allclose(total, np.full(und_random.n, 28.0))
        assert edge_total == 28
        assert batch_edges.tolist() == list(range(8))


class TestRunPerSourceBackend:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backends_match_brandes(self, und_random, backend):
        ref = brandes_bc(und_random)
        serial_counter = WorkCounter()
        run_per_source(
            und_random, mode="arcs", batch_size=6, counter=serial_counter
        )
        counter = WorkCounter()
        out = run_per_source(
            und_random,
            mode="arcs",
            batch_size=6,
            workers=WORKERS,
            backend=backend,
            counter=counter,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)
        assert counter.edges == serial_counter.edges

    def test_backend_implies_auto_batch(self, und_random):
        # backend= without batch_size must route through the engine,
        # not the per-source chunk pool
        ref = brandes_bc(und_random)
        health = RunHealth()
        out = run_per_source(
            und_random, mode="arcs", backend="threads", workers=2,
            health=health,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)
        assert health.tasks >= 1

    def test_baseline_wrappers_accept_backend(self, und_random):
        from repro.baselines.preds import preds_bc

        ref = brandes_bc(und_random)
        np.testing.assert_allclose(
            brandes_bc(und_random, backend="threads", workers=2),
            ref, rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            preds_bc(und_random, backend="serial"),
            ref, rtol=1e-9, atol=1e-9,
        )


class TestApgreBackendCompositions:
    """backend= through the APGRE driver and its composing layers."""

    @pytest.fixture(scope="class")
    def graph(self):
        return from_networkx(nx.gnm_random_graph(48, 96, seed=11), n=48)

    @pytest.fixture(scope="class")
    def oracle(self, graph):
        return brandes_python_bc(graph)

    @pytest.mark.parametrize("backend", ["serial", "threads", "auto"])
    def test_plain(self, graph, oracle, backend):
        res = apgre_bc_detailed(
            graph, APGREConfig(backend=backend, workers=2)
        )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert res.health is not None and not res.health.degraded

    def test_compressed(self, graph, oracle):
        res = apgre_bc_detailed(
            graph, APGREConfig(backend="threads", workers=2, compress=True)
        )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )

    def test_cached_then_replayed(self, graph, oracle, tmp_path):
        cfg = APGREConfig(
            backend="threads", workers=2, cache_dir=str(tmp_path / "c")
        )
        cold = apgre_bc_detailed(graph, cfg)
        np.testing.assert_allclose(
            cold.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert cold.stats.subgraphs_recomputed > 0
        warm = apgre_bc_detailed(graph, cfg)
        np.testing.assert_allclose(
            warm.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert warm.stats.subgraphs_recomputed == 0
        # replayed tallies equal the exact tallies the engine committed
        assert warm.stats.edges_replayed == cold.stats.edges_traversed

    def test_journaled_and_resumed(self, graph, oracle, tmp_path):
        jdir = str(tmp_path / "j")
        cfg = APGREConfig(backend="threads", workers=2, journal_dir=jdir)
        first = apgre_bc_detailed(graph, cfg)
        np.testing.assert_allclose(
            first.scores, oracle, rtol=1e-9, atol=1e-9
        )
        resumed = apgre_bc_detailed(
            graph,
            APGREConfig(
                backend="threads", workers=2, journal_dir=jdir, resume=True
            ),
        )
        np.testing.assert_allclose(
            resumed.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert resumed.stats.subgraphs_recomputed == 0
        assert resumed.stats.subgraphs_resumed > 0

    def test_exact_tally_matches_serial(self, graph):
        serial = apgre_bc_detailed(graph, APGREConfig(batch_size="auto"))
        threaded = apgre_bc_detailed(
            graph, APGREConfig(backend="threads", workers=2)
        )
        assert (
            threaded.stats.edges_traversed == serial.stats.edges_traversed
        )


class TestThreadedUnderFaults:
    """Injected thread kills/delays/raises walk the degradation ladder."""

    @pytest.fixture(scope="class")
    def graph(self):
        return from_networkx(nx.gnm_random_graph(40, 90, seed=21), n=40)

    @pytest.fixture(scope="class")
    def serial(self, graph):
        counter = WorkCounter()
        scores = batched_bc_scores(
            graph, list(range(graph.n)), batch=5, counter=counter
        )
        return scores, counter.edges

    def _threaded(self, graph, **kwargs):
        counter = WorkCounter()
        health = RunHealth()
        scores = threaded_bc_scores(
            graph,
            list(range(graph.n)),
            batch=5,
            workers=2,
            counter=counter,
            health=health,
            **kwargs,
        )
        return scores, counter.edges, health

    def test_fire_thread_faults_kill_raises_base_exception(self):
        with injected_faults(FaultSpec("kill", task=3)):
            with pytest.raises(WorkerThreadKilled):
                fire_thread_faults(3, 0)
            fire_thread_faults(2, 0)  # other tasks untouched
        assert not issubclass(WorkerThreadKilled, Exception)

    def test_kill_mid_run_is_retried(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(FaultSpec("kill", task=1)):
            scores, edges, health = self._threaded(graph)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.worker_crashes == 1
        assert health.retries >= 1
        assert not health.drained_serial

    def test_persistent_fault_drops_to_serial_rung(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(
            FaultSpec("raise", task=2, attempts=ALWAYS)
        ):
            scores, edges, health = self._threaded(graph)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.task_errors >= 1
        assert health.serial_retries == 1
        assert any(o.status == "ok-serial" for o in health.outcomes)

    def test_timeout_abandons_thread_and_recovers(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(
            FaultSpec("delay", task=0, seconds=60, attempts=ALWAYS)
        ):
            scores, edges, health = self._threaded(
                graph,
                config=SupervisorConfig(
                    timeout=0.3, max_retries=0, poll_interval=0.05
                ),
            )
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.timeouts >= 1
        assert health.serial_retries >= 1
        assert health.workers_spawned > 2  # a replacement thread

    def test_fallback_false_raises_crash(self, graph):
        with injected_faults(FaultSpec("kill", task=1, attempts=ALWAYS)):
            with pytest.raises(WorkerCrashError):
                self._threaded(
                    graph, config=SupervisorConfig(fallback=False)
                )

    def test_fallback_false_raises_timeout(self, graph):
        with injected_faults(
            FaultSpec("delay", task=0, seconds=60, attempts=ALWAYS)
        ):
            with pytest.raises(TaskTimeoutError):
                self._threaded(
                    graph,
                    config=SupervisorConfig(
                        timeout=0.3, max_retries=0, fallback=False,
                        poll_interval=0.05,
                    ),
                )

    def test_failure_budget_drains_remaining_serially(self, graph, serial):
        ref_scores, ref_edges = serial
        plan = [
            FaultSpec("kill", task=t, attempts=ALWAYS) for t in range(6)
        ]
        with injected_faults(*plan):
            scores, edges, health = self._threaded(graph)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.pool_abandoned
        assert health.drained_serial > 0

    def test_apgre_backend_kill_fault(self, graph):
        oracle = brandes_python_bc(graph)
        with injected_faults(FaultSpec("kill", task=0)):
            res = apgre_bc_detailed(
                graph, APGREConfig(backend="threads", workers=2)
            )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert res.health.worker_crashes == 1


class TestBackendRegistry:
    def test_registered_names_and_probes(self):
        names = backend_names()
        for expected in ("serial", "threads", "processes"):
            assert expected in names
        assert get_backend("serial").available()
        assert get_backend("serial").shared_csr
        assert get_backend("threads").shared_csr
        assert not get_backend("processes").shared_csr

    def test_unknown_backend_raises(self):
        with pytest.raises(AlgorithmError, match="unknown parallel backend"):
            get_backend("gpu")
        with pytest.raises(AlgorithmError, match="unknown parallel backend"):
            resolve_backend("gpu")

    def test_default_prefers_threads_when_spmm(self):
        default = default_backend_name()
        if get_backend("threads").available():
            assert default == "threads"
        else:
            assert default in ("processes", "serial")
        assert resolve_backend(None).name == default
        assert resolve_backend("auto").name == default

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        assert resolve_backend(None).name == "serial"
        # an explicit name beats the environment
        assert resolve_backend("auto").name == default_backend_name()

    def test_env_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.raises(AlgorithmError, match="unknown parallel backend"):
            resolve_backend(None)

    def test_unavailable_backend_degrades_with_warning(self):
        broken = ExecutionBackend(
            name="broken",
            probe=lambda: False,
            unavailable_reason="intentionally disabled for the test",
            contributions=threaded_contributions,
            scores=threaded_bc_scores,
        )
        register_backend(broken)
        try:
            with pytest.warns(RuntimeWarning, match="intentionally"):
                fallback = resolve_backend("broken")
            assert fallback.name == default_backend_name()
        finally:
            from repro.parallel import backends as _b

            _b._REGISTRY.pop("broken", None)

    def test_probe_is_lazy(self, monkeypatch):
        flips = ExecutionBackend(
            name="flips",
            probe=lambda: flag[0],
            unavailable_reason="off",
            contributions=threaded_contributions,
            scores=threaded_bc_scores,
        )
        flag = [False]
        register_backend(flips)
        try:
            assert not get_backend("flips").available()
            flag[0] = True
            assert get_backend("flips").available()
        finally:
            from repro.parallel import backends as _b

            _b._REGISTRY.pop("flips", None)

    def test_config_backend_validation(self):
        with pytest.raises(AlgorithmError, match="backend"):
            APGREConfig(backend="gpu")
        with pytest.raises(AlgorithmError, match="mutually"):
            APGREConfig(
                backend="threads", parallel="processes",
                parallel_batched=True,
            )
        cfg = APGREConfig(backend="threads")
        assert cfg.batch_size == "auto"
        explicit = APGREConfig(backend="threads", batch_size=16)
        assert explicit.batch_size == 16


class TestSharedCsrBudget:
    def test_shared_csr_charges_csr_once(self):
        n, m = 50_000, 200_000
        budget = 1 << 30
        legacy = auto_batch_size(n, m, available_bytes=budget, workers=4)
        shared = auto_batch_size(
            n, m, available_bytes=budget, workers=4, shared_csr=True
        )
        # shared path: subtract one CSR footprint from the pooled
        # budget, then divide the rest across the workers
        csr = 16 * n + 16 * m
        expected = auto_batch_size(
            n, m, available_bytes=4 * (budget // 4 - csr), workers=4
        )
        assert shared == expected
        # for this budget the CSR charge dominates the legacy division
        assert shared <= legacy or csr == 0

    def test_legacy_formula_unchanged_without_flag(self):
        n, m = 50_000, 200_000
        budget = 1 << 30
        assert auto_batch_size(
            n, m, available_bytes=budget, workers=4, shared_csr=False
        ) == auto_batch_size(n, m, available_bytes=budget // 4)

    def test_tiny_budget_floors_at_one(self):
        assert (
            auto_batch_size(
                10**6, 10**7, available_bytes=1, workers=8, shared_csr=True
            )
            == 1
        )

    def test_resolve_passes_shared_csr(self):
        n, m = 50_000, 200_000
        assert resolve_batch_size(
            "auto", n, m, workers=4, shared_csr=True
        ) == auto_batch_size(n, m, workers=4, shared_csr=True)


class TestBatchWorkspace:
    def test_reuse_changes_nothing(self, und_random):
        sources = np.arange(und_random.n, dtype=np.int64)
        plain = batched_contributions(und_random, sources[:12])
        ws = BatchWorkspace()
        first = batched_contributions(
            und_random, sources[:12], workspace=ws
        )
        second = batched_contributions(
            und_random, sources[12:24], workspace=ws
        )
        third = batched_contributions(
            und_random, sources[:12], workspace=ws
        )
        assert (first == plain).all()
        assert (third == plain).all()  # dirty buffers fully re-init
        assert second.shape == plain.shape

    def test_capacity_grows_never_shrinks(self, und_random):
        ws = BatchWorkspace()
        assert ws.capacity == 0
        dist, sigma, delta = ws.arrays(4, und_random.n)
        assert dist.size == sigma.size == delta.size == 4 * und_random.n
        cap = ws.capacity
        ws.arrays(2, und_random.n)
        assert ws.capacity == cap  # smaller request reuses the buffer
        ws.arrays(8, und_random.n)
        assert ws.capacity == 8 * und_random.n

    def test_result_never_aliases_workspace(self, und_random):
        ws = BatchWorkspace()
        out = batched_contributions(
            und_random, np.arange(8), workspace=ws
        )
        saved = out.copy()
        # scribble over the workspace; a returned view would corrupt
        for arr in ws.arrays(8, und_random.n):
            arr.fill(123)
        assert (out == saved).all()

    def test_scores_share_one_workspace_across_chunks(self, und_random):
        sources = list(range(und_random.n))
        ws = BatchWorkspace()
        scores = batched_bc_scores(
            und_random, sources, batch=5, workspace=ws
        )
        baseline = batched_bc_scores(und_random, sources, batch=5)
        assert (scores == baseline).all()
        assert ws.capacity > 0


class TestProvenance:
    def test_environment_records_backend(self):
        from repro.bench.persistence import environment_provenance

        env = environment_provenance(workers=4, backend="threads")
        assert env["workers"] == 4
        assert env["backend"] == "threads"
        assert env["backend_default"] in ("threads", "processes", "serial")
        assert "serial" in env["backends_available"]

    def test_render_environment_surfaces_backend(self):
        from repro.bench.report import render_environment

        line = render_environment(
            {
                "cpu_count": 4,
                "workers": 4,
                "backend": "threads",
                "backend_default": "threads",
                "backends_available": ["serial", "threads"],
            }
        )
        assert "backend=threads" in line
        assert "cpus=4" in line
        assert "available=serial,threads" in line
        assert render_environment({}) == "environment: (unrecorded)"
