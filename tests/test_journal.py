"""The crash-safe run journal and its resume contract.

Three layers of coverage:

* the record format (checksummed framing, torn-tail detection);
* :class:`repro.journal.RunJournal` (fingerprint pinning, replay,
  payload digest verification, write-failure degradation);
* the end-to-end resume contract: a run killed at *any* injected
  fault point — SIGKILL mid-commit included — followed by
  ``resume=True`` reproduces Brandes to 1e-9 while recomputing
  strictly fewer sub-graphs, with exact edge-tally identity
  (``edges_resumed + edges_replayed + edges_traversed`` equals the
  from-scratch tally), across every execution path.

The kill/interrupt tests spawn real subprocesses (SIGKILL runs no
Python cleanup, which is the whole point); they build the same graph
from the same edge list as the in-process fixtures so parent and
child agree on the journal fingerprint.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.errors import AlgorithmError, JournalError
from repro.graph.build import from_edges
from repro.journal import (
    JOURNAL_VERSION,
    RunJournal,
    decode_line,
    encode_record,
    payload_digest,
    run_fingerprint,
    scan_log,
)
from repro.parallel.faults import FaultSpec, injected_faults

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

# The shared test graph: a K7 and a K5 joined through a degree-2
# bridge vertex, plus a pendant 2-path — several BCCs, so threshold=2
# yields a handful of independently journalable sub-graphs.  The edge
# list is also inlined into subprocess scripts, so parent and child
# build fingerprint-identical graphs.
EDGES_SRC = (
    "edges = ("
    "[(i, j) for i in range(7) for j in range(i + 1, 7)]"
    " + [(8 + i, 8 + j) for i in range(5) for j in range(i + 1, 5)]"
    " + [(6, 7), (7, 8), (8, 13), (13, 14)])"
)
_ns: dict = {}
exec(EDGES_SRC, _ns)
EDGES = _ns["edges"]


def make_graph():
    return from_edges(EDGES, n=15, directed=False)


@pytest.fixture(scope="module")
def graph():
    return make_graph()


@pytest.fixture(scope="module")
def reference(graph):
    return brandes_bc(graph)


def config_for(journal_dir, resume=False, **kw):
    return APGREConfig(
        threshold=2, journal_dir=str(journal_dir), resume=resume, **kw
    )


def contribution_lines(journal_dir):
    """The raw log lines holding valid contribution records."""
    log = Path(journal_dir) / "journal.log"
    out = []
    for line in log.read_bytes().splitlines(keepends=True):
        body = decode_line(line)
        if body is not None and body.get("type") == "contribution":
            out.append(line)
    return out


def truncate_to(journal_dir, keep):
    """Rewrite the log as header + the first ``keep`` contributions.

    This is the deterministic stand-in for "the process died after
    ``keep`` commits": the bytes on disk are exactly what a crash at
    that point leaves behind (no final record, later payloads stale).
    """
    log = Path(journal_dir) / "journal.log"
    kept, contribs = [], 0
    for line in log.read_bytes().splitlines(keepends=True):
        body = decode_line(line)
        if body is None:
            break
        if body.get("type") == "header":
            kept.append(line)
        elif body.get("type") == "contribution" and contribs < keep:
            kept.append(line)
            contribs += 1
    log.write_bytes(b"".join(kept))
    return contribs


# ----------------------------------------------------------------------
# record format
# ----------------------------------------------------------------------
class TestRecordFormat:
    def test_roundtrip(self):
        body = {"type": "contribution", "subgraph": 3, "edges": 42}
        assert decode_line(encode_record(body)) == body

    def test_torn_line_without_newline_is_dead(self):
        line = encode_record({"type": "final", "status": "complete"})
        assert decode_line(line[:-1]) is None
        assert decode_line(line[: len(line) // 2]) is None

    def test_wrong_magic_is_dead(self):
        line = encode_record({"type": "final"})
        assert decode_line(b"J9" + line[2:]) is None

    def test_flipped_byte_fails_checksum(self):
        line = bytearray(encode_record({"type": "final", "x": 1000}))
        line[-3] ^= 0x01  # corrupt one payload byte
        assert decode_line(bytes(line)) is None

    def test_scan_stops_at_first_invalid_line(self, tmp_path):
        good1 = encode_record({"type": "header", "version": 1})
        good2 = encode_record({"type": "contribution", "subgraph": 0})
        torn = encode_record({"type": "contribution", "subgraph": 1})[:-9]
        log = tmp_path / "journal.log"
        log.write_bytes(good1 + good2 + torn)
        records, valid = scan_log(log)
        assert [r["type"] for r in records] == ["header", "contribution"]
        assert valid == len(good1) + len(good2)

    def test_scan_missing_file_is_empty(self, tmp_path):
        assert scan_log(tmp_path / "absent.log") == ([], 0)

    def test_payload_digest_is_content_addressed(self):
        assert payload_digest(b"abc") == payload_digest(b"abc")
        assert payload_digest(b"abc") != payload_digest(b"abd")


# ----------------------------------------------------------------------
# RunJournal unit behaviour
# ----------------------------------------------------------------------
class TestRunJournal:
    def fingerprint(self, graph):
        return run_fingerprint(graph, APGREConfig(threshold=2))

    def test_fresh_begin_writes_header(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        assert journal.begin(self.fingerprint(graph)) == {}
        journal.record_contribution(0, np.ones(4), 7)
        journal.finalize("complete")
        records, _ = scan_log(tmp_path / "journal.log")
        assert [r["type"] for r in records] == [
            "header", "contribution", "final",
        ]
        assert records[0]["version"] == JOURNAL_VERSION
        assert records[0]["fingerprint"] == self.fingerprint(graph)
        assert records[2]["status"] == "complete"

    def test_resume_replays_records(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.record_contribution(2, np.arange(5, dtype=float), 11)
        journal.finalize("complete")
        entries = RunJournal(tmp_path).begin(
            self.fingerprint(graph), resume=True
        )
        assert set(entries) == {2}
        np.testing.assert_array_equal(
            entries[2].scores, np.arange(5, dtype=float)
        )
        assert entries[2].edges == 11

    def test_resume_without_journal_raises(self, tmp_path, graph):
        with pytest.raises(JournalError, match="does not exist"):
            RunJournal(tmp_path).begin(
                self.fingerprint(graph), resume=True
            )

    def test_resume_graph_mismatch_raises(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.finalize("complete")
        other = from_edges([(0, 1), (1, 2)], n=3, directed=False)
        with pytest.raises(JournalError, match="fingerprint mismatch"):
            RunJournal(tmp_path).begin(
                self.fingerprint(other), resume=True
            )

    def test_resume_config_mismatch_raises(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.finalize("complete")
        changed = run_fingerprint(graph, APGREConfig(threshold=9))
        with pytest.raises(JournalError, match="fingerprint mismatch"):
            RunJournal(tmp_path).begin(changed, resume=True)

    def test_execution_strategy_does_not_change_fingerprint(self, graph):
        base = run_fingerprint(graph, APGREConfig(threshold=2))
        pooled = run_fingerprint(
            graph,
            APGREConfig(
                threshold=2, parallel="processes", workers=4,
                parallel_batched=True, compress=True,
            ),
        )
        assert base == pooled

    def test_newer_version_raises(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.finalize("complete")
        records, _ = scan_log(tmp_path / "journal.log")
        records[0]["version"] = JOURNAL_VERSION + 1
        (tmp_path / "journal.log").write_bytes(
            b"".join(encode_record(r) for r in records)
        )
        with pytest.raises(JournalError, match="version"):
            RunJournal(tmp_path).begin(
                self.fingerprint(graph), resume=True
            )

    def test_corrupt_payload_degrades_to_recompute(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.record_contribution(0, np.ones(4), 1)
        journal.record_contribution(1, np.ones(4), 1)
        journal.finalize("complete")
        payload = tmp_path / "sg-000001.npy"
        payload.write_bytes(payload.read_bytes()[:10])  # torn rename
        entries = RunJournal(tmp_path).begin(
            self.fingerprint(graph), resume=True
        )
        assert set(entries) == {0}  # bad digest: never trusted

    def test_fresh_begin_discards_previous_run(self, tmp_path, graph):
        journal = RunJournal(tmp_path)
        journal.begin(self.fingerprint(graph))
        journal.record_contribution(0, np.ones(4), 1)
        journal.finalize("complete")
        journal = RunJournal(tmp_path)
        assert journal.begin(self.fingerprint(graph)) == {}
        journal.finalize("complete")
        assert not list(tmp_path.glob("sg-*.npy"))
        records, _ = scan_log(tmp_path / "journal.log")
        assert [r["type"] for r in records] == ["header", "final"]

    def test_unwritable_dir_raises_journal_error(self, tmp_path, graph):
        blocked = tmp_path / "file"
        blocked.write_text("not a directory")
        with pytest.raises(JournalError, match="journal"):
            RunJournal(blocked / "sub").begin(self.fingerprint(graph))


# ----------------------------------------------------------------------
# the resume contract, across execution paths
# ----------------------------------------------------------------------
PATHS = {
    "serial": {},
    "batched": {"batch_size": 4},
    "compressed": {"compress": True},
    "threads": {"parallel": "threads", "workers": 2},
    "pooled": {"parallel": "processes", "workers": 2},
    "pooled-batched": {
        "parallel": "processes", "workers": 2, "parallel_batched": True,
    },
}


class TestResumeContract:
    @pytest.mark.parametrize("path", sorted(PATHS))
    def test_cold_then_partial_resume(
        self, tmp_path, graph, reference, path
    ):
        kw = PATHS[path]
        cold = apgre_bc_detailed(graph, config_for(tmp_path, **kw))
        np.testing.assert_allclose(cold.scores, reference, atol=1e-9)
        total = cold.stats.num_subgraphs
        assert cold.health.journal_records == total
        assert cold.health.journal_resumable is False

        kept = truncate_to(tmp_path, keep=2)
        assert kept == 2
        resumed = apgre_bc_detailed(
            graph, config_for(tmp_path, resume=True, **kw)
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2
        assert 0 < resumed.stats.subgraphs_recomputed < total
        assert (
            resumed.stats.subgraphs_resumed
            + resumed.stats.subgraphs_recomputed
            == total
        )
        # exact edge-tally identity: journaled + recomputed edges are
        # precisely the from-scratch tally, so TEPS stays honest
        assert (
            resumed.stats.edges_resumed + resumed.stats.edges_traversed
            == cold.stats.edges_traversed
        )
        assert resumed.health.journal_resumable is True

    def test_full_resume_recomputes_nothing(self, tmp_path, graph,
                                            reference):
        apgre_bc_detailed(graph, config_for(tmp_path))
        again = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(again.scores, reference, atol=1e-9)
        assert again.stats.subgraphs_recomputed == 0
        assert again.stats.edges_traversed == 0
        assert (
            again.stats.subgraphs_resumed == again.stats.num_subgraphs
        )

    def test_resume_under_different_strategy(self, tmp_path, graph,
                                             reference):
        """A serially journaled run resumes on the pooled path."""
        apgre_bc_detailed(graph, config_for(tmp_path))
        truncate_to(tmp_path, keep=2)
        resumed = apgre_bc_detailed(
            graph,
            config_for(
                tmp_path, resume=True, parallel="processes", workers=2,
            ),
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2

    def test_torn_log_tail_is_dropped(self, tmp_path, graph, reference):
        cold = apgre_bc_detailed(graph, config_for(tmp_path))
        log = tmp_path / "journal.log"
        lines = contribution_lines(tmp_path)
        # keep everything up to a *half* third contribution record
        head = log.read_bytes().split(lines[2])[0]
        log.write_bytes(head + lines[2][: len(lines[2]) // 2])
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2
        assert (
            resumed.stats.subgraphs_recomputed
            == cold.stats.num_subgraphs - 2
        )

    def test_cache_composition(self, tmp_path, graph, reference):
        """Cache hits are journaled too, so resume never needs the
        store; replay/resume/traverse tallies stay disjoint."""
        from repro.cache.store import ContributionStore

        store = ContributionStore()
        jdir = tmp_path / "journal"
        cold = apgre_bc_detailed(
            graph, config_for(jdir, cache=store)
        )
        total = cold.stats.num_subgraphs
        # second journal dir, warm store: everything replays from the
        # cache and every replay still lands in the journal
        jdir2 = tmp_path / "journal2"
        warm = apgre_bc_detailed(graph, config_for(jdir2, cache=store))
        np.testing.assert_allclose(warm.scores, reference, atol=1e-9)
        assert warm.stats.subgraphs_replayed == total
        assert warm.health.journal_records == total
        # resume from that journal *without* the store
        truncate_to(jdir2, keep=2)
        resumed = apgre_bc_detailed(graph, config_for(jdir2, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2
        # and with the store: the rest replays, nothing recomputes,
        # yet the identity over all three tallies still holds
        truncate_to(jdir2, keep=2)
        mixed = apgre_bc_detailed(
            graph, config_for(jdir2, resume=True, cache=store)
        )
        np.testing.assert_allclose(mixed.scores, reference, atol=1e-9)
        assert mixed.stats.subgraphs_resumed == 2
        assert mixed.stats.subgraphs_replayed == total - 2
        assert mixed.stats.subgraphs_recomputed == 0
        assert (
            mixed.stats.edges_resumed
            + mixed.stats.edges_replayed
            + mixed.stats.edges_traversed
            == cold.stats.edges_traversed
        )

    def test_resume_requires_journal_dir(self):
        with pytest.raises(AlgorithmError, match="resume"):
            APGREConfig(resume=True)

    def test_resume_against_wrong_graph_raises(self, tmp_path, graph):
        apgre_bc_detailed(graph, config_for(tmp_path))
        other = from_edges(
            [(0, 1), (1, 2), (2, 3)], n=15, directed=False
        )
        with pytest.raises(JournalError, match="fingerprint mismatch"):
            apgre_bc_detailed(other, config_for(tmp_path, resume=True))


# ----------------------------------------------------------------------
# disk-fault injection (torn writes, ENOSPC) — never a crash, never
# silent corruption
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestDiskFaults:
    def test_enospc_mid_journal_degrades_and_stays_resumable(
        self, tmp_path, graph, reference
    ):
        # append op 0 is the header; op 2 is the second contribution
        with injected_faults(
            FaultSpec("enospc", task=2, target="journal.append")
        ):
            with pytest.warns(UserWarning, match="journal disabled"):
                run = apgre_bc_detailed(graph, config_for(tmp_path))
        np.testing.assert_allclose(run.scores, reference, atol=1e-9)
        records, _ = scan_log(tmp_path / "journal.log")
        kinds = [r["type"] for r in records]
        assert kinds == ["header", "contribution"]
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 1

    def test_torn_journal_append_degrades_to_clean_resume_point(
        self, tmp_path, graph, reference
    ):
        with injected_faults(
            FaultSpec("torn_write", task=2, target="journal.append")
        ):
            with pytest.warns(UserWarning, match="journal disabled"):
                run = apgre_bc_detailed(graph, config_for(tmp_path))
        np.testing.assert_allclose(run.scores, reference, atol=1e-9)
        # the half-written line was truncated away: the log scans clean
        records, valid = scan_log(tmp_path / "journal.log")
        assert (tmp_path / "journal.log").stat().st_size == valid
        assert [r["type"] for r in records] == ["header", "contribution"]
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)

    def test_torn_payload_is_rejected_by_digest(
        self, tmp_path, graph, reference
    ):
        with injected_faults(
            FaultSpec("torn_write", task=1, target="journal.payload")
        ):
            run = apgre_bc_detailed(graph, config_for(tmp_path))
        np.testing.assert_allclose(run.scores, reference, atol=1e-9)
        total = run.stats.num_subgraphs
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        # exactly one payload fails its digest and recomputes
        assert resumed.stats.subgraphs_resumed == total - 1
        assert resumed.stats.subgraphs_recomputed == 1

    def test_cache_enospc_degrades_to_memory_only(self, tmp_path, graph,
                                                  reference):
        cache_dir = tmp_path / "cache"
        with injected_faults(
            FaultSpec("enospc", task=0, target="cache.disk",
                      attempts=range(99)),
            FaultSpec("enospc", task=1, target="cache.disk"),
            FaultSpec("enospc", task=2, target="cache.disk"),
            FaultSpec("enospc", task=3, target="cache.disk"),
            FaultSpec("enospc", task=4, target="cache.disk"),
        ):
            with pytest.warns(UserWarning, match="memory-only"):
                run = apgre_bc_detailed(
                    graph,
                    APGREConfig(threshold=2, cache_dir=str(cache_dir)),
                )
        np.testing.assert_allclose(run.scores, reference, atol=1e-9)
        assert not list(cache_dir.glob("*.npz"))

    def test_cache_torn_write_degrades_to_miss(self, tmp_path, graph,
                                               reference):
        from repro.cache.store import ContributionStore

        cache_dir = tmp_path / "cache"
        with injected_faults(
            FaultSpec("torn_write", task=0, target="cache.disk")
        ):
            run = apgre_bc_detailed(
                graph, APGREConfig(threshold=2, cache_dir=str(cache_dir))
            )
        np.testing.assert_allclose(run.scores, reference, atol=1e-9)
        # a fresh store sees the torn entry, rejects it, recomputes
        fresh = ContributionStore(cache_dir=cache_dir)
        rerun = apgre_bc_detailed(
            graph, APGREConfig(threshold=2, cache=fresh)
        )
        np.testing.assert_allclose(rerun.scores, reference, atol=1e-9)
        assert fresh.counters.disk_errors >= 1
        assert rerun.stats.subgraphs_recomputed >= 1


# ----------------------------------------------------------------------
# process-death tests: SIGKILL mid-commit, graceful SIGINT/SIGTERM
# ----------------------------------------------------------------------
def run_child(script, timeout=90):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=str(ROOT),
    )


def spawn_child(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(ROOT),
    )


def child_script(journal_dir, fault="", prologue="", epilogue="",
                 config_kw=""):
    return f"""
import sys
from repro.graph.build import from_edges
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.parallel.faults import FaultSpec, FaultPlan, install_faults
{EDGES_SRC}
g = from_edges(edges, n=15, directed=False)
{fault}
{prologue}
result = apgre_bc_detailed(
    g, APGREConfig(threshold=2, journal_dir={str(journal_dir)!r}{config_kw})
)
print("FINISHED", result.stats.subgraphs_recomputed)
{epilogue}
"""


@pytest.mark.faults
class TestKillAndResume:
    @pytest.mark.parametrize(
        "path",
        ["serial", "batched", "compressed", "pooled", "pooled-batched"],
    )
    def test_sigkill_mid_commit_then_resume(
        self, tmp_path, graph, reference, path
    ):
        """SIGKILL at the commit point (power-loss semantics: no
        cleanup runs) leaves a journal that resumes exactly."""
        kw = PATHS[path]
        config_kw = "".join(f", {k}={v!r}" for k, v in kw.items())
        fault = (
            "install_faults(FaultPlan([FaultSpec("
            "'kill', task=1, target='journal.committed')]))"
        )
        proc = run_child(
            child_script(tmp_path, fault=fault, config_kw=config_kw)
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "FINISHED" not in proc.stdout

        # exactly two commits became durable before the kill
        records, _ = scan_log(tmp_path / "journal.log")
        kinds = [r["type"] for r in records]
        assert kinds == ["header", "contribution", "contribution"]

        # from-scratch edge baseline measured serially with the same
        # kernel options (compression changes the tally): the plain
        # pooled pass does not report parent-side edge counts
        kernel_kw = {
            k: v for k, v in kw.items()
            if k in ("compress", "batch_size")
        }
        cold = apgre_bc_detailed(
            graph, APGREConfig(threshold=2, **kernel_kw)
        )
        resumed = apgre_bc_detailed(
            graph, config_for(tmp_path, resume=True, **kw)
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        total = resumed.stats.num_subgraphs
        assert resumed.stats.subgraphs_resumed == 2
        assert 0 < resumed.stats.subgraphs_recomputed < total
        assert (
            resumed.stats.edges_resumed + resumed.stats.edges_traversed
            == cold.stats.edges_traversed
        )

    def test_sigkill_before_record_loses_only_that_record(
        self, tmp_path, graph, reference
    ):
        """Death between payload write and log append: the payload file
        is garbage-on-disk, the log never references it, resume
        recomputes that sub-graph."""
        fault = (
            "install_faults(FaultPlan([FaultSpec("
            "'kill', task=2, target='journal.payload')]))"
        )
        proc = run_child(child_script(tmp_path, fault=fault))
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        records, _ = scan_log(tmp_path / "journal.log")
        assert [r["type"] for r in records] == [
            "header", "contribution", "contribution",
        ]
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2

    def _wait_for_records(self, journal_dir, count, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            records, _ = scan_log(Path(journal_dir) / "journal.log")
            if sum(r["type"] == "contribution" for r in records) >= count:
                return
            time.sleep(0.05)
        raise AssertionError(
            f"journal never reached {count} contribution record(s)"
        )

    def test_sigint_finalizes_interrupted_and_resumes(
        self, tmp_path, graph, reference
    ):
        """Graceful SIGINT: the journal gains a final/interrupted
        record (unlike SIGKILL) and the run exits 130."""
        fault = (
            "install_faults(FaultPlan([FaultSpec("
            "'delay', task=1, seconds=120,"
            " target='journal.committed')]))"
        )
        epilogue = "print('NOT-REACHED')"
        script = child_script(tmp_path, fault=fault, epilogue=epilogue)
        script = (
            "import sys\n"
            "try:\n"
            + "".join(
                "    " + line + "\n" for line in script.splitlines()
            )
            + "except KeyboardInterrupt:\n"
            "    print('INTERRUPTED')\n"
            "    sys.exit(130)\n"
        )
        proc = spawn_child(script)
        try:
            self._wait_for_records(tmp_path, 2)
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - hang guard
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, err
        assert "INTERRUPTED" in out
        assert "NOT-REACHED" not in out
        records, _ = scan_log(tmp_path / "journal.log")
        assert records[-1]["type"] == "final"
        assert records[-1]["status"] == "interrupted"
        resumed = apgre_bc_detailed(graph, config_for(tmp_path, resume=True))
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2

    def test_fallback_disabled_failure_reports_resumable(
        self, tmp_path, graph
    ):
        """Ladder exhaustion with fallback=False finalises the journal
        as a resumable partial result and says so in the error."""
        fault = (
            "install_faults(FaultPlan([FaultSpec("
            "'kill', task=0, attempts=tuple(range(99)))]))"
        )
        config_kw = (
            ", parallel='processes', workers=2, fallback=False"
            ", max_retries=0"
        )
        script = child_script(
            tmp_path, fault=fault, config_kw=config_kw,
            epilogue="print('NOT-REACHED')",
        )
        script = (
            "import sys\n"
            "from repro.errors import ExecutionError\n"
            "try:\n"
            + "".join(
                "    " + line + "\n" for line in script.splitlines()
            )
            + "except ExecutionError as exc:\n"
            "    print('EXECERROR:', exc)\n"
            "    sys.exit(3)\n"
        )
        proc = run_child(script)
        assert proc.returncode == 3, proc.stderr
        assert "resume" in proc.stdout
        records, _ = scan_log(tmp_path / "journal.log")
        assert records[-1]["type"] == "final"
        assert records[-1]["status"] == "partial"


# ----------------------------------------------------------------------
# CLI: --journal-dir/--resume, SIGTERM -> 130, repro-bc gc
# ----------------------------------------------------------------------
class TestCLI:
    def write_graph(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("".join(f"{u} {v}\n" for u, v in EDGES))
        return path

    def test_compute_journal_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        gpath = self.write_graph(tmp_path)
        jdir = tmp_path / "journal"
        assert main(
            ["compute", str(gpath), "--journal-dir", str(jdir)]
        ) == 0
        out = capsys.readouterr().out
        assert "journal:" in out and "0 sub-graph(s) resumed" in out
        truncate_to(jdir, keep=2)
        assert main(
            ["compute", str(gpath), "--journal-dir", str(jdir),
             "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 sub-graph(s) resumed" in out

    def test_resume_requires_journal_dir(self, tmp_path, capsys):
        from repro.cli import main

        gpath = self.write_graph(tmp_path)
        assert main(["compute", str(gpath), "--resume"]) == 2
        assert "--journal-dir" in capsys.readouterr().err

    def test_journal_is_apgre_only(self, tmp_path, capsys):
        from repro.cli import main

        gpath = self.write_graph(tmp_path)
        assert main(
            ["compute", str(gpath), "--algorithm", "serial",
             "--journal-dir", str(tmp_path / "j")]
        ) == 2
        assert "APGRE" in capsys.readouterr().err

    def test_fingerprint_mismatch_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        gpath = self.write_graph(tmp_path)
        jdir = tmp_path / "journal"
        assert main(
            ["compute", str(gpath), "--journal-dir", str(jdir)]
        ) == 0
        other = tmp_path / "other.txt"
        other.write_text("0 1\n1 2\n2 3\n")
        capsys.readouterr()
        assert main(
            ["compute", str(other), "--journal-dir", str(jdir),
             "--resume"]
        ) == 2
        assert "fingerprint mismatch" in capsys.readouterr().err

    @pytest.mark.faults
    def test_sigterm_drains_to_exit_130(self, tmp_path):
        """CLI remaps SIGTERM to the graceful-interrupt path: exit
        130, journal finalised as interrupted, resume works."""
        gpath = self.write_graph(tmp_path)
        jdir = tmp_path / "journal"
        script = f"""
import sys
from repro.parallel.faults import FaultSpec, FaultPlan, install_faults
install_faults(FaultPlan([FaultSpec(
    'delay', task=1, seconds=120, target='journal.committed')]))
from repro.cli import main
sys.exit(main([
    "compute", {str(gpath)!r}, "--journal-dir", {str(jdir)!r},
]))
"""
        proc = spawn_child(script)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                records, _ = scan_log(jdir / "journal.log")
                if sum(
                    r["type"] == "contribution" for r in records
                ) >= 2:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - hang guard
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, err
        assert "interrupted" in err
        records, _ = scan_log(jdir / "journal.log")
        assert records[-1]["type"] == "final"
        assert records[-1]["status"] == "interrupted"
        # the CLI journaled under its default config, so resume with
        # the defaults too (threshold differs from config_for's)
        resumed = apgre_bc_detailed(
            make_graph(),
            APGREConfig(journal_dir=str(jdir), resume=True),
        )
        assert resumed.stats.subgraphs_resumed >= 2

    def test_gc_lists_and_removes_orphans(self, tmp_path, capsys):
        from repro.cli import main

        # a dead-pid orphan, a live-pid segment, and foreign memory
        orphan = tmp_path / "repro-bc-999999999-deadbeef"
        orphan.write_bytes(b"\x00" * 64)
        live = tmp_path / f"repro-bc-{os.getpid()}-cafecafe"
        live.write_bytes(b"\x00" * 64)
        foreign = tmp_path / "psm_something"
        foreign.write_bytes(b"\x00" * 64)

        assert main(["gc", "--shm-dir", str(tmp_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1 orphaned segment(s)" in out
        assert orphan.exists()  # dry run never removes

        assert main(["gc", "--shm-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 orphaned segment(s) removed" in out
        assert not orphan.exists()
        assert live.exists()
        assert foreign.exists()


@pytest.mark.faults
class TestOrphanReclamation:
    def test_sigkilled_pool_segments_are_reclaimable(self):
        """A creator SIGKILLed along with its resource tracker (group
        kill, OOM sweep, power loss) leaks its named segment — no
        finalizer and no tracker cleanup run; list_orphans identifies
        it by the dead pid in the name and collect_orphans unlinks
        it."""
        from repro.parallel.sharedmem import collect_orphans, list_orphans

        script = """
import os, signal, sys
from multiprocessing import resource_tracker
from repro.parallel.sharedmem import SharedArray
import numpy as np
seg = SharedArray.create((64,), np.float64)
print(seg.name, flush=True)
# take the resource tracker down first: a lone SIGKILL leaves the
# tracker alive to clean up, which is exactly what a group kill or
# power loss does not do
os.kill(resource_tracker._resource_tracker._pid, signal.SIGKILL)
os.kill(os.getpid(), signal.SIGKILL)
"""
        proc = run_child(script)
        assert proc.returncode == -signal.SIGKILL
        name = proc.stdout.strip().split()[-1].lstrip("/")
        assert name.startswith("repro-bc-")
        orphans = list_orphans()
        assert name in {seg.name for seg in orphans}
        removed = collect_orphans()
        assert name in {seg.name for seg in removed}
        assert name not in {seg.name for seg in list_orphans()}

    def test_live_segments_are_never_collected(self):
        from repro.parallel.sharedmem import SharedArray, list_orphans

        with SharedArray.create((16,), np.float64) as seg:
            name = seg.name.lstrip("/")
            assert name not in {s.name for s in list_orphans()}


class TestEnvironmentDriftWarning:
    def test_resume_warns_on_toolchain_drift(self, tmp_path, graph,
                                             reference):
        apgre_bc_detailed(graph, config_for(tmp_path))
        records, valid = scan_log(tmp_path / "journal.log")
        records[0]["environment"]["numpy"] = "0.0.1"
        log = tmp_path / "journal.log"
        tail = log.read_bytes()[valid:]
        log.write_bytes(
            b"".join(encode_record(r) for r in records) + tail
        )
        with pytest.warns(UserWarning, match="toolchain"):
            resumed = apgre_bc_detailed(
                graph, config_for(tmp_path, resume=True)
            )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
