"""Batched multi-source level-synchronous traversal kernels.

:func:`repro.graph.traversal.bfs_sigma` advances one source at a time,
so every BFS level pays fixed numpy dispatch overhead on frontiers that
are often tiny (deep road networks spend most of their time in that
overhead).  This module runs a *batch* of ``B`` sources simultaneously
through ``(B, n)`` ``dist``/``sigma`` matrices: each level is one
shared CSR gather over the union frontier plus one ``np.add.at``
scatter keyed by the flattened ``(batch_row, vertex)`` index, so
per-level work is a single large vectorised operation instead of ``B``
small ones — the "process many roots concurrently" formulation of the
multi-GPU BC literature (Bernaschi et al.) mapped onto numpy.

Per-source results are bit-identical to :func:`bfs_sigma`: a frontier
pair ``(row, v)`` expands exactly the arcs the serial BFS of source
``sources[row]`` would expand at that level, so distances, σ counts,
shortest-path-DAG arcs *and the examined-edge tally* all match the
serial kernel — batching changes only how the work is grouped.

DAG arcs are recorded per level as flattened ``row * n + vertex``
indices (the paper's predecessor-list / ``"arcs"`` strategy), which the
backward sweeps replay directly against the flattened ``(B, n)``
dependency matrices.

Two kernels implement the batched contraction:

* the pure-numpy ``"arcs"`` kernel above (always available, per-row
  bit-identical to serial), and
* an ``"spmm"`` kernel that expresses each level as one C-compiled
  sparse matrix product (``frontier · A`` forward, ``weights · Aᵀ``
  backward) via :mod:`scipy.sparse`, moving the per-arc expansion,
  deduplication and σ summation out of numpy dispatch entirely.  It is
  the default for score computation when scipy is importable; scores
  agree with the per-source path to float64 tolerance and the examined
  -edge tally is still identical (counted runs carry the arc
  multiplicities in the imaginary part of a complex matmul).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

try:  # optional C backend for the SpMM kernel ("stub or gate" policy)
    from scipy.sparse import _sparsetools as _spmm_tools
except ImportError:  # pragma: no cover - scipy absent in minimal envs
    _spmm_tools = None

__all__ = [
    "DEFAULT_MAX_BATCH",
    "BatchedBFSResult",
    "BatchWorkspace",
    "available_memory_bytes",
    "auto_batch_size",
    "resolve_batch_size",
    "bfs_sigma_batched",
    "arc_segments",
    "accumulate_dependencies_batched",
    "arcs_contributions",
    "batched_contributions",
    "batched_bc_scores",
    "spmm_available",
    "spmm_contributions",
]

#: Upper bound on the ``auto`` heuristic: past ~this point the per-level
#: scatters are large enough that dispatch overhead is already amortised
#: and bigger batches only grow the ``(B, n)`` working set past cache.
DEFAULT_MAX_BATCH = 128

# Rough per-batch-row memory model used by the ``auto`` heuristic:
# dist (int32) + sigma (float64) + up to three dependency matrices
# (float64) per vertex, and two flattened int64 DAG-arc arrays plus
# gather temporaries per arc.
_BYTES_PER_ROW_VERTEX = 44
_BYTES_PER_ROW_ARC = 20

# CSR footprint model for the shared-address-space correction: int64
# indptr + indices, counted for both directions (out + in).
_CSR_BYTES_PER_VERTEX = 16
_CSR_BYTES_PER_ARC = 16

# Extra per-row working set of the direction-optimizing pull kernel:
# the materialised unvisited candidate list (one flat index per still
# -undiscovered vertex, int32/int64) plus its boolean masks.
_PULL_BYTES_PER_ROW_VERTEX = 12


def available_memory_bytes() -> int:
    """Best-effort available physical memory (fallback: 1 GiB)."""
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    try:  # pragma: no cover - non-Linux fallback
        return os.sysconf("SC_AVPHYS_PAGES") * os.sysconf("SC_PAGE_SIZE")
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        return 1 << 30


def auto_batch_size(
    n: int,
    m: int,
    *,
    available_bytes: Optional[int] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    workers: int = 1,
    shared_csr: bool = False,
    kernel: Optional[str] = None,
) -> int:
    """Pick a batch size whose ``(B, n)`` buffers stay RAM-safe.

    Budgets a quarter of available memory (capped at 2 GiB) against a
    conservative per-row estimate of ``44·n + 20·m`` bytes (state
    matrices plus recorded DAG arcs), clamped to ``[1, max_batch]``.
    ``workers`` divides the budget: in a parallel run every concurrent
    worker materialises its own ``(B, n)`` working set, so sizing each
    against the full budget would oversubscribe RAM ``workers``-fold.

    ``shared_csr`` selects the threaded-backend accounting: worker
    threads share one address space, so the graph's CSR structure
    exists *once* for the whole pool rather than once per worker.  The
    CSR footprint (``~16·n + 16·m`` bytes) is then charged once
    against the pooled budget and only the per-worker workspace
    remainder divides by ``workers`` — the process model instead
    leaves per-worker duplication to the quartered headroom, which on
    arc-heavy graphs misprices what each thread may actually use.

    ``kernel`` refines the model per compute kernel: ``"pull"`` needs
    the CSR transpose resident for its bottom-up gathers — charged
    *once* against the pooled budget exactly like ``shared_csr`` (the
    transpose is process-wide shared structure, not per-row state) —
    plus ~:data:`_PULL_BYTES_PER_ROW_VERTEX` bytes per row-vertex for
    the materialised unvisited candidate list and its masks.  Other
    kernel names (and ``None``) use the base model.
    """
    if n <= 0:
        return 1
    if available_bytes is None:
        available_bytes = available_memory_bytes()
    budget = min(available_bytes // 4, 2 << 30)
    csr = _CSR_BYTES_PER_VERTEX * n + _CSR_BYTES_PER_ARC * max(m, 1)
    if shared_csr:
        budget = max(budget - csr, 0)
    if kernel == "pull":
        # the transpose CSR is shared across all rows and workers:
        # charge it once, before the per-worker split below
        budget = max(budget - csr, 0)
    budget //= max(int(workers), 1)
    per_row = _BYTES_PER_ROW_VERTEX * n + _BYTES_PER_ROW_ARC * max(m, 1)
    if kernel == "pull":
        per_row += _PULL_BYTES_PER_ROW_VERTEX * n
    return int(max(1, min(budget // per_row, max_batch)))


def resolve_batch_size(
    batch_size: Union[int, str, None],
    n: int,
    m: int,
    *,
    workers: int = 1,
    shared_csr: bool = False,
    kernel: Optional[str] = None,
) -> Optional[int]:
    """Normalise a ``batch_size`` option to an int (or ``None``).

    ``None`` means "per-source path" and passes through; ``"auto"``
    resolves via :func:`auto_batch_size` for the given graph size, the
    number of concurrent ``workers`` sharing the RAM budget, the
    backend's address-space model (``shared_csr``), and the compute
    ``kernel``'s extra working set (see :func:`auto_batch_size`); a
    positive int is validated and returned as-is (an explicit size is
    the caller's statement that it fits).
    """
    if batch_size is None:
        return None
    if isinstance(batch_size, str):
        if batch_size == "auto":
            return auto_batch_size(
                n, m, workers=workers, shared_csr=shared_csr,
                kernel=kernel,
            )
        raise AlgorithmError(
            f"batch_size must be 'auto', a positive int or None, "
            f"got {batch_size!r}"
        )
    b = int(batch_size)
    if b < 1:
        raise AlgorithmError(f"batch_size must be >= 1, got {batch_size}")
    return b


class BatchWorkspace:
    """Reusable flattened ``B·n`` state buffers for the batched kernels.

    Both kernels allocate three batch-sized state arrays (``dist``,
    ``sigma``, ``delta``) per chunk; across the many chunks of a full
    BC run that is measurable allocator pressure at large ``B``.
    Passing a workspace makes successive chunks reuse one allocation,
    grown on demand and never shrunk.  The kernels re-initialise the
    buffers exactly as freshly allocated ones (``fill(-1)`` /
    ``fill(0)``), so results — including the arcs kernel's per-row bit
    identity with the serial path — are unchanged.

    A workspace is single-owner mutable state: concurrent batches need
    one workspace each.  The threaded backend keeps *two* per worker
    thread and alternates them, so the fold of batch *i*'s result can
    overlap the compute of batch *i+1* without the second batch
    clobbering buffers the first may still alias.
    """

    __slots__ = ("_dist", "_sigma", "_delta")

    def __init__(self) -> None:
        self._dist = np.empty(0, dtype=np.int32)
        self._sigma = np.empty(0, dtype=SCORE_DTYPE)
        self._delta = np.empty(0, dtype=SCORE_DTYPE)

    @property
    def capacity(self) -> int:
        """Current buffer capacity in elements (``B·n`` units)."""
        return self._dist.size

    def arrays(
        self, b: int, n: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Uninitialised ``(dist, sigma, delta)`` views of size ``b·n``.

        The caller owns initialisation; contents are whatever the
        previous batch left behind.
        """
        need = b * n
        if self._dist.size < need:
            self._dist = np.empty(need, dtype=np.int32)
            self._sigma = np.empty(need, dtype=SCORE_DTYPE)
            self._delta = np.empty(need, dtype=SCORE_DTYPE)
        return (
            self._dist[:need],
            self._sigma[:need],
            self._delta[:need],
        )


@dataclass
class BatchedBFSResult:
    """Phase-1 output for a batch of sources (the 2D ``BFSResult``).

    Attributes
    ----------
    sources:
        The batch's BFS roots, one per row.
    dist:
        ``(B, n)`` int32 distances; row ``i`` equals the serial
        ``bfs_sigma(g, sources[i]).dist``.
    sigma:
        ``(B, n)`` float64 shortest-path counts, likewise per row.
    level_arcs:
        When requested, ``level_arcs[d]`` holds the shortest-path-DAG
        arcs from distance ``d`` to ``d + 1`` across the whole batch,
        as flattened ``(row * n + src, row * n + dst)`` index pairs —
        ready to replay against flattened ``(B, n)`` matrices.
    edges_traversed:
        Arcs examined top-down (push), summed over the batch.  For the
        push-only kernels this equals the sum of the serial per-source
        tallies; for the direction-optimizing kernel the true examined
        total is ``edges_traversed + edges_pulled``.
    edges_pulled:
        Arcs examined bottom-up (pull) by the direction-optimizing
        kernel — real memory traffic, inside TEPS.  Zero for push-only
        kernels.
    direction_switches:
        Push↔pull direction flips taken by the direction-optimizing
        kernel — heuristic bookkeeping, *outside* TEPS.
    """

    sources: np.ndarray
    dist: np.ndarray
    sigma: np.ndarray
    level_arcs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
    edges_traversed: int = 0
    edges_pulled: int = 0
    direction_switches: int = 0

    @property
    def batch(self) -> int:
        """Number of sources in the batch."""
        return self.dist.shape[0]

    @property
    def depth(self) -> int:
        """Maximum eccentricity across the batch's sources."""
        return int(self.dist.max(initial=0))

    def reached(self) -> np.ndarray:
        """``(B, n)`` mask of vertices reachable from each source."""
        return self.dist >= 0


def bfs_sigma_batched(
    graph: CSRGraph,
    sources,
    *,
    keep_level_arcs: bool = False,
    workspace: Optional[BatchWorkspace] = None,
    kernel: Optional[str] = None,
) -> BatchedBFSResult:
    """Forward BFS with σ counting for a whole batch of sources.

    One level step gathers the out-arcs of every ``(row, vertex)``
    frontier pair at once and scatters σ contributions through the
    flattened ``(B, n)`` index space, amortising the per-level kernel
    launches across the batch.  Rows are fully independent: a row whose
    BFS has terminated simply contributes no frontier pairs.

    With ``workspace`` the ``dist``/``sigma`` matrices are views into
    the workspace's reusable buffers (re-initialised here exactly as
    fresh allocations would be); the returned result then only stays
    valid until the workspace's next use.

    ``kernel`` selects the forward traversal: ``None`` or ``"arcs"``
    (and ``"spmm"``/``"numba"``, whose forward phase is this push
    step) run the top-down body below with *no* environment lookup —
    this is the low-level primitive; ``"pull"`` delegates to the
    direction-optimizing
    :func:`repro.graph.kernels.pull.bfs_sigma_batched_pull`, and
    ``"auto"`` resolves through the kernel registry for this graph and
    batch first.
    """
    if kernel is not None and kernel not in ("arcs", "spmm", "numba"):
        from repro.graph import kernels as _kernels

        if kernel == "auto":
            srcs = np.asarray(sources, dtype=np.int64).ravel()
            kernel = _kernels.select_kernel(graph, srcs.size)
        if kernel == "pull":
            from repro.graph.kernels.pull import bfs_sigma_batched_pull

            return bfs_sigma_batched_pull(
                graph,
                sources,
                keep_level_arcs=keep_level_arcs,
                workspace=workspace,
            )
        if kernel not in ("arcs", "spmm", "numba"):
            _kernels.get_kernel(kernel)  # raises with the known names
    n = graph.n
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    b = srcs.size
    if b == 0:
        raise AlgorithmError("batched BFS needs at least one source")
    # flattened (row, vertex) indices live in [0, b*n); the narrow
    # dtype keeps the per-level sort/gather traffic at half width
    fdtype = np.int32 if b * n <= np.iinfo(np.int32).max else np.int64
    if workspace is None:
        dist = np.full((b, n), -1, dtype=np.int32)
        sigma = np.zeros((b, n), dtype=SCORE_DTYPE)
    else:
        dist_buf, sigma_buf, _ = workspace.arrays(b, n)
        dist_buf.fill(-1)
        sigma_buf.fill(0.0)
        dist = dist_buf.reshape(b, n)
        sigma = sigma_buf.reshape(b, n)
    dist_flat = dist.reshape(-1)
    sigma_flat = sigma.reshape(-1)
    rows0 = np.arange(b, dtype=np.int64)
    # sorted ascending (one pair per row) — and every later frontier is
    # a np.unique output, so the sortedness invariant holds throughout
    frontier = (rows0 * n + srcs).astype(fdtype)
    dist_flat[frontier] = 0
    sigma_flat[frontier] = 1.0
    level_arcs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = (
        [] if keep_level_arcs else None
    )
    indptr, indices = graph.out_indptr, graph.out_indices
    # hoisted per-call: CSR metadata in the narrow dtype (arc positions
    # index `indices`, so they fit whenever m does) and a reusable
    # iota buffer so the hot loop never re-materialises an arange
    m = indices.size
    pdtype = np.int64 if m > np.iinfo(np.int32).max else np.int32
    indptr_n = indptr.astype(pdtype, copy=False)
    deg = (indptr[1:] - indptr[:-1]).astype(pdtype, copy=False)
    iota = np.arange(min(m, 1024) or 1, dtype=pdtype)
    edges = 0
    level = 0
    while frontier.size:
        # shared CSR gather over the union frontier (cf. expand_frontier)
        verts = frontier % n
        starts = indptr_n[verts]
        counts = deg[verts]
        total = int(counts.sum(dtype=np.int64))
        edges += total
        if total > np.iinfo(pdtype).max:  # pragma: no cover - huge level
            pdtype = np.int64
            indptr_n = indptr.astype(np.int64, copy=False)
            deg = deg.astype(np.int64)
            iota = np.arange(total, dtype=np.int64)
            starts = indptr_n[verts]
            counts = deg[verts]
        if total == 0:
            empty = np.empty(0, dtype=fdtype)
            if level_arcs is not None:
                level_arcs.append((empty, empty))
            break
        if total > iota.size:
            iota = np.arange(total, dtype=pdtype)
        # arc positions: per-pair run starts shifted into one iota span
        cum = np.cumsum(counts)
        pos = iota[:total] + np.repeat(starts - cum + counts, counts)
        dst = indices[pos]
        flat_src = np.repeat(frontier, counts)
        flat_dst = np.repeat(frontier - verts, counts) + dst
        # an arc is a tree arc iff its head is undiscovered before this
        # level (a head at dist == level+1 can only have got there now)
        dmask = dist_flat[flat_dst] < 0
        t_src = flat_src[dmask]
        t_dst = flat_dst[dmask]
        if t_dst.size:
            nxt, inv = np.unique(t_dst, return_inverse=True)
            dist_flat[nxt] = level + 1
            # fresh vertices carry sigma == 0, so the per-bin ordered
            # sum equals the serial np.add.at bit for bit
            sigma_flat[nxt] = np.bincount(
                inv, weights=sigma_flat[t_src], minlength=nxt.size
            )
        else:
            nxt = np.empty(0, dtype=fdtype)
        if level_arcs is not None:
            level_arcs.append((t_src, t_dst))
        if nxt.size == 0:
            break
        frontier = nxt
        level += 1
    return BatchedBFSResult(
        sources=srcs,
        dist=dist,
        sigma=sigma,
        level_arcs=level_arcs,
        edges_traversed=edges,
    )


def arc_segments(flat_src: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Segment a level's (sorted) arc tails into per-vertex runs.

    Level arcs recorded by :func:`bfs_sigma_batched` are ordered by
    flattened tail index (the frontier is sorted and CSR expansion
    preserves it), so each tail's arcs form one contiguous run.
    Returns ``(unique_tails, run_start_offsets)`` — the inputs
    ``np.add.reduceat`` needs to replace a ``np.add.at`` scatter with
    one ordered segmented sum (same additions, same order, ~10x less
    per-element overhead).
    """
    seg = np.empty(flat_src.size, dtype=bool)
    seg[0] = True
    np.not_equal(flat_src[1:], flat_src[:-1], out=seg[1:])
    starts = np.flatnonzero(seg)
    return flat_src[starts], starts


def accumulate_dependencies_batched(
    res: BatchedBFSResult,
    *,
    counter=None,
    workspace: Optional[BatchWorkspace] = None,
) -> np.ndarray:
    """Batched backward phase: δ_s(v) for every source in the batch.

    Replays the recorded DAG arcs deepest level first (the ``"arcs"``
    accumulation strategy), with one gather/segmented-sum per level for
    the whole batch.  Returns a ``(B, n)`` dependency matrix whose row
    ``i`` equals the serial ``accumulate_dependencies(..., mode="arcs")``
    for ``sources[i]``; the examined-edge tally matches it too.

    ``workspace`` reuses the workspace's delta buffer (zeroed here);
    pass the same workspace the forward phase used — the delta buffer
    is distinct from its ``dist``/``sigma`` buffers.
    """
    if res.level_arcs is None:
        raise AlgorithmError(
            "batched dependency accumulation needs keep_level_arcs=True"
        )
    if workspace is None:
        delta_flat = np.zeros(res.dist.size, dtype=SCORE_DTYPE)
    else:
        b, n = res.dist.shape
        delta_flat = workspace.arrays(b, n)[2]
        delta_flat.fill(0.0)
    sigma_flat = res.sigma.reshape(-1)
    for flat_src, flat_dst in reversed(res.level_arcs):
        if counter is not None:
            counter.add(flat_src.size)
        if flat_src.size == 0:
            continue
        coef = sigma_flat[flat_src] / sigma_flat[flat_dst]
        tails, runs = arc_segments(flat_src)
        # a vertex only receives contributions at its own level, so
        # delta[tails] is still zero here and the segmented sum equals
        # the serial np.add.at accumulation bit for bit
        delta_flat[tails] = np.add.reduceat(
            coef * (1.0 + delta_flat[flat_dst]), runs
        )
    return delta_flat.reshape(res.dist.shape)


def spmm_available() -> bool:
    """True when scipy's C sparse-matmul backend is importable."""
    return _spmm_tools is not None


_I32_MAX = np.iinfo(np.int32).max


class _SpmmOperands:
    """CSR matmul operands (A, Aᵀ, degrees) shared across chunks.

    ``scipy.sparse._sparsetools.csr_matmat`` dispatches on one index
    dtype for every operand, so the arrays are materialised once per
    BC run in the narrowest dtype the worst-case level expansion
    (``B * m`` candidate arcs) allows.  For undirected graphs the
    stored arc set is symmetric and the backward operand aliases the
    forward one.
    """

    __slots__ = ("idx", "fwd", "bwd", "deg_fwd", "deg_bwd", "_ones_c")

    def __init__(self, graph: CSRGraph, idx=np.int32):
        self.idx = np.dtype(idx)
        ones = np.ones(graph.num_arcs, dtype=SCORE_DTYPE)
        self.fwd = (
            graph.out_indptr.astype(self.idx, copy=False),
            graph.out_indices.astype(self.idx, copy=False),
            ones,
        )
        self.deg_fwd = np.diff(graph.out_indptr).astype(np.int64)
        if graph.directed:
            self.bwd = (
                graph.in_indptr.astype(self.idx, copy=False),
                graph.in_indices.astype(self.idx, copy=False),
                ones,
            )
            self.deg_bwd = np.diff(graph.in_indptr).astype(np.int64)
        else:
            self.bwd = self.fwd
            self.deg_bwd = self.deg_fwd
        self._ones_c: Optional[np.ndarray] = None

    def fwd_complex(self):
        """Forward operand with complex data (for counted runs)."""
        if self._ones_c is None:
            self._ones_c = np.ones(self.fwd[2].size, dtype=np.complex128)
        return self.fwd[0], self.fwd[1], self._ones_c


def _spmm_operands_for(graph: CSRGraph, batch: int) -> "_SpmmOperands":
    """Operands wide enough for ``batch``-row level expansions."""
    wide = batch * max(int(graph.num_arcs), 1) > _I32_MAX
    return _SpmmOperands(graph, np.int64 if wide else np.int32)


def spmm_contributions(
    graph: CSRGraph,
    sources,
    *,
    counter=None,
    operands: Optional["_SpmmOperands"] = None,
    workspace: Optional[BatchWorkspace] = None,
) -> np.ndarray:
    """Summed BC contributions of one batch via sparse matmuls.

    Each forward level is one CSR product ``F · A`` where row ``i`` of
    ``F`` holds σ over row ``i``'s frontier: the C kernel expands,
    deduplicates and σ-sums every candidate arc in a single call, and
    the output is pre-sized by the frontier degree sum (exactly the
    serial examined-edge tally, so no sizing pass is needed).  Fresh
    vertices are those still undiscovered in ``dist``; their per-row
    survivor counts (a cumsum of the mask sampled at the row bounds)
    become the next frontier's indptr without any sort.  The backward
    sweep mirrors it: one ``W · Aᵀ`` product per level with
    ``W = (1 + δ)/σ`` over the deeper frontier, masked to the vertices
    one level up — δ lands in the same level order as the serial
    ``"arcs"`` replay, differing only in summation association, so
    scores match within float64 tolerance.

    With ``counter`` the matmul runs on complex data whose imaginary
    part carries per-arc multiplicities: summing it over fresh
    candidates recovers the shortest-path-DAG arc count, making the
    tally (forward examinations + DAG replays) *identical* to the
    serial per-source path at the cost of one wider product.
    """
    if _spmm_tools is None:
        raise AlgorithmError(
            "the SpMM batched kernel needs scipy; use kernel='arcs'"
        )
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    b = srcs.size
    if b == 0:
        raise AlgorithmError("batched BFS needs at least one source")
    n = graph.n
    ops = operands
    if ops is None or (
        ops.idx == np.int32 and b * max(graph.num_arcs, 1) > _I32_MAX
    ):
        ops = _spmm_operands_for(graph, b)
    idx = ops.idx
    counted = counter is not None
    fdtype = np.int32 if b * n <= _I32_MAX else np.int64
    if workspace is None:
        dist = np.full(b * n, -1, dtype=np.int32)
        sigma = np.zeros(b * n, dtype=SCORE_DTYPE)
        delta_buf: Optional[np.ndarray] = None
    else:
        dist, sigma, delta_buf = workspace.arrays(b, n)
        dist.fill(-1)
        sigma.fill(0.0)
    rows = np.arange(b, dtype=np.int64)
    # flattened row bases pre-multiplied once: candidate indices then
    # need a single add per arc instead of a multiply-add
    rowbase = (rows * n).astype(fdtype)
    flat = (rows * n + srcs).astype(fdtype)
    dist[flat] = 0
    sigma[flat] = 1.0
    cols = srcs.astype(idx)
    fp = np.arange(b + 1, dtype=idx)
    if counted:
        ap, aj, ax = ops.fwd_complex()
        vals: np.ndarray = np.full(b, 1.0 + 1.0j, dtype=np.complex128)
    else:
        ap, aj, ax = ops.fwd
        vals = np.ones(b, dtype=SCORE_DTYPE)
    levels = [(flat, cols, fp, vals)]
    edges = 0
    dag_arcs = 0
    level = 0
    while True:
        bound = int(ops.deg_fwd[cols].sum(dtype=np.int64))
        edges += bound
        if bound == 0:
            break
        cp = np.empty(b + 1, dtype=idx)
        cj = np.empty(bound, dtype=idx)
        cx = np.empty(bound, dtype=vals.dtype)
        _spmm_tools.csr_matmat(b, n, fp, cols, vals, ap, aj, ax, cp, cj, cx)
        nnz = int(cp[b])
        cand = np.repeat(rowbase, np.diff(cp))
        cand += cj[:nnz]
        fresh = dist[cand] < 0
        flat = cand[fresh]
        if flat.size == 0:
            break
        cols = cj[:nnz][fresh]
        vals = cx[:nnz][fresh]
        # next frontier indptr: per-row survivor counts via one cumsum
        # sampled at the candidate row bounds (empty rows collapse)
        cum = np.empty(nnz + 1, dtype=idx)
        cum[0] = 0
        np.cumsum(fresh, dtype=idx, out=cum[1:])
        fp = cum[cp]
        level += 1
        dist[flat] = level
        if counted:
            sig = np.ascontiguousarray(vals.real)
            dag_arcs += int(round(vals.imag.sum()))
            sigma[flat] = sig
            vals = sig + 1.0j
        else:
            sigma[flat] = vals
        levels.append((flat, cols, fp, vals))
    if counted:
        counter.add(edges)
        counter.add(dag_arcs)
    # backward: one (B, n) · Aᵀ product per level, deepest first
    if delta_buf is None:
        delta = np.zeros(b * n, dtype=SCORE_DTYPE)
    else:
        delta_buf.fill(0.0)
        delta = delta_buf
    bp, bj, bx = ops.bwd
    for lvl in range(len(levels) - 1, 0, -1):
        flat, cols, fp, vals = levels[lvl]
        sig = np.ascontiguousarray(vals.real) if counted else vals
        w = (1.0 + delta[flat]) / sig
        bound = int(ops.deg_bwd[cols].sum(dtype=np.int64))
        if bound == 0:
            continue
        cp = np.empty(b + 1, dtype=idx)
        cj = np.empty(bound, dtype=idx)
        cx = np.empty(bound, dtype=SCORE_DTYPE)
        _spmm_tools.csr_matmat(b, n, fp, cols, w, bp, bj, bx, cp, cj, cx)
        nnz = int(cp[b])
        cand = np.repeat(rowbase, np.diff(cp))
        cand += cj[:nnz]
        up = dist[cand] == lvl - 1
        tgt = cand[up]
        # a vertex collects its whole δ at its own level (candidates
        # one level up are unique per row), so this is an assignment
        delta[tgt] = sigma[tgt] * cx[:nnz][up]
    delta2 = delta.reshape(b, n)
    delta2[rows, srcs] = 0.0
    return delta2.sum(axis=0)


def arcs_contributions(
    graph: CSRGraph,
    sources,
    *,
    counter=None,
    workspace: Optional[BatchWorkspace] = None,
    context=None,
) -> np.ndarray:
    """Summed BC contributions of one batch via the ``"arcs"`` kernel.

    Pure-numpy push BFS + recorded-DAG backward replay; per-row bit
    -identical to the serial per-source path, tally included.
    ``context`` is accepted for kernel-signature uniformity (the arcs
    kernel needs no prepared operands).
    """
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    res = bfs_sigma_batched(
        graph, srcs, keep_level_arcs=True, workspace=workspace
    )
    if counter is not None:
        counter.add(res.edges_traversed)
    delta = accumulate_dependencies_batched(
        res, counter=counter, workspace=workspace
    )
    delta[np.arange(srcs.size), srcs] = 0.0
    return delta.sum(axis=0)


def batched_contributions(
    graph: CSRGraph,
    sources,
    *,
    counter=None,
    kernel: Optional[str] = None,
    workspace: Optional[BatchWorkspace] = None,
) -> np.ndarray:
    """Summed BC contributions of one batch of sources.

    Forward + backward batched kernels, source self-dependencies
    zeroed, rows summed — the batched equivalent of accumulating
    ``per_source_delta(graph, s, mode="arcs")`` over the batch.

    ``kernel`` names any registered compute kernel
    (:mod:`repro.graph.kernels`): ``"arcs"``, ``"spmm"``, ``"pull"``,
    ``"numba"``, or ``"auto"`` to select from the graph's structure;
    ``None`` resolves through the registry too (``REPRO_KERNEL``,
    then the availability default).  Every kernel produces the exact
    examined-edge tally.  The returned ``(n,)`` sum never aliases
    ``workspace``.
    """
    from repro.graph import kernels as _kernels

    srcs = np.asarray(sources, dtype=np.int64).ravel()
    name = _kernels.resolve_kernel_name(
        kernel, graph=graph, batch=srcs.size
    )
    kern = _kernels.get_kernel(name)
    return kern.contributions(
        graph, srcs, counter=counter, workspace=workspace, context=None
    )


def batched_bc_scores(
    graph: CSRGraph,
    sources,
    *,
    batch: int,
    counter=None,
    kernel: Optional[str] = None,
    workspace: Optional[BatchWorkspace] = None,
) -> np.ndarray:
    """BC contribution sum over ``sources``, ``batch`` roots at a time.

    The chunk loop behind ``run_per_source(..., batch_size=...)``:
    resolves ``kernel`` through :mod:`repro.graph.kernels` once, then
    shares the kernel's prepared context (SpMM operands, compiled
    numba function, ...) and one reusable :class:`BatchWorkspace`
    across all chunks so per-chunk setup and state allocation are
    amortised over the whole run.
    """
    from repro.graph import kernels as _kernels

    src_arr = np.asarray(list(sources), dtype=np.int64).ravel()
    bc = np.zeros(graph.n, dtype=SCORE_DTYPE)
    if src_arr.size == 0:
        return bc
    name = _kernels.resolve_kernel_name(
        kernel, graph=graph, batch=min(batch, src_arr.size)
    )
    kern = _kernels.get_kernel(name)
    ctx = (
        kern.prepare(graph, min(batch, src_arr.size))
        if kern.prepare is not None
        else None
    )
    if workspace is None:
        workspace = BatchWorkspace()
    for lo in range(0, src_arr.size, batch):
        bc += kern.contributions(
            graph,
            src_arr[lo : lo + batch],
            counter=counter,
            workspace=workspace,
            context=ctx,
        )
    return bc
