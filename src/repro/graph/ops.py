"""Whole-graph operations: components, reversal, subgraph extraction.

All operations are vectorised frontier sweeps over the CSR arrays —
there are no per-edge Python loops (see the HPC guide's "vectorizing
for loops" rule).
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "degrees",
    "reverse_graph",
    "to_undirected",
    "connected_components",
    "component_sizes",
    "largest_component",
    "reachable_from",
    "induced_subgraph",
    "edge_subgraph",
    "relabel_sorted",
]


def degrees(graph: CSRGraph) -> np.ndarray:
    """Total degree per vertex.

    For directed graphs this is ``in + out``; for undirected graphs it
    is the plain degree (each incident edge counted once).
    """
    if graph.directed:
        return graph.out_degrees() + graph.in_degrees()
    return graph.out_degrees()


def reverse_graph(graph: CSRGraph) -> CSRGraph:
    """The graph with every arc flipped (identity for undirected)."""
    if not graph.directed:
        return graph
    return CSRGraph(
        graph.n,
        graph.in_indptr,
        graph.in_indices,
        graph.out_indptr,
        graph.out_indices,
        directed=True,
    )


#: id(graph) -> undirected shadow, evicted by a weakref finalizer when
#: the source graph is collected.  CSRGraph is immutable, so the shadow
#: can never go stale; keying by id is safe because the finalizer
#: removes the entry before the id can be reused.
_UNDIRECTED_CACHE: Dict[int, CSRGraph] = {}


def to_undirected(graph: CSRGraph) -> CSRGraph:
    """The undirected shadow of ``graph`` (identity when undirected).

    This is ``GETUNDG`` from the paper's Algorithm 1: articulation
    points and biconnected components are always computed on the
    undirected shadow, even for directed inputs.  The shadow is
    memoized per graph instance — ``kcore``, ``ordering``,
    ``partition`` and ``articulation`` all call this on the same
    object within one ``apgre_bc`` run, and only the first call pays
    for the symmetrised rebuild.
    """
    if not graph.directed:
        return graph
    key = id(graph)
    cached = _UNDIRECTED_CACHE.get(key)
    if cached is not None:
        return cached
    src, dst = graph.arcs()
    shadow = CSRGraph.from_arcs(graph.n, src, dst, directed=False)
    _UNDIRECTED_CACHE[key] = shadow
    weakref.finalize(graph, _UNDIRECTED_CACHE.pop, key, None)
    return shadow


def _frontier_expand(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """All out-neighbours of the frontier vertices, with duplicates."""
    starts = graph.out_indptr[frontier]
    counts = graph.out_indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    # Gather the concatenated adjacency slices without a Python loop:
    # offsets[i] enumerates 0..counts-1 within each slice.
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return graph.out_indices[np.repeat(starts, counts) + offsets]


def connected_components(graph: CSRGraph) -> Tuple[np.ndarray, int]:
    """Undirected connected components (weak components for directed).

    Returns
    -------
    labels:
        int32 array mapping each vertex to a component id in
        ``[0, num_components)``; ids are assigned in order of the
        smallest vertex in each component.
    num_components:
        Number of components.
    """
    und = to_undirected(graph)
    labels = np.full(graph.n, -1, dtype=VERTEX_DTYPE)
    comp = 0
    for start in range(graph.n):
        if labels[start] >= 0:
            continue
        labels[start] = comp
        frontier = np.asarray([start], dtype=VERTEX_DTYPE)
        while frontier.size:
            nxt = _frontier_expand(und, frontier)
            nxt = nxt[labels[nxt] < 0]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            labels[nxt] = comp
            frontier = nxt
        comp += 1
    return labels, comp


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of the undirected components, largest first."""
    labels, k = connected_components(graph)
    sizes = np.bincount(labels, minlength=k)
    return np.sort(sizes)[::-1]


def largest_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """The induced subgraph on the largest undirected component.

    Returns the subgraph and the original vertex ids of its vertices
    (``new id i`` corresponds to ``old id vertices[i]``).
    """
    labels, k = connected_components(graph)
    if k == 0:
        return graph, np.empty(0, dtype=VERTEX_DTYPE)
    sizes = np.bincount(labels, minlength=k)
    keep = np.flatnonzero(labels == int(np.argmax(sizes))).astype(VERTEX_DTYPE)
    return induced_subgraph(graph, keep), keep


def reachable_from(
    graph: CSRGraph, source: int, blocked: Optional[np.ndarray] = None
) -> np.ndarray:
    """Boolean mask of vertices reachable from ``source``.

    ``blocked`` is an optional boolean mask of vertices the traversal
    may not enter (the source itself is always visited). This is the
    primitive behind the paper's α counting — "the number of vertices
    which a can reach without passing through SGi".
    """
    seen = np.zeros(graph.n, dtype=bool)
    seen[source] = True
    if blocked is not None:
        seen = seen | blocked  # blocked vertices pretend to be visited
        seen[source] = True
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    while frontier.size:
        nxt = _frontier_expand(graph, frontier)
        nxt = nxt[~seen[nxt]]
        if nxt.size == 0:
            break
        nxt = np.unique(nxt)
        seen[nxt] = True
        frontier = nxt
    if blocked is not None:
        seen &= ~blocked
        seen[source] = True
    return seen


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> CSRGraph:
    """The subgraph induced by ``vertices`` with relabeled ids.

    New vertex ``i`` corresponds to ``vertices[i]`` (the input order is
    preserved; ids must be unique).
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    remap = np.full(graph.n, -1, dtype=VERTEX_DTYPE)
    remap[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)
    src, dst = graph.arcs()
    keep = (remap[src] >= 0) & (remap[dst] >= 0)
    if not graph.directed:
        keep &= src <= dst  # avoid doubling: from_arcs re-symmetrises
    return CSRGraph.from_arcs(
        vertices.size,
        remap[src[keep]],
        remap[dst[keep]],
        directed=graph.directed,
    )


def edge_subgraph(
    graph: CSRGraph,
    vertices: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> CSRGraph:
    """A subgraph with an explicit vertex set and an explicit arc list.

    Unlike :func:`induced_subgraph` the arcs are supplied by the caller
    (in *global* ids); this is what the partitioner needs because a
    sub-graph must contain exactly the edges of its biconnected
    components — two articulation points of the same sub-graph may be
    joined by an edge that belongs to a *different* sub-graph, which an
    induced extraction would wrongly capture.

    For undirected graphs pass each edge once (either orientation).
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    remap = np.full(graph.n, -1, dtype=VERTEX_DTYPE)
    remap[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)
    return CSRGraph.from_arcs(
        vertices.size, remap[src], remap[dst], directed=graph.directed
    )


def relabel_sorted(vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort a vertex id array and return ``(sorted, inverse_positions)``.

    ``inverse_positions[i]`` is the index of ``vertices[i]`` in the
    sorted output; handy when a caller needs a canonical vertex order
    but wants to translate results back.
    """
    order = np.argsort(vertices, kind="stable")
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.size)
    return np.asarray(vertices)[order], inverse
