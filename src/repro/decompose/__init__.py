"""Graph decomposition by articulation points.

Implements steps 1 and 2 of APGRE (paper §3/§4):

* :mod:`repro.decompose.articulation` — iterative Hopcroft–Tarjan
  articulation points + biconnected components (the paper's
  ``FINDBCC``);
* :mod:`repro.decompose.bcc_tree` — the block-cut tree ("any connected
  graph decomposes into a tree of biconnected components", §3.1);
* :mod:`repro.decompose.partition` — the paper's Algorithm 1
  (``GraphPartition``): small-BCC merging around the top BCC, sub-graph
  construction, root sets R and pendant multiplicities γ;
* :mod:`repro.decompose.alphabeta` — α/β counting per articulation
  point via blocked (reverse) BFS, with a block-cut-tree fast path for
  undirected graphs.
"""

from repro.decompose.articulation import (
    BCCResult,
    articulation_points,
    biconnected_components,
    bridges,
)
from repro.decompose.bcc_tree import BlockCutTree, build_block_cut_tree
from repro.decompose.partition import (
    Partition,
    Subgraph,
    graph_partition,
)
from repro.decompose.alphabeta import compute_alpha_beta

__all__ = [
    "BCCResult",
    "articulation_points",
    "bridges",
    "biconnected_components",
    "BlockCutTree",
    "build_block_cut_tree",
    "Partition",
    "Subgraph",
    "graph_partition",
    "compute_alpha_beta",
]
