"""Vertex relabeling for traversal locality (paper related-work [24]).

Cong & Makarychev "perform prefetching and appropriate re-layout of
the graph nodes to improve locality" (paper §6). In the CSR world the
re-layout half of that idea is a vertex permutation: placing vertices
that are traversed together next to each other makes the gather/scatter
kernels stride smaller index ranges, which the ordering ablation
benchmark measures on this host.

Three standard orderings are provided:

* :func:`bfs_order` — Cuthill–McKee-style breadth-first placement
  (neighbours of placed vertices come next);
* :func:`degree_order` — hubs first (helps power-law graphs where the
  frontier is dominated by high-degree rows);
* :func:`random_order` — the control for the ablation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_undirected
from repro.graph.traversal import expand_frontier
from repro.types import Seed, VERTEX_DTYPE, as_rng

__all__ = ["bfs_order", "degree_order", "random_order", "apply_ordering"]


def bfs_order(graph: CSRGraph) -> np.ndarray:
    """BFS (Cuthill–McKee-like) placement: ``order[i]`` = old id of
    the vertex placed at new position ``i``.

    Components are laid out one after another, each explored
    breadth-first from its minimum-degree vertex (the classic CM seed
    choice, shrinking bandwidth).
    """
    und = to_undirected(graph)
    n = graph.n
    deg = und.out_degrees()
    placed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=VERTEX_DTYPE)
    pos = 0
    # seeds: vertices sorted by (degree, id) so min-degree roots first
    seeds = np.lexsort((np.arange(n), deg))
    for seed in seeds.tolist():
        if placed[seed]:
            continue
        placed[seed] = True
        order[pos] = seed
        pos += 1
        frontier = np.asarray([seed], dtype=VERTEX_DTYPE)
        while frontier.size:
            dst, _src = expand_frontier(
                und.out_indptr, und.out_indices, frontier
            )
            fresh = np.unique(dst[~placed[dst]])
            if fresh.size == 0:
                break
            # CM refinement: place lower-degree neighbours first
            fresh = fresh[np.argsort(deg[fresh], kind="stable")]
            placed[fresh] = True
            order[pos : pos + fresh.size] = fresh
            pos += fresh.size
            frontier = fresh
    return order


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Descending-degree placement (hubs get the smallest new ids)."""
    from repro.graph.ops import degrees

    return np.argsort(-degrees(graph), kind="stable").astype(VERTEX_DTYPE)


def random_order(graph: CSRGraph, *, seed: Seed = None) -> np.ndarray:
    """A uniformly random permutation (the ablation control)."""
    rng = as_rng(seed)
    return rng.permutation(graph.n).astype(VERTEX_DTYPE)


def apply_ordering(
    graph: CSRGraph, order: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Relabel a graph by a placement order.

    Parameters
    ----------
    graph:
        Any graph.
    order:
        ``order[i]`` = old id of the vertex placed at new id ``i``
        (as returned by the ordering functions). Must be a
        permutation of ``0..n-1``.

    Returns
    -------
    relabeled, new_of_old:
        The relabeled graph and the inverse map: scores computed on
        the relabeled graph translate back with
        ``scores_old = scores_new[new_of_old]``.
    """
    order = np.asarray(order)
    n = graph.n
    if order.shape != (n,) or not np.array_equal(
        np.sort(order), np.arange(n)
    ):
        raise GraphValidationError(
            "order must be a permutation of 0..n-1"
        )
    new_of_old = np.empty(n, dtype=VERTEX_DTYPE)
    new_of_old[order] = np.arange(n, dtype=VERTEX_DTYPE)
    src, dst = graph.arcs()
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
    relabeled = CSRGraph.from_arcs(
        n, new_of_old[src], new_of_old[dst], directed=graph.directed
    )
    return relabeled, new_of_old
