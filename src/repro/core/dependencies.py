"""The four-dependency backward kernel (paper equations 3–6).

Given one source's shortest-path DAG inside a sub-graph, accumulate
simultaneously, level by level from the deepest:

* ``δ_i2i`` (eq. 3) — classic Brandes dependency restricted to the
  sub-graph: ``δ(v) = Σ_w (σv/σw)(1 + δ(w))``;
* ``δ_i2o`` (eq. 4) — paths ending beyond a boundary articulation
  point ``a``: initialised to ``α(a)`` at every articulation point
  (≠ s) and propagated *without* the ``1 +`` term;
* ``δ_o2o`` (eq. 6) — only when the source is itself a boundary
  articulation point: initialised to ``β(s)·α(a)`` and propagated like
  ``δ_i2o``;
* ``δ_o2i`` (eq. 5) needs no sweep of its own — it equals
  ``β(s)·δ_i2i`` and is folded in at score-merge time (Algorithm 2's
  ``sizeO2I``).

All three sweeps share the same DAG arcs, so the kernel fuses them:
one gather of ``σ_src/σ_dst`` per level feeds three scatter-adds.
Within a level step no arc depends on another (arcs only cross level
boundaries), which is exactly why the paper can run the level as a
parallel-for and we can run it as vectorised numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.errors import AlgorithmError
from repro.graph.traversal import BFSResult
from repro.types import SCORE_DTYPE

__all__ = ["FourDependencies", "accumulate_four_dependencies"]


@dataclass
class FourDependencies:
    """Per-vertex dependency arrays for one source (local ids)."""

    source: int
    source_is_art: bool
    delta_i2i: np.ndarray
    delta_i2o: np.ndarray
    delta_o2o: np.ndarray
    size_o2i: float  # β(s) when the source is a boundary art, else 0


def accumulate_four_dependencies(
    res: BFSResult,
    *,
    alpha: np.ndarray,
    beta: np.ndarray,
    is_art: np.ndarray,
    counter: Optional[WorkCounter] = None,
) -> FourDependencies:
    """Run the fused backward sweep for one source.

    Parameters
    ----------
    res:
        Forward BFS result with ``level_arcs`` kept (the DAG arcs).
    alpha, beta:
        ``α_SGi``/``β_SGi`` per local vertex (zero off the boundary).
    is_art:
        Boundary-articulation mask (the paper's ``A_sgi``).
    counter:
        Optional examined-edge tally.

    Notes
    -----
    Unreachable articulation points keep their ``α`` initialisation in
    ``delta_i2o``; callers must only merge *reached* vertices into BC
    scores (Algorithm 2 only iterates ``Levels[]`` buckets).
    """
    if res.level_arcs is None:
        raise AlgorithmError(
            "four-dependency kernel needs keep_level_arcs=True"
        )
    n = res.dist.size
    s = res.source
    sigma = res.sigma
    s_is_art = bool(is_art[s])

    delta_i2i = np.zeros(n, dtype=SCORE_DTYPE)
    delta_i2o = np.zeros(n, dtype=SCORE_DTYPE)
    delta_o2o = np.zeros(n, dtype=SCORE_DTYPE)

    # Phase 0 (Algorithm 2 lines 10-18): dependency initialisation
    arts = np.flatnonzero(is_art)
    delta_i2o[arts] = alpha[arts]
    size_o2i = 0.0
    if s_is_art:
        size_o2i = float(beta[s])
        delta_o2o[arts] = size_o2i * alpha[arts]
        delta_o2o[s] = 0.0
    delta_i2o[s] = 0.0  # "for all i ∈ A_sgi && i != s"

    # Phase 2 (lines 35-49): fused backward sweep, deepest level first
    for d in range(res.depth - 1, -1, -1):
        src, dst = res.level_arcs[d]
        if counter is not None:
            counter.add(src.size)
        if src.size == 0:
            continue
        coef = sigma[src] / sigma[dst]
        np.add.at(delta_i2i, src, coef * (1.0 + delta_i2i[dst]))
        np.add.at(delta_i2o, src, coef * delta_i2o[dst])
        if s_is_art:
            np.add.at(delta_o2o, src, coef * delta_o2o[dst])

    return FourDependencies(
        source=s,
        source_is_art=s_is_art,
        delta_i2i=delta_i2i,
        delta_i2o=delta_i2o,
        delta_o2o=delta_o2o,
        size_o2i=size_o2i,
    )
