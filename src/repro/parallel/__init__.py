"""Parallel execution substrate.

The paper's two-level parallelism maps onto Python as follows
(DESIGN.md §5): fine-grained level-synchronous parallelism is numpy
vectorisation (:mod:`repro.graph.traversal`), coarse-grained
parallelism across sub-graphs/sources is a fork-based process pool
(:mod:`repro.parallel.pool`) — processes, not threads, because the
GIL serialises the per-level driver code. Sub-graph tasks are ordered
by LPT (:mod:`repro.parallel.scheduler`) so the dominant top sub-graph
starts first.

Production dispatch goes through the *supervised* layer
(:mod:`repro.parallel.supervisor`): per-task timeouts, worker-crash
detection, bounded retry with backoff and graceful serial degradation,
with every failure path exercised deterministically by the
fault-injection harness (:mod:`repro.parallel.faults`); see
docs/ROBUSTNESS.md.
"""

from repro.parallel.backends import (
    BACKEND_ENV_VAR,
    ExecutionBackend,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.parallel.batched_pool import batched_pool_bc_scores, tree_reduce
from repro.parallel.pool import fork_map, map_sources_bc, thread_map
from repro.parallel.threaded import threaded_bc_scores, threaded_contributions
from repro.parallel.scheduler import assign_lpt, lpt_order
from repro.parallel.sharedmem import SharedArray
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    TaskOutcome,
    call_with_timeout,
    supervised_map,
)
from repro.parallel.faults import (
    FaultPlan,
    FaultSpec,
    clear_faults,
    injected_faults,
    install_faults,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "threaded_bc_scores",
    "threaded_contributions",
    "batched_pool_bc_scores",
    "tree_reduce",
    "fork_map",
    "map_sources_bc",
    "thread_map",
    "assign_lpt",
    "lpt_order",
    "SharedArray",
    "SupervisorConfig",
    "RunHealth",
    "TaskOutcome",
    "supervised_map",
    "call_with_timeout",
    "FaultSpec",
    "FaultPlan",
    "install_faults",
    "clear_faults",
    "injected_faults",
]
