"""Graph and partition statistics (paper Tables 1 and 4).

Table 1 lists each evaluation graph's size and directedness; Table 4
reports, per graph, the number of sub-graphs and the sizes of the
three largest (with the top sub-graph's share of vertices and edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.decompose.partition import Partition
from repro.graph.csr import CSRGraph
from repro.graph.ops import degrees

__all__ = [
    "GraphStats",
    "SubgraphRow",
    "PartitionStats",
    "bcc_size_histogram",
    "graph_stats",
    "partition_stats",
]


def bcc_size_histogram(graph: CSRGraph):
    """Power-of-two histogram of biconnected-component vertex sizes.

    Returns ``[(lo, hi, count), ...]`` over occupied buckets
    ``[2^k, 2^{k+1})``, largest-size bucket last.  This is the view
    that motivates sharding (docs/SHARDING.md): a lone BCC in the top
    bucket holding most of the graph is exactly the dominant critical
    path ``shard=True`` splits.
    """
    from repro.decompose.articulation import biconnected_components
    from repro.graph.ops import to_undirected

    und = to_undirected(graph) if graph.directed else graph
    result = biconnected_components(und)
    sizes = np.array(
        [v.size for v in result.component_vertices], dtype=np.int64
    )
    buckets = []
    if sizes.size == 0:
        return buckets
    lo = 1
    top = int(sizes.max())
    while lo <= top:
        hi = 2 * lo - 1
        count = int(((sizes >= lo) & (sizes <= hi)).sum())
        if count:
            buckets.append((lo, hi, count))
        lo *= 2
    return buckets


@dataclass
class GraphStats:
    """Structural summary of one graph (Table-1 row + APGRE knobs)."""

    name: str
    num_vertices: int
    num_arcs: int
    directed: bool
    num_articulation_points: int
    num_pendants: int  # degree-1 (und.) / source-pendant (dir.) vertices
    max_degree: int
    mean_degree: float

    @property
    def pendant_fraction(self) -> float:
        return self.num_pendants / self.num_vertices if self.num_vertices else 0.0


def graph_stats(graph: CSRGraph, *, name: str = "") -> GraphStats:
    """Compute a :class:`GraphStats` (runs one BCC decomposition)."""
    from repro.decompose.articulation import articulation_points

    deg = degrees(graph)
    if graph.directed:
        pend = int(
            ((graph.in_degrees() == 0) & (graph.out_degrees() == 1)).sum()
        )
    else:
        pend = int((deg == 1).sum())
    return GraphStats(
        name=name,
        num_vertices=graph.n,
        num_arcs=graph.num_arcs,
        directed=graph.directed,
        num_articulation_points=int(articulation_points(graph).size),
        num_pendants=pend,
        max_degree=int(deg.max()) if graph.n else 0,
        mean_degree=float(deg.mean()) if graph.n else 0.0,
    )


@dataclass
class SubgraphRow:
    """One sub-graph's size row (Table 4 columns)."""

    num_vertices: int
    num_arcs: int
    vertex_fraction: float  # V / G.V
    arc_fraction: float  # E / G.E


@dataclass
class PartitionStats:
    """Table-4 row for one graph."""

    name: str
    num_subgraphs: int
    rows: List[SubgraphRow]  # largest-first; at least top/2nd/3rd

    @property
    def top(self) -> SubgraphRow:
        return self.rows[0]


def partition_stats(
    partition: Partition, *, name: str = "", keep: int = 3
) -> PartitionStats:
    """Summarise a partition as the paper's Table 4 does.

    ``keep`` limits how many largest sub-graphs are materialised as
    rows (the paper shows three).
    """
    g = partition.graph
    n = max(g.n, 1)
    m = max(g.num_arcs, 1)
    ordered = sorted(
        partition.subgraphs, key=lambda s: (-s.num_arcs, -s.num_vertices)
    )
    rows = [
        SubgraphRow(
            num_vertices=sg.num_vertices,
            num_arcs=sg.num_arcs,
            vertex_fraction=sg.num_vertices / n,
            arc_fraction=sg.num_arcs / m,
        )
        for sg in ordered[:keep]
    ]
    while len(rows) < keep:  # tiny graphs may have < keep sub-graphs
        rows.append(SubgraphRow(0, 0, 0.0, 0.0))
    return PartitionStats(
        name=name, num_subgraphs=partition.num_subgraphs, rows=rows
    )
