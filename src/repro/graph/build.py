"""High-level :class:`~repro.graph.csr.CSRGraph` builders.

These are the public constructors; they normalise heterogeneous inputs
(edge tuples, adjacency dicts, networkx graphs) into the arc arrays
consumed by :meth:`CSRGraph.from_arcs`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = ["from_edges", "from_adjacency", "from_networkx", "empty_graph"]


def from_edges(
    edges: Iterable[Tuple[int, int]],
    *,
    directed: bool = False,
    n: Optional[int] = None,
    dedupe: bool = True,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    edges:
        Edge endpoints. Any iterable of int pairs, or an ``(m, 2)``
        array.
    directed:
        Whether pairs are one-way arcs.
    n:
        Vertex count. Defaults to ``max endpoint + 1`` so isolated
        trailing vertices must be declared explicitly.
    dedupe:
        Collapse duplicate edges (recommended; see
        :meth:`CSRGraph.from_arcs`).
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphValidationError(
            f"edges must be (m, 2)-shaped, got shape {arr.shape}"
        )
    if n is None:
        n = int(arr.max()) + 1 if arr.size else 0
    return CSRGraph.from_arcs(
        n, arr[:, 0], arr[:, 1], directed=directed, dedupe=dedupe
    )


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]],
    *,
    directed: bool = False,
    n: Optional[int] = None,
) -> CSRGraph:
    """Build a graph from a ``{vertex: neighbours}`` mapping.

    Vertices that appear only as targets need no key of their own.
    """
    src_list = []
    dst_list = []
    for u, nbrs in adjacency.items():
        for v in nbrs:
            src_list.append(int(u))
            dst_list.append(int(v))
    if n is None:
        peak = -1
        if src_list:
            peak = max(max(src_list), max(dst_list))
        if adjacency:
            peak = max(peak, max(int(k) for k in adjacency))
        n = peak + 1
    return CSRGraph.from_arcs(n, src_list, dst_list, directed=directed)


def from_networkx(nxg, *, n: Optional[int] = None) -> CSRGraph:
    """Convert a networkx (Di)Graph with integer node labels.

    The direction of the result follows ``nxg.is_directed()``. Nodes
    must already be integers in ``[0, n)``; use
    ``networkx.convert_node_labels_to_integers`` first otherwise.
    """
    directed = bool(nxg.is_directed())
    edges = list(nxg.edges())
    for node in nxg.nodes():
        if not isinstance(node, (int, np.integer)):
            raise GraphValidationError(
                f"networkx node labels must be ints, saw {node!r}"
            )
    if n is None:
        n = (max(nxg.nodes()) + 1) if nxg.number_of_nodes() else 0
    if edges:
        arr = np.asarray(edges, dtype=np.int64)
        return CSRGraph.from_arcs(n, arr[:, 0], arr[:, 1], directed=directed)
    return empty_graph(n, directed=directed)


def empty_graph(n: int, *, directed: bool = False) -> CSRGraph:
    """An ``n``-vertex graph with no edges."""
    z = np.zeros(0, dtype=np.int64)
    return CSRGraph.from_arcs(n, z, z, directed=directed)
