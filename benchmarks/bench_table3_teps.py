"""Table 3 — search rate (MTEPS) of every algorithm on every graph.

A pure view over Table 2's memoised timings (TEPS_BC = n·m/t), so this
file costs almost nothing when run after bench_table2_time.py and
regenerates the full measurement otherwise.
"""

from repro.bench.experiments import TABLE_ALGOS, table3

from conftest import one_shot


def test_report_table3(benchmark, report):
    result = one_shot(benchmark, table3)
    assert result.headers == ["Graph"] + TABLE_ALGOS
    # APGRE's MTEPS beats serial on (essentially) every graph — the
    # paper's headline. Timings are single-shot, so tolerate one
    # noise-flipped cell out of twelve; the mean ratio must still
    # clearly exceed 1.
    wins = sum(1 for row in result.rows if row[2] > row[1])
    assert wins >= len(result.rows) - 1, (
        f"APGRE beat serial on only {wins}/{len(result.rows)} graphs"
    )
    ratios = [row[2] / row[1] for row in result.rows]
    assert sum(ratios) / len(ratios) > 1.2
    report(result)
