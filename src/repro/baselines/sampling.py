"""Source-sampled approximate BC.

The paper's §5.2 compares its exact rates against "a *sampling*
approach of BC [which] is the highest published performance for GPU"
(McLaughlin & Bader, SC'14). Sampling estimates BC from ``k`` random
pivot sources (Bader et al. WAW'07 / Brandes & Pich 2007):

    BC^(v) = (n / k) · Σ_{s ∈ pivots} δ_s(v)

which is an unbiased estimator of the exact score. This implementation
lets the benchmark harness regenerate the exact-vs-sampling comparison
and gives downstream users a cheap estimator for paper-scale graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["sampling_bc"]


def sampling_bc(
    graph: CSRGraph,
    k: int,
    *,
    seed: Seed = None,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Approximate BC from ``k`` sampled pivot sources.

    Pivots are drawn without replacement; ``k >= n`` degrades to the
    exact algorithm (with scaling factor 1).
    """
    if k <= 0:
        raise AlgorithmError(f"sample count must be positive, got {k}")
    rng = as_rng(seed)
    n = graph.n
    if n == 0:
        return np.zeros(0)
    k = min(k, n)
    pivots = rng.choice(n, size=k, replace=False)
    bc = run_per_source(graph, sources=pivots.tolist(), counter=counter)
    return bc * (n / k)
