"""Tests for the BCC-scoped contribution cache (repro.cache).

The acceptance guards of the caching PR live here: a warm store
replays every contribution (zero edges traversed, replay tally equal
to the cold traversal tally), a k <= 8-edge delta recomputes only the
dirty sub-graphs (asserted via the edge-tally identity), and the
incremental scores match a from-scratch run to 1e-9.
"""

import numpy as np
import pytest

import networkx as nx

from repro.baselines.brandes import brandes_bc
from repro.cache import (
    ContributionStore,
    DeltaResult,
    apgre_bc_delta,
    apply_edge_delta,
    graph_fingerprint,
    resolve_store,
    subgraph_key,
)
from repro.cache.incremental import parse_delta_file
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.decompose.partition import graph_partition
from repro.errors import (
    AlgorithmError,
    CacheError,
    GraphFormatError,
    GraphValidationError,
)
from repro.graph.build import from_edges, from_networkx


@pytest.fixture
def bridged_graph():
    """A dominant K7 and a K5 joined by a 3-path (plus one isolate).

    The K7 outweighs everything else, so the top sub-graph never flips
    under small deltas — which keeps sub-graph deltas *local* (see
    ``test_localized_delta_recomputes_only_dirty``).
    """
    g = nx.complete_graph(7)
    g.update(
        nx.relabel_nodes(nx.complete_graph(5), {i: 10 + i for i in range(5)})
    )
    g.add_edges_from([(6, 7), (7, 8), (8, 10)])
    return from_networkx(g, n=15)


@pytest.fixture
def random_graph():
    return from_networkx(nx.gnm_random_graph(48, 110, seed=9), n=48)


class TestFingerprint:
    def test_graph_fingerprint_deterministic(self, bridged_graph):
        assert graph_fingerprint(bridged_graph) == graph_fingerprint(
            bridged_graph
        )

    def test_graph_fingerprint_distinguishes_structure(self):
        a = from_edges([(0, 1), (1, 2)])
        b = from_edges([(0, 1), (0, 2)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_subgraph_keys_stable_and_distinct(self, bridged_graph):
        part = graph_partition(bridged_graph)
        keys = [subgraph_key(sg) for sg in part.subgraphs]
        keys_again = [
            subgraph_key(sg) for sg in graph_partition(bridged_graph).subgraphs
        ]
        assert keys == keys_again
        assert len(set(keys)) >= 2  # cliques and bridges do not collide

    def test_identical_local_structure_shares_key(self):
        # two disjoint copies of the same clique produce sub-graphs
        # with identical local structure — global vertex ids must not
        # leak into the key, so they share one cache entry
        g = nx.disjoint_union(nx.complete_graph(4), nx.complete_graph(4))
        part = graph_partition(from_networkx(g, n=8))
        keys = sorted(subgraph_key(sg) for sg in part.subgraphs)
        assert keys[0] == keys[-1]

    def test_pendant_flag_changes_key(self, bridged_graph):
        sg = graph_partition(bridged_graph).subgraphs[0]
        assert subgraph_key(sg, eliminate_pendants=True) != subgraph_key(
            sg, eliminate_pendants=False
        )


class TestContributionStore:
    def test_put_get_roundtrip(self):
        store = ContributionStore()
        scores = np.array([1.0, 2.5, 0.0])
        store.put("k", scores, 42)
        entry = store.get("k")
        assert entry.edges == 42
        np.testing.assert_array_equal(entry.scores, scores)
        assert store.counters.hits == 1 and store.counters.puts == 1

    def test_entries_are_insulated_from_caller(self):
        store = ContributionStore()
        scores = np.ones(3)
        store.put("k", scores, 1)
        scores[0] = 99.0  # caller mutates after put
        entry = store.get("k")
        assert entry.scores[0] == 1.0
        assert not entry.scores.flags.writeable

    def test_miss_counted(self):
        store = ContributionStore()
        assert store.get("absent") is None
        assert store.counters.misses == 1

    def test_lru_eviction_by_entries(self):
        store = ContributionStore(max_entries=2)
        for i in range(3):
            store.put(f"k{i}", np.zeros(4), i)
        assert store.get("k0") is None  # oldest evicted
        assert store.get("k2") is not None
        assert store.counters.evictions == 1

    def test_get_refreshes_recency(self):
        store = ContributionStore(max_entries=2)
        store.put("a", np.zeros(2), 0)
        store.put("b", np.zeros(2), 0)
        store.get("a")  # refresh: b becomes LRU
        store.put("c", np.zeros(2), 0)
        assert store.get("b") is None
        assert store.get("a") is not None

    def test_disk_persistence_across_instances(self, tmp_path):
        d = str(tmp_path / "cache")
        first = ContributionStore(cache_dir=d)
        first.put("key", np.arange(5, dtype=np.float64), 17)
        second = ContributionStore(cache_dir=d)
        entry = second.get("key")
        assert entry is not None and entry.edges == 17
        assert second.counters.disk_hits == 1

    def test_corrupted_disk_entry_degrades_to_miss(self, tmp_path):
        d = tmp_path / "cache"
        store = ContributionStore(cache_dir=str(d))
        store.put("key", np.zeros(3), 5)
        fresh = ContributionStore(cache_dir=str(d))
        for p in d.glob("*.npz"):
            p.write_bytes(b"not a zipfile")
        assert fresh.get("key") is None
        assert fresh.counters.disk_errors == 1

    def test_resolve_store_semantics(self, tmp_path):
        assert resolve_store(False, None) is None
        assert resolve_store(None, None) is None
        store = ContributionStore()
        assert resolve_store(store, None) is store
        assert resolve_store(True, None) is not None
        d = str(tmp_path / "c")
        assert resolve_store(True, d) is resolve_store(True, d)  # global
        with pytest.raises(CacheError):
            resolve_store(store, d)  # explicit store vs conflicting dir


class TestConfigValidation:
    def test_bool_and_store_accepted(self):
        APGREConfig(cache=True)
        APGREConfig(cache=ContributionStore())

    def test_bad_cache_object_rejected(self):
        with pytest.raises(AlgorithmError, match="cache"):
            APGREConfig(cache="yes please")


class TestWarmReplay:
    """The tier-1 acceptance guard: warm runs replay, exactly."""

    @pytest.mark.parametrize(
        "parallel,workers",
        [("serial", 1), ("threads", 2), ("processes", 2)],
    )
    def test_warm_rerun_traverses_nothing(
        self, random_graph, parallel, workers
    ):
        store = ContributionStore()
        config = APGREConfig(
            parallel=parallel, workers=workers, cache=store
        )
        cold = apgre_bc_detailed(random_graph, config)
        warm = apgre_bc_detailed(random_graph, config)
        np.testing.assert_allclose(
            warm.scores, brandes_bc(random_graph), rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            warm.scores, cold.scores, rtol=1e-9, atol=1e-9
        )
        assert cold.stats.edges_traversed > 0
        assert cold.stats.edges_replayed == 0
        assert warm.stats.edges_traversed == 0
        assert warm.stats.edges_replayed == cold.stats.edges_traversed
        assert warm.stats.subgraphs_replayed == cold.stats.num_subgraphs

    def test_apgre_bc_cache_kwarg(self, bridged_graph):
        store = ContributionStore()
        first = apgre_bc(bridged_graph, cache=store)
        second = apgre_bc(bridged_graph, cache=store)
        np.testing.assert_allclose(second, first, rtol=1e-9, atol=1e-9)
        assert store.counters.hits > 0

    def test_directed_graph_cached(self):
        g = from_networkx(
            nx.gnm_random_graph(30, 80, seed=3, directed=True), n=30
        )
        store = ContributionStore()
        config = APGREConfig(cache=store)
        cold = apgre_bc_detailed(g, config)
        warm = apgre_bc_detailed(g, config)
        np.testing.assert_allclose(
            warm.scores, brandes_bc(g), rtol=1e-9, atol=1e-9
        )
        assert warm.stats.edges_traversed == 0
        assert warm.stats.edges_replayed == cold.stats.edges_traversed


class TestApplyEdgeDelta:
    def test_add_and_remove(self, bridged_graph):
        new = apply_edge_delta(
            bridged_graph, edges_added=[(0, 10)], edges_removed=[(7, 8)]
        )
        assert new.n == bridged_graph.n
        assert new.num_arcs == bridged_graph.num_arcs  # one in, one out

    def test_add_existing_is_idempotent(self, bridged_graph):
        new = apply_edge_delta(bridged_graph, edges_added=[(0, 1)])
        assert new.num_arcs == bridged_graph.num_arcs

    def test_remove_absent_raises(self, bridged_graph):
        with pytest.raises(GraphValidationError, match="absent edge"):
            apply_edge_delta(bridged_graph, edges_removed=[(0, 14)])

    def test_self_loop_rejected(self, bridged_graph):
        with pytest.raises(GraphValidationError, match="self loop"):
            apply_edge_delta(bridged_graph, edges_added=[(3, 3)])

    def test_out_of_range_rejected(self, bridged_graph):
        with pytest.raises(GraphValidationError, match="out of range"):
            apply_edge_delta(bridged_graph, edges_added=[(0, 99)])

    def test_undirected_orientation_canonical(self, bridged_graph):
        a = apply_edge_delta(bridged_graph, edges_added=[(0, 12)])
        b = apply_edge_delta(bridged_graph, edges_added=[(12, 0)])
        assert graph_fingerprint(a) == graph_fingerprint(b)


class TestIncrementalDelta:
    """k <= 8-edge deltas recompute only dirty BCCs, scores exact."""

    def test_delta_scores_match_from_scratch(self, random_graph):
        store = ContributionStore()
        config = APGREConfig(cache=store)
        apgre_bc_detailed(random_graph, config)  # warm the store
        rng = np.random.default_rng(2)
        u = np.repeat(
            np.arange(random_graph.n), np.diff(random_graph.out_indptr)
        )
        v = random_graph.out_indices
        pairs = np.stack([u[u < v], v[u < v]], axis=1)
        removed = pairs[rng.choice(len(pairs), 5, replace=False)]
        delta = apgre_bc_delta(
            random_graph, edges_removed=removed, cache=store, config=config
        )
        assert isinstance(delta, DeltaResult)
        np.testing.assert_allclose(
            delta.scores, brandes_bc(delta.graph), rtol=1e-9, atol=1e-9
        )

    def test_localized_delta_recomputes_only_dirty(self, bridged_graph):
        # removing two non-adjacent clique edges keeps that block
        # biconnected over the same vertex set, so every other
        # sub-graph's fingerprint stays untouched: the replay tallies
        # must show exactly the dirty sub-graph being recomputed
        store = ContributionStore()
        config = APGREConfig(cache=store)
        apgre_bc_detailed(bridged_graph, config)
        delta = apgre_bc_delta(
            bridged_graph, edges_removed=[(10, 12), (11, 13)],
            cache=store, config=config,
        )
        stats = delta.result.stats
        assert stats.subgraphs_recomputed >= 1
        assert stats.subgraphs_replayed >= 1
        assert (
            stats.subgraphs_recomputed + stats.subgraphs_replayed
            == stats.num_subgraphs
        )
        # tally identity against a from-scratch run on the new graph
        scratch = apgre_bc_detailed(
            delta.graph, APGREConfig(cache=ContributionStore())
        )
        assert (
            stats.edges_traversed + stats.edges_replayed
            == scratch.stats.edges_traversed
        )
        assert stats.edges_traversed < scratch.stats.edges_traversed
        np.testing.assert_allclose(
            delta.scores, scratch.scores, rtol=1e-9, atol=1e-9
        )

    def test_delta_without_cache_raises(self, bridged_graph):
        with pytest.raises(CacheError):
            apgre_bc_delta(bridged_graph, edges_added=[(0, 10)], cache=False)

    def test_delta_conflicting_stores_raise(self, bridged_graph):
        mine = ContributionStore()
        other = ContributionStore()
        config = APGREConfig(cache=other)
        with pytest.raises(CacheError):
            apgre_bc_delta(
                bridged_graph, edges_added=[(0, 10)],
                cache=mine, config=config,
            )

    def test_empty_delta_is_pure_replay(self, bridged_graph):
        store = ContributionStore()
        config = APGREConfig(cache=store)
        cold = apgre_bc_detailed(bridged_graph, config)
        delta = apgre_bc_delta(bridged_graph, cache=store, config=config)
        np.testing.assert_allclose(
            delta.scores, cold.scores, rtol=1e-9, atol=1e-9
        )
        assert delta.result.stats.edges_traversed == 0

    def test_two_sequential_deltas_match_one_combined(self, bridged_graph):
        # applying {e1} then {e2} must land on the same graph and the
        # same exact scores as applying {e1, e2} at once — the serving
        # daemon's streamed-delta path is the sequential side of this
        first, second = (0, 10), (5, 14)
        seq_store = ContributionStore()
        config = APGREConfig(cache=seq_store)
        apgre_bc_detailed(bridged_graph, config)
        step1 = apgre_bc_delta(
            bridged_graph, edges_added=[first],
            cache=seq_store, config=config,
        )
        step2 = apgre_bc_delta(
            step1.graph, edges_added=[second],
            cache=seq_store, config=config,
        )
        comb_store = ContributionStore()
        comb_config = APGREConfig(cache=comb_store)
        apgre_bc_detailed(bridged_graph, comb_config)
        combined = apgre_bc_delta(
            bridged_graph, edges_added=[first, second],
            cache=comb_store, config=comb_config,
        )
        assert graph_fingerprint(step2.graph) == graph_fingerprint(
            combined.graph
        )
        np.testing.assert_allclose(
            step2.scores, combined.scores, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            step2.scores, brandes_bc(step2.graph), rtol=1e-9, atol=1e-9
        )


class TestParseDeltaFile:
    def test_parse_ops_and_comments(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text(
            "# comment\n+ 0 3\nadd 4 5\n\n- 1 2\nremove 6 7\n"
        )
        added, removed = parse_delta_file(p)
        np.testing.assert_array_equal(added, [[0, 3], [4, 5]])
        np.testing.assert_array_equal(removed, [[1, 2], [6, 7]])

    def test_malformed_line_reports_position(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("+ 0 1\n* 2 3\n")
        with pytest.raises(GraphFormatError, match=r"d\.txt:2"):
            parse_delta_file(p)

    def test_non_integer_endpoint_rejected(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("+ 0 x\n")
        with pytest.raises(GraphFormatError, match=r"d\.txt:1"):
            parse_delta_file(p)

    def test_empty_file_is_empty_delta(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("")
        added, removed = parse_delta_file(p)
        assert added.shape == (0, 2) and removed.shape == (0, 2)
        assert added.dtype == np.int64 and removed.dtype == np.int64

    def test_comment_only_file_is_empty_delta(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("# nothing here\n   # indented comment\n\n")
        added, removed = parse_delta_file(p)
        assert added.shape == (0, 2) and removed.shape == (0, 2)

    def test_missing_trailing_newline_parses(self, tmp_path):
        p = tmp_path / "d.txt"
        p.write_text("+ 0 3\n- 1 2")  # no final newline
        added, removed = parse_delta_file(p)
        np.testing.assert_array_equal(added, [[0, 3]])
        np.testing.assert_array_equal(removed, [[1, 2]])

    def test_duplicate_edge_kept_verbatim(self, tmp_path):
        # the parser does not dedupe — apply_edge_delta's union does,
        # so a feed that repeats an add stays an idempotent no-op
        p = tmp_path / "d.txt"
        p.write_text("+ 0 3\n+ 0 3\n+ 3 0\n")
        added, removed = parse_delta_file(p)
        np.testing.assert_array_equal(added, [[0, 3], [0, 3], [3, 0]])
        assert removed.shape == (0, 2)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot read"):
            parse_delta_file(tmp_path / "absent.txt")

    def test_parse_delta_lines_shares_the_grammar(self):
        from repro.cache.incremental import parse_delta_lines

        added, removed = parse_delta_lines("+ 0 3\n- 1 2\n")
        np.testing.assert_array_equal(added, [[0, 3]])
        np.testing.assert_array_equal(removed, [[1, 2]])
        with pytest.raises(GraphFormatError, match=r"<wire>:2"):
            parse_delta_lines("+ 0 1\nbogus\n", name="<wire>")


class TestDiskWarmAcrossRuns:
    def test_cache_dir_survives_process_state(self, tmp_path, bridged_graph):
        d = str(tmp_path / "bc-cache")
        cold = apgre_bc_detailed(
            bridged_graph, APGREConfig(cache=ContributionStore(cache_dir=d))
        )
        # a brand-new store over the same directory replays everything
        warm = apgre_bc_detailed(
            bridged_graph, APGREConfig(cache=ContributionStore(cache_dir=d))
        )
        np.testing.assert_allclose(
            warm.scores, cold.scores, rtol=1e-9, atol=1e-9
        )
        assert warm.stats.edges_traversed == 0
        assert warm.stats.edges_replayed == cold.stats.edges_traversed
