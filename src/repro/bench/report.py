"""Plain-text rendering of experiment results.

The harness prints tables whose rows/columns mirror the paper's, so a
side-by-side comparison with the PDF is a diff, not a decoding
exercise. Figures (bar/line charts in the paper) are rendered as
numeric series plus ASCII bars.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = [
    "render_table",
    "render_bars",
    "render_lines",
    "render_environment",
    "format_value",
]


def format_value(value, *, width: int = 0) -> str:
    """Uniform cell formatting: floats to 4 significant digits,
    fractions already formatted upstream, ``None`` as the paper's
    '-' placeholder."""
    if value is None:
        text = "-"
    elif isinstance(value, float):
        if value == 0:
            text = "0"
        elif abs(value) >= 1000:
            text = f"{value:,.0f}"
        elif abs(value) >= 1:
            text = f"{value:.2f}"
        else:
            text = f"{value:.4f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    notes: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [
        [format_value(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    if notes:
        lines.append("")
        for note_line in notes.splitlines():
            lines.append(f"  note: {note_line}")
    return "\n".join(lines)


def render_environment(environment: Mapping) -> str:
    """One-line summary of a BENCH_*.json ``environment`` block.

    Surfaces the provenance that decides whether a speedup table is
    believable on the machine that produced it: core count, the active
    execution backend and worker count (when the run recorded them —
    additive schema-2 keys, absent in older files), and which backends
    the host could run at all.
    """
    parts: List[str] = []
    if environment.get("cpu_count") is not None:
        parts.append(f"cpus={environment['cpu_count']}")
    if environment.get("workers") is not None:
        parts.append(f"workers={environment['workers']}")
    if environment.get("backend") is not None:
        parts.append(f"backend={environment['backend']}")
    if environment.get("backend_default") is not None:
        parts.append(f"default={environment['backend_default']}")
    if environment.get("backends_available"):
        parts.append(
            "available=" + ",".join(environment["backends_available"])
        )
    for key in ("python", "numpy", "scipy"):
        if environment.get(key) is not None:
            parts.append(f"{key}={environment[key]}")
    return "environment: " + (" ".join(parts) if parts else "(unrecorded)")


def render_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (for figure-style results)."""
    vmax = max((abs(v) for v in values), default=0.0) or 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(abs(value) / vmax * width)), 0)
        lines.append(
            f"{label.ljust(label_w)} | {bar} {format_value(float(value))}{unit}"
        )
    return "\n".join(lines)


def render_lines(
    title: str,
    x_values: Sequence[float],
    series: "dict[str, Sequence[float]]",
    *,
    height: int = 12,
    width: int = 48,
) -> str:
    """ASCII line chart: one glyph per series over a shared x-axis.

    Used for the scaling figures (speedup vs worker count). Values are
    linearly binned onto a ``height × width`` character grid; each
    series draws with its own marker, collisions show the later series.
    """
    glyphs = "ox+*#@%&"
    all_vals = [v for vals in series.values() for v in vals if v is not None]
    if not all_vals or not x_values:
        return f"{title}\n(no data)"
    vmax = max(all_vals)
    vmin = min(0.0, min(all_vals))
    span = (vmax - vmin) or 1.0
    xmin, xmax = min(x_values), max(x_values)
    xspan = (xmax - xmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for x, v in zip(x_values, vals):
            if v is None:
                continue
            col = int(round((x - xmin) / xspan * (width - 1)))
            row = height - 1 - int(round((v - vmin) / span * (height - 1)))
            grid[row][col] = glyph
    lines = [title, "=" * len(title)]
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = format_value(float(vmax))
        elif r == height - 1:
            label = format_value(float(vmin))
        lines.append(f"{label:>8s} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        f"{'':9s} x: {format_value(float(xmin))} .. "
        f"{format_value(float(xmax))}"
    )
    for si, name in enumerate(series):
        lines.append(f"{'':9s} {glyphs[si % len(glyphs)]} = {name}")
    return "\n".join(lines)
