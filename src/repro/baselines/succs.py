"""Successor-scan level-synchronous BC (the paper's ``succs``).

Madduri et al. (IPDPS'09) replace stored predecessor lists with
on-the-fly successor scans: during the backward phase each vertex
re-examines its out-neighbours and keeps those one level deeper. This
"eliminates locks of the second phase" (each vertex *pulls* into its
own δ slot) at the price of re-traversing non-DAG edges — visible in
this package as a higher examined-edge count for the same result.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.graph.csr import CSRGraph

__all__ = ["succs_bc"]


def succs_bc(
    graph: CSRGraph,
    *,
    workers: int = 1,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC with successor scans (Madduri et al.)."""
    return run_per_source(
        graph, mode="succs", workers=workers, counter=counter
    )
