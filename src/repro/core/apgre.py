"""The APGRE driver (paper Figure 5).

Three steps:

1. decompose the graph by articulation points (Algorithm 1 —
   :func:`repro.decompose.partition.graph_partition`);
2. count ``α_SGi(a)``/``β_SGi(a)`` for every boundary articulation
   point (:func:`repro.decompose.alphabeta.compute_alpha_beta`);
3. compute each sub-graph's scores with the four-dependency kernel
   (:func:`repro.core.bc_subgraph.bc_subgraph`) and merge:
   ``BC(v) = Σ_SGi BC_SGi(v)`` (equation 8 — articulation points sum
   their per-sub-graph shares).

Step 3 carries the coarse-grained parallelism: sub-graphs are
independent ("coarse-grained asynchronous parallelism among
sub-graphs"), dispatched largest-first over a supervised fork-based
process pool (``parallel="processes"`` —
:func:`repro.parallel.supervisor.supervised_map`, with per-task
timeouts, crash detection, bounded retry and serial degradation) or a
thread pool (``parallel="threads"``).  A processes run attaches its
supervision report to ``BCResult.health``; the degradation ladder
bottoms out in full-serial APGRE and, past that, the plain Brandes
baseline (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.common import WorkCounter
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.core.result import APGREStats, BCResult, PhaseTimings
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import Partition, graph_partition
from repro.errors import ExecutionError, ReproError
from repro.graph.csr import CSRGraph
from repro.parallel.pool import get_worker_state, thread_map
from repro.parallel.scheduler import lpt_order
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    supervised_map,
)
from repro.types import SCORE_DTYPE

__all__ = ["apgre_bc", "apgre_bc_detailed"]


def _subgraph_task(task: Tuple[int, int, int]) -> Tuple[int, np.ndarray]:
    """Worker body: one (sub-graph, root-slice) chunk's local scores."""
    index, lo, hi = task
    state = get_worker_state()
    partition: Partition = state["partition"]
    eliminate: bool = state["eliminate_pendants"]
    sg = partition.subgraphs[index]
    if eliminate:
        all_roots = sg.roots
    else:
        all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
    return index, bc_subgraph(
        sg,
        eliminate_pendants=eliminate,
        roots=all_roots[lo:hi],
        batch_size=state.get("batch_size"),
        compress=state.get("compress", False),
    )


def _make_tasks(
    subgraphs,
    eliminate_pendants: bool,
    workers: int,
    batch_size=None,
) -> List[Tuple[int, int, int]]:
    """Split sub-graphs into (index, root_lo, root_hi) chunks.

    Large sub-graphs are cut into ~``2 × workers`` root slices so the
    dominant top sub-graph does not serialise the pool (the paper gets
    the same effect from its fine-grained level); small sub-graphs stay
    whole. Tasks are returned largest-estimated-work first (LPT).
    With an integer ``batch_size``, chunk boundaries are aligned to a
    multiple of it so workers run full batches (``"auto"`` resolves
    per sub-graph inside the worker and is left unaligned).
    """
    tasks: List[Tuple[int, int, int]] = []
    weights: List[float] = []
    total_roots = sum(
        (sg.roots.size if eliminate_pendants else sg.num_vertices)
        for sg in subgraphs
    )
    chunk_target = max(total_roots // max(2 * workers, 1), 1)
    if isinstance(batch_size, int) and batch_size > 1:
        chunk_target = max(
            (chunk_target + batch_size - 1) // batch_size * batch_size,
            batch_size,
        )
    for idx, sg in enumerate(subgraphs):
        n_roots = sg.roots.size if eliminate_pendants else sg.num_vertices
        if n_roots == 0:
            continue
        step = max(min(chunk_target, n_roots), 1)
        for lo in range(0, n_roots, step):
            hi = min(lo + step, n_roots)
            tasks.append((idx, lo, hi))
            weights.append((hi - lo) * max(sg.num_arcs, 1))
    order = lpt_order(weights)
    return [tasks[i] for i in order]


def apgre_bc_detailed(
    graph: CSRGraph,
    config: Optional[APGREConfig] = None,
    *,
    partition: Optional[Partition] = None,
) -> BCResult:
    """Run APGRE and return scores plus phase timings and counters.

    Parameters
    ----------
    graph:
        Directed or undirected, connected or not.
    config:
        Run options; defaults to :class:`APGREConfig()`.
    partition:
        A pre-computed partition (with α/β already filled) to reuse
        across runs — the scaling benchmarks pass this so worker-count
        sweeps time only the BC phase they vary.
    """
    config = config or APGREConfig()
    stats = APGREStats()
    timings = stats.timings
    counter = WorkCounter()

    if partition is None:
        t0 = time.perf_counter()
        partition = graph_partition(graph, threshold=config.threshold)
        timings.partition = time.perf_counter() - t0

        t0 = time.perf_counter()
        ab = compute_alpha_beta(
            graph, partition, method=config.alpha_beta_method
        )
        timings.alpha_beta = time.perf_counter() - t0
        stats.alpha_beta_pairs = ab.pairs
        stats.alpha_beta_method = ab.method

    subgraphs = partition.subgraphs
    stats.num_subgraphs = len(subgraphs)
    stats.num_articulation_points = int(partition.articulation_flags.sum())
    stats.num_boundary_arts = int(partition.boundary_art_flags.sum())
    if config.eliminate_pendants:
        stats.num_removed_pendants = sum(sg.removed.size for sg in subgraphs)
        stats.num_sources = sum(sg.roots.size for sg in subgraphs)
    else:
        stats.num_sources = sum(sg.num_vertices for sg in subgraphs)

    if config.compress:
        # Build (and memoize) every plan up front: fork-based workers
        # then inherit the finished plans instead of rebuilding them,
        # and the stats describe the run regardless of which execution
        # path the scores take.  These tallies quantify work *avoided*
        # and are never folded into edges_traversed/TEPS.
        from repro.compress import compression_plan

        plans = [
            compression_plan(sg, eliminate_pendants=config.eliminate_pendants)
            for sg in subgraphs
        ]
        stats.vertices_merged = sum(p.vertices_merged for p in plans)
        stats.chains_contracted = sum(p.chain_interiors for p in plans)
        stats.vertices_peeled = sum(p.vertices_peeled for p in plans)
        total_n = sum(p.n for p in plans)
        total_core = sum(p.n_core for p in plans)
        stats.compression_ratio = (
            total_n / total_core if total_core else 1.0
        )

    bc = np.zeros(graph.n, dtype=SCORE_DTYPE)
    health: Optional[RunHealth] = None

    store = None
    if config.cache is not None or config.cache_dir is not None:
        from repro.cache.store import resolve_store

        store = resolve_store(config.cache, config.cache_dir)
    if config.journal_dir is not None:
        t0 = time.perf_counter()
        health = _journaled_pass(
            graph, bc, partition, config, store, counter, stats
        )
        timings.rest_bc = time.perf_counter() - t0
    elif store is not None:
        t0 = time.perf_counter()
        health = _cached_pass(
            graph, bc, partition, config, store, counter, stats
        )
        timings.rest_bc = time.perf_counter() - t0
    elif (
        config.parallel == "serial" and config.backend is None
    ) or config.workers <= 1:
        _serial_pass(bc, subgraphs, config, counter, timings)
    else:
        t0 = time.perf_counter()
        tasks = _make_tasks(
            subgraphs,
            config.eliminate_pendants,
            config.workers,
            batch_size=config.batch_size,
        )
        state = {
            "partition": partition,
            "eliminate_pendants": config.eliminate_pendants,
            "batch_size": config.batch_size,
            "compress": config.compress,
        }
        if config.backend is not None:
            from repro.parallel.backends import resolve_backend

            health = RunHealth()
            _batched_pool_pass(
                graph, bc, tasks, subgraphs, config, counter, timings,
                health, contributions=resolve_backend(config.backend)
                .contributions,
            )
        elif config.parallel == "processes" and config.parallel_batched:
            health = RunHealth()
            _batched_pool_pass(
                graph, bc, tasks, subgraphs, config, counter, timings,
                health
            )
        elif config.parallel == "processes":
            health = RunHealth()
            results = _supervised_pass(
                graph, bc, tasks, subgraphs, state, config, counter,
                timings, health
            )
        else:  # threads
            from repro.parallel import pool as _pool

            _pool._install_state(state)
            try:
                results = thread_map(
                    _subgraph_task, tasks, workers=config.workers
                )
            finally:
                _pool._STATE.clear()
            for idx, local in results:
                bc[subgraphs[idx].vertices] += local
        timings.rest_bc = time.perf_counter() - t0

    stats.edges_traversed = counter.edges
    return BCResult(scores=bc, stats=stats, health=health)


def _serial_pass(
    bc: np.ndarray, subgraphs, config: APGREConfig, counter, timings
) -> None:
    """The serial BC phase (also the full-serial fallback rung)."""
    order = lpt_order([sg.num_arcs for sg in subgraphs])
    for idx in order:
        t0 = time.perf_counter()
        local = bc_subgraph(
            subgraphs[idx],
            eliminate_pendants=config.eliminate_pendants,
            counter=counter,
            batch_size=config.batch_size,
            compress=config.compress,
        )
        elapsed = time.perf_counter() - t0
        if idx == 0:
            timings.top_bc += elapsed
        else:
            timings.rest_bc += elapsed
        bc[subgraphs[idx].vertices] += local


def _supervised_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    tasks,
    subgraphs,
    state: dict,
    config: APGREConfig,
    counter,
    timings,
    health: RunHealth,
) -> list:
    """Process-parallel BC phase behind the full degradation ladder.

    Rungs: supervised pool (with its internal per-task retry and
    serial re-run rungs) → full-serial APGRE → plain Brandes.  The
    lower rungs only engage when ``config.fallback`` is set; otherwise
    the supervisor's :class:`~repro.errors.ExecutionError` propagates.
    """
    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )
    try:
        results = supervised_map(
            _subgraph_task,
            tasks,
            workers=config.workers,
            state=state,
            config=supervisor,
            health=health,
        )
    except ExecutionError:
        if not config.fallback:
            raise
        health.fallback_path = "serial"
        try:
            bc[:] = 0.0
            _serial_pass(bc, subgraphs, config, counter, timings)
            return []
        except ReproError:
            # last rung: the plain Brandes baseline needs nothing from
            # the decomposition machinery that just failed
            from repro.baselines.brandes import brandes_bc

            health.fallback_path = "brandes"
            bc[:] = brandes_bc(graph)
            return []
    for idx, local in results:
        bc[subgraphs[idx].vertices] += local
    return results


def _batched_pool_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    tasks,
    subgraphs,
    config: APGREConfig,
    counter,
    timings,
    health: RunHealth,
    contributions=None,
) -> None:
    """Batched-engine BC phase behind the degradation ladder.

    Same degradation ladder as :func:`_supervised_pass`, but root-slice
    tasks run on a batched execution engine — the persistent
    shared-memory process pool by default, or whatever engine
    ``contributions`` names (the ``backend=`` dispatch passes
    :attr:`~repro.parallel.backends.ExecutionBackend.contributions`
    here, e.g. the in-process worker threads of
    :mod:`repro.parallel.threaded`).  Either way workers accumulate
    batched deltas into score rows instead of pickling an ``(n,)``
    vector per task — and, unlike the pickling pool, the per-task edge
    tallies come back exactly, so ``stats.edges_traversed`` aggregates
    across workers just as a serial run would count it.
    """
    from repro.core.batched_subgraph import bc_subgraph_batched

    if contributions is None:
        from repro.parallel.batched_pool import _pooled_contributions

        contributions = _pooled_contributions

    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )

    def compute(task_id: int):
        idx, lo, hi = tasks[task_id]
        sg = subgraphs[idx]
        if config.eliminate_pendants:
            all_roots = sg.roots
        else:
            all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
        local_counter = WorkCounter()
        local = bc_subgraph_batched(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=local_counter,
            roots=all_roots[lo:hi],
            batch_size=config.batch_size or "auto",
            workers=config.workers,
            compress=config.compress,
        )
        return sg.vertices, local, local_counter.edges

    weights = [
        (hi - lo) * max(subgraphs[idx].num_arcs, 1)
        for idx, lo, hi in tasks
    ]
    try:
        total, edge_total, _ = contributions(
            compute,
            weights,
            n=graph.n,
            workers=config.workers,
            steal=config.steal,
            config=supervisor,
            health=health,
        )
    except ExecutionError:
        if not config.fallback:
            raise
        health.fallback_path = "serial"
        try:
            bc[:] = 0.0
            _serial_pass(bc, subgraphs, config, counter, timings)
            return
        except ReproError:
            from repro.baselines.brandes import brandes_bc

            health.fallback_path = "brandes"
            bc[:] = brandes_bc(graph)
            return
    bc += total
    counter.add(edge_total)


def _cached_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    partition: Partition,
    config: APGREConfig,
    store,
    counter,
    stats: APGREStats,
) -> Optional[RunHealth]:
    """Cache-aware BC phase: replay hits, recompute and store misses.

    Every sub-graph is keyed by its content fingerprint (local edges +
    incoming α/β/γ summaries — :mod:`repro.cache.fingerprint`).  Hits
    merge their stored local vectors and report their stored tallies
    as ``stats.edges_replayed``; misses are recomputed — fanned out
    over the execution backend named by ``config.backend`` when one is
    set, else the shared-memory batched pool for
    ``parallel="processes"``, a thread pool for ``"threads"``,
    serially otherwise — and their freshly computed vectors and
    *exact* tallies are stored.  Store writes happen only in the
    parent, after the pool's poisoned-row recovery (or the thread
    run's tree reduction), so a worker killed mid-recompute can never
    commit a poisoned cache entry.
    """
    from repro.cache.fingerprint import subgraph_key

    subgraphs = partition.subgraphs
    keys = [
        subgraph_key(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            compress=config.compress,
        )
        for sg in subgraphs
    ]
    misses: List[int] = []
    for sg, key in zip(subgraphs, keys):
        entry = store.get(key)
        if entry is not None and entry.scores.size == sg.num_vertices:
            bc[sg.vertices] += entry.scores
            stats.edges_replayed += entry.edges
            stats.subgraphs_replayed += 1
        else:
            misses.append(sg.index)
    stats.subgraphs_recomputed = len(misses)
    if not misses:
        return None

    def commit(index: int, local: np.ndarray, edges: int) -> None:
        store.put(keys[index], local, edges)

    return _ladder_recompute(
        graph, bc, subgraphs, misses, config, counter, stats, commit
    )


def _ladder_recompute(
    graph: CSRGraph,
    bc: np.ndarray,
    subgraphs,
    misses,
    config: APGREConfig,
    counter,
    stats: APGREStats,
    commit,
    health: Optional[RunHealth] = None,
) -> Optional[RunHealth]:
    """Recompute ``misses`` whole-sub-graph-at-a-time, behind the ladder.

    Shared by the cached and journaled passes: each completed
    sub-graph's full local vector and exact edge tally reach the
    ``commit(index, local, edges)`` callback *parent-side only* (for
    the engine paths, after the pool's poisoned-slot recovery or the
    thread run's tree reduction), which persists them to the store
    and/or the run journal — a worker thread never touches the store
    or the journal.  Rungs mirror :func:`_supervised_pass`: engine →
    serial → Brandes (the Brandes rung wipes the replay/resume
    bookkeeping, since the scores no longer decompose per sub-graph).
    """
    contributions = None
    if config.backend is not None and config.workers > 1:
        from repro.parallel.backends import resolve_backend

        contributions = resolve_backend(config.backend).contributions
    if contributions is not None or (
        config.parallel == "processes" and config.workers > 1
    ):
        if health is None:
            health = RunHealth()
        try:
            _pool_recompute(
                bc, subgraphs, misses, config, counter, health, commit,
                contributions=contributions,
            )
            return health
        except ExecutionError:
            if not config.fallback:
                raise
            health.fallback_path = "serial"
            try:
                _serial_recompute(
                    bc, subgraphs, misses, config, counter, commit
                )
            except ReproError:
                from repro.baselines.brandes import brandes_bc

                health.fallback_path = "brandes"
                bc[:] = brandes_bc(graph)
                # replay bookkeeping no longer describes the scores
                stats.edges_replayed = 0
                stats.subgraphs_replayed = 0
                stats.edges_resumed = 0
                stats.subgraphs_resumed = 0
            return health
    if config.parallel == "threads" and config.workers > 1:
        _thread_recompute(bc, subgraphs, misses, config, counter, commit)
        return health
    _serial_recompute(bc, subgraphs, misses, config, counter, commit)
    return health


def _serial_recompute(
    bc, subgraphs, misses, config: APGREConfig, counter, commit
) -> None:
    """Serial miss loop (also the cached/journaled fallback rung)."""
    for idx in lpt_order([subgraphs[i].num_arcs for i in misses]):
        sg = subgraphs[misses[idx]]
        tally = WorkCounter()
        local = bc_subgraph(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=tally,
            batch_size=config.batch_size,
            compress=config.compress,
        )
        commit(sg.index, local, tally.edges)
        bc[sg.vertices] += local
        counter.add(tally.edges)


def _thread_recompute(
    bc, subgraphs, misses, config: APGREConfig, counter, commit
) -> None:
    """Thread-pool miss recomputation (one whole sub-graph per task).

    Commits happen on the caller's thread as results stream back in
    completion order, so the store/journal writers never race.
    """
    order = lpt_order([subgraphs[i].num_arcs for i in misses])
    miss_order = [misses[i] for i in order]

    def run_one(index: int):
        sg = subgraphs[index]
        tally = WorkCounter()
        local = bc_subgraph(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=tally,
            batch_size=config.batch_size,
            compress=config.compress,
        )
        return index, local, tally.edges

    for index, local, edges in thread_map(
        run_one, miss_order, workers=config.workers
    ):
        sg = subgraphs[index]
        commit(index, local, edges)
        bc[sg.vertices] += local
        counter.add(edges)


def _pool_recompute(
    bc,
    subgraphs,
    misses,
    config: APGREConfig,
    counter,
    health: RunHealth,
    commit,
    contributions=None,
) -> None:
    """Fan cache misses out over a batched execution engine.

    Misses are chunked into root slices exactly like a cache-less
    ``parallel="processes"`` run (LPT order, ``workers``/``steal``
    compose unchanged), but the engine — the shared-memory pool by
    default, or the one ``contributions`` names (the ``backend=``
    dispatch) — accumulates into a *concatenated local coordinate
    space*: each miss sub-graph owns a contiguous slice of the score
    rows, so the parent gets every miss's complete local vector back
    and can commit it, which the global-sum layout of
    :func:`_batched_pool_pass` cannot provide.  Per-batch edge tallies
    come back exactly and are summed per sub-graph, so committed
    entries replay the same tally a serial run would count.
    """
    if contributions is None:
        from repro.parallel.batched_pool import _pooled_contributions

        contributions = _pooled_contributions

    miss_sgs = [subgraphs[i] for i in misses]
    offsets = np.zeros(len(miss_sgs) + 1, dtype=np.int64)
    np.cumsum([sg.num_vertices for sg in miss_sgs], out=offsets[1:])
    tasks = _make_tasks(
        miss_sgs,
        config.eliminate_pendants,
        config.workers,
        batch_size=config.batch_size,
    )

    def compute(task_id: int):
        mi, lo, hi = tasks[task_id]
        sg = miss_sgs[mi]
        if config.eliminate_pendants:
            all_roots = sg.roots
        else:
            all_roots = np.arange(sg.num_vertices, dtype=sg.roots.dtype)
        tally = WorkCounter()
        local = bc_subgraph(
            sg,
            eliminate_pendants=config.eliminate_pendants,
            counter=tally,
            roots=all_roots[lo:hi],
            batch_size=config.batch_size,
            compress=config.compress,
        )
        verts = np.arange(offsets[mi], offsets[mi] + sg.num_vertices)
        return verts, local, tally.edges

    weights = [
        (hi - lo) * max(miss_sgs[mi].num_arcs, 1) for mi, lo, hi in tasks
    ]
    supervisor = SupervisorConfig(
        timeout=config.timeout,
        max_retries=config.max_retries,
        fallback=config.fallback,
    )
    concat, edge_total, batch_edges = contributions(
        compute,
        weights,
        n=int(offsets[-1]),
        workers=config.workers,
        steal=config.steal,
        config=supervisor,
        health=health,
    )
    counter.add(edge_total)
    per_sg_edges = np.zeros(len(miss_sgs), dtype=np.int64)
    for task_id, (mi, _lo, _hi) in enumerate(tasks):
        per_sg_edges[mi] += batch_edges[task_id]
    for mi, sg in enumerate(miss_sgs):
        local = concat[offsets[mi] : offsets[mi + 1]]
        commit(sg.index, local, int(per_sg_edges[mi]))
        bc[sg.vertices] += local


def _journaled_pass(
    graph: CSRGraph,
    bc: np.ndarray,
    partition: Partition,
    config: APGREConfig,
    store,
    counter,
    stats: APGREStats,
) -> RunHealth:
    """Journal-aware BC phase: replay the journal, recompute the rest.

    Mirrors :func:`_cached_pass`, with the run journal
    (:mod:`repro.journal`) as the durability layer underneath:

    1. ``begin`` opens (or, with ``resume=True``, verifies and
       replays) the journal in ``config.journal_dir``; a fingerprint
       mismatch raises :class:`~repro.errors.JournalError` before any
       BC work starts.
    2. Journal-replayed sub-graphs merge their durable local vectors
       (``stats.subgraphs_resumed`` / ``edges_resumed``).
    3. With a cache configured, remaining sub-graphs consult the store
       next; hits are journaled too, so the resume contract never
       depends on cache warmth.
    4. The rest recompute through :func:`_ladder_recompute`; every
       completed contribution is committed to the journal (and store)
       parent-side, after the pool's poisoned-slot recovery.

    A :class:`KeyboardInterrupt` (SIGINT, or the CLI's SIGTERM
    translation) or an :class:`~repro.errors.ExecutionError` with
    ``fallback=False`` finalises the journal as a *resumable partial
    result* before re-raising — the error message names the journal
    directory so the operator knows ``--resume`` will pick the run
    back up.
    """
    from repro.journal import RunJournal, run_fingerprint

    subgraphs = partition.subgraphs
    journal = RunJournal(config.journal_dir)
    resumed = journal.begin(
        run_fingerprint(graph, config), resume=config.resume
    )
    health = RunHealth()
    health.journal_resumable = bool(resumed)

    todo: List[int] = []
    for sg in subgraphs:
        entry = resumed.get(sg.index)
        if entry is not None and entry.scores.size == sg.num_vertices:
            bc[sg.vertices] += entry.scores
            stats.edges_resumed += entry.edges
            stats.subgraphs_resumed += 1
        else:
            todo.append(sg.index)

    keys = None
    if store is not None:
        from repro.cache.fingerprint import subgraph_key

        keys = [
            subgraph_key(
                sg,
                eliminate_pendants=config.eliminate_pendants,
                compress=config.compress,
            )
            for sg in subgraphs
        ]
        misses: List[int] = []
        for index in todo:
            sg = subgraphs[index]
            entry = store.get(keys[index])
            if entry is not None and entry.scores.size == sg.num_vertices:
                bc[sg.vertices] += entry.scores
                stats.edges_replayed += entry.edges
                stats.subgraphs_replayed += 1
                journal.record_contribution(
                    index, entry.scores, entry.edges
                )
            else:
                misses.append(index)
        todo = misses
    stats.subgraphs_recomputed = len(todo)

    def commit(index: int, local: np.ndarray, edges: int) -> None:
        if store is not None:
            store.put(keys[index], local, edges)
        journal.record_contribution(index, local, edges)

    try:
        if todo:
            _ladder_recompute(
                graph, bc, subgraphs, todo, config, counter, stats,
                commit, health,
            )
    except KeyboardInterrupt:
        journal.finalize("interrupted")
        health.interrupted = True
        health.journal_records = journal.records_written
        health.journal_resumable = True
        raise
    except ExecutionError as exc:
        # fallback=False: surface the failure, but as a *resumable* one
        journal.finalize("partial")
        health.journal_records = journal.records_written
        health.journal_resumable = True
        durable = journal.records_written + stats.subgraphs_resumed
        raise type(exc)(
            f"{exc} [{durable} contribution(s) journaled in "
            f"{config.journal_dir}; rerun with resume=True / --resume "
            f"to continue from them]"
        ) from exc
    except BaseException:
        journal.finalize("partial")
        raise
    journal.finalize(
        "partial" if health.fallback_path == "brandes" else "complete"
    )
    health.journal_records = journal.records_written
    return health


def apgre_bc(
    graph: CSRGraph,
    *,
    threshold: Optional[int] = None,
    parallel: str = "serial",
    backend: Optional[str] = None,
    workers: int = 1,
    eliminate_pendants: bool = True,
    alpha_beta_method: str = "auto",
    timeout: Optional[float] = None,
    max_retries: int = 2,
    fallback: bool = True,
    batch_size=None,
    parallel_batched: bool = False,
    steal: bool = True,
    cache=None,
    cache_dir=None,
    compress: bool = False,
    journal_dir=None,
    resume: bool = False,
) -> np.ndarray:
    """Exact BC via APGRE — the convenience entry point.

    Equivalent to ``apgre_bc_detailed(graph, APGREConfig(...)).scores``;
    see :class:`repro.core.config.APGREConfig` for the options
    (``timeout``/``max_retries``/``fallback`` set the supervision
    policy of the parallel engines; ``batch_size`` routes each
    sub-graph's roots through the multi-source batched kernel;
    ``backend`` picks the batched execution engine —
    ``"threads"``/``"processes"``/``"serial"``/``"auto"``, see
    :mod:`repro.parallel.backends` and docs/PERFORMANCE.md;
    ``parallel_batched`` is the legacy spelling of
    ``backend="processes"`` on the persistent shared-memory pool,
    with ``steal`` toggling work stealing;
    ``cache``/``cache_dir`` enable the decomposition-aware
    contribution cache — see :mod:`repro.cache` and docs/CACHING.md;
    ``compress`` runs each sub-graph through the structural
    compression ladder first — see :mod:`repro.compress` and
    docs/COMPRESSION.md; ``journal_dir``/``resume`` enable the
    crash-safe run journal and checkpoint/resume — see
    :mod:`repro.journal` and docs/ROBUSTNESS.md).
    """
    kwargs = dict(
        parallel=parallel,
        backend=backend,
        workers=workers,
        eliminate_pendants=eliminate_pendants,
        alpha_beta_method=alpha_beta_method,
        timeout=timeout,
        max_retries=max_retries,
        fallback=fallback,
        batch_size=batch_size,
        parallel_batched=parallel_batched,
        steal=steal,
        cache=cache,
        cache_dir=cache_dir,
        compress=compress,
        journal_dir=journal_dir,
        resume=resume,
    )
    if threshold is not None:
        kwargs["threshold"] = threshold
    return apgre_bc_detailed(graph, APGREConfig(**kwargs)).scores
