"""The reduction ladder: pendant fold → twin merge → chain contract.

Runs the three structural reductions on one partition sub-graph until
no rule fires, producing the :class:`~repro.compress.plan.SubgraphPlan`
the compressed kernel executes.  Every rule is gated so the weighted
four-dependency algebra of :mod:`repro.compress.kernel` stays *exact*:

* **pendant fold** — exactly the partition's single-level ``removed``
  set (degree-1 non-articulation sources) folds into its parents via
  the shared :func:`repro.graph.kcore.two_core` peel, as endpoint
  mass ``pfold``.  Parents keep their γ, and the kernel's corrected
  self-term replaces the per-pendant targets the fold hides.
* **twin merge** — candidates must be non-articulation roots with
  ``γ = 0``, no folded pendants, and only unit incident edges (a
  super-edge neighbour would break the expanded-graph distance
  algebra for interior sweeps).  Classes are detected by randomized
  neighbourhood hashing and confirmed by exact neighbourhood
  comparison; type-I (open) and type-II (closed) classes never mix
  across rounds, because a mixed class has non-uniform intra-class
  distances and no closed-form within-class credit.
* **chain contract** — maximal paths of pristine (``w = μ = 1``)
  degree-2 vertices with unit incident edges collapse into one
  integer-length super-edge.  Cycles (``u == v``) and chains that
  would create a parallel edge are skipped: the CSR is simple, and a
  dropped parallel super-edge would silently lose its interiors'
  flow credit.

The ladder operates on a single-orientation ``(src, dst, length)``
arc list and rebuilds small CSR adjacencies per round; rounds repeat
until a full twin+chain pass eliminates nothing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compress.plan import (
    STATUS_CHAIN,
    STATUS_CORE,
    STATUS_PEELED,
    STATUS_TWIN,
    TWIN_CLOSED,
    TWIN_OPEN,
    Chain,
    SubgraphPlan,
    TwinClass,
)
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import INDPTR_DTYPE, VERTEX_DTYPE

__all__ = ["build_plan"]

#: fixed seed for the neighbourhood-hash weights — plans must be
#: deterministic (cache keys and fork-worker rebuilds depend on it)
_HASH_SEED = 0x5EEDC0DE


def _csr_with_lengths(
    n: int, asrc: np.ndarray, adst: np.ndarray, alen: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Build an undirected CSR plus a per-arc length array.

    ``CSRGraph.from_arcs`` re-sorts internally, which would break the
    arc↔length alignment, so this mirrors its lexsort directly: arcs
    are doubled into both orientations and sorted row-major, and the
    returned lengths follow the exact ``graph.arcs()`` order.
    """
    bsrc = np.concatenate([asrc, adst])
    bdst = np.concatenate([adst, asrc])
    blen = np.concatenate([alen, alen])
    order = np.lexsort((bdst, bsrc))
    indices = bdst[order].astype(VERTEX_DTYPE, copy=False)
    counts = np.bincount(bsrc, minlength=n).astype(INDPTR_DTYPE, copy=False)
    indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    graph = CSRGraph(n, indptr, indices, indptr, indices, directed=False)
    return graph, blen[order]


def _arc_index(graph: CSRGraph, u: int, v: int) -> int:
    """Position of arc ``u -> v`` in the CSR arc order."""
    lo, hi = int(graph.out_indptr[u]), int(graph.out_indptr[u + 1])
    row = graph.out_indices[lo:hi]
    pos = int(np.searchsorted(row, v))
    if pos >= row.size or row[pos] != v:  # pragma: no cover - invariant
        raise AlgorithmError(f"super-edge {u}->{v} missing from core CSR")
    return lo + pos


class _Ladder:
    """Mutable reduction state for one sub-graph."""

    def __init__(self, sg, eliminate_pendants: bool) -> None:
        g = sg.graph
        self.n = g.n
        self.status = np.zeros(self.n, dtype=np.int8)
        self.rep = np.arange(self.n, dtype=np.int64)
        self.mult = np.ones(self.n, dtype=np.int64)
        self.pfold = np.zeros(self.n, dtype=np.int64)
        self.kind_of = np.zeros(self.n, dtype=np.int8)
        src, dst = g.arcs()
        one_way = src < dst
        self.asrc = src[one_way].astype(np.int64)
        self.adst = dst[one_way].astype(np.int64)
        self.alen = np.ones(self.asrc.size, dtype=np.int64)
        self.chains: List[Tuple[int, int, np.ndarray]] = []
        gamma_pos = (
            sg.gamma > 0 if eliminate_pendants else np.zeros(self.n, bool)
        )
        self.protected = np.asarray(sg.is_boundary_art, bool) | gamma_pos
        rng = np.random.default_rng(_HASH_SEED)
        self.r1 = rng.integers(0, 2**63, size=self.n, dtype=np.uint64)
        self.r2 = rng.integers(0, 2**63, size=self.n, dtype=np.uint64)

    # ------------------------------------------------------------------
    # pendant fold
    # ------------------------------------------------------------------
    def fold_pendants(self, sg) -> None:
        """Fold the partition's ``removed`` pendants into their parents."""
        from repro.graph.kcore import two_core

        if sg.removed.size == 0:
            return
        eligible = np.zeros(self.n, dtype=bool)
        eligible[sg.removed] = True
        peel = two_core(sg.graph, eligible=eligible)
        peeled = peel.peel_order
        self.status[peeled] = STATUS_PEELED
        np.add.at(self.pfold, peel.peel_parent[peeled], 1)
        # parents now carry hidden endpoint mass; they must stay core
        self.protected |= self.pfold > 0
        gone = np.zeros(self.n, dtype=bool)
        gone[peeled] = True
        keep = ~gone[self.asrc] & ~gone[self.adst]
        self.asrc, self.adst = self.asrc[keep], self.adst[keep]
        self.alen = self.alen[keep]

    # ------------------------------------------------------------------
    # per-round adjacency
    # ------------------------------------------------------------------
    def _round_adjacency(self):
        graph, lengths = _csr_with_lengths(
            self.n, self.asrc, self.adst, self.alen
        )
        deg = np.diff(graph.out_indptr)
        nonunit = np.zeros(self.n, dtype=bool)
        heavy = self.alen > 1
        nonunit[self.asrc[heavy]] = True
        nonunit[self.adst[heavy]] = True
        return graph, deg, nonunit

    # ------------------------------------------------------------------
    # twin merging
    # ------------------------------------------------------------------
    def merge_twins(self) -> int:
        graph, deg, nonunit = self._round_adjacency()
        base = (
            (self.status == STATUS_CORE)
            & ~self.protected
            & (deg >= 1)
            & ~nonunit
            & (self.pfold == 0)
        )
        if not base.any():
            return 0
        s1 = np.zeros(self.n, dtype=np.uint64)
        s2 = np.zeros(self.n, dtype=np.uint64)
        np.add.at(s1, self.asrc, self.r1[self.adst])
        np.add.at(s1, self.adst, self.r1[self.asrc])
        np.add.at(s2, self.asrc, self.r2[self.adst])
        np.add.at(s2, self.adst, self.r2[self.asrc])

        merged_now = np.zeros(self.n, dtype=bool)
        eliminated = 0
        for kind in (TWIN_OPEN, TWIN_CLOSED):
            # classes never mix detection kinds: the within-class
            # credit needs uniform intra-class distances (2 for open,
            # 1 for closed), which a mixed merge would break
            ok_kind = (self.kind_of == 0) | (self.kind_of == kind)
            cand = np.flatnonzero(base & ok_kind & ~merged_now)
            if cand.size < 2:
                continue
            if kind == TWIN_OPEN:
                k1, k2 = s1[cand], s2[cand]
            else:
                k1 = s1[cand] + self.r1[cand]
                k2 = s2[cand] + self.r2[cand]
            order = np.lexsort((k2, k1, deg[cand]))
            cand = cand[order]
            k1, k2, dg = k1[order], k2[order], deg[cand]
            same = (
                (k1[1:] == k1[:-1])
                & (k2[1:] == k2[:-1])
                & (dg[1:] == dg[:-1])
            )
            bounds = np.flatnonzero(~same) + 1
            starts = np.concatenate([[0], bounds])
            ends = np.concatenate([bounds, [cand.size]])
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                if hi - lo < 2:
                    continue
                eliminated += self._merge_group(
                    graph, cand[lo:hi], kind, merged_now
                )
        if eliminated:
            self._remap_arcs()
        return eliminated

    def _neighborhood(self, graph: CSRGraph, v: int, kind: int) -> np.ndarray:
        row = graph.out_neighbors(v)
        if kind == TWIN_OPEN:
            return row
        return np.insert(row, np.searchsorted(row, v), v)

    def _merge_group(
        self, graph, group: np.ndarray, kind: int, merged_now: np.ndarray
    ) -> int:
        """Exact-verify one hash group and merge its true classes."""
        classes: List[List[int]] = []
        nbhds: List[np.ndarray] = []
        for v in group.tolist():
            nb = self._neighborhood(graph, v, kind)
            for ci, ref in enumerate(nbhds):
                if np.array_equal(nb, ref):
                    classes[ci].append(v)
                    break
            else:
                classes.append([v])
                nbhds.append(nb)
        eliminated = 0
        for cls in classes:
            if len(cls) < 2:
                continue
            members = np.asarray(cls, dtype=np.int64)
            rep = int(members.min())
            others = members[members != rep]
            self.rep[others] = rep
            self.status[others] = STATUS_TWIN
            self.mult[rep] += int(self.mult[others].sum())
            self.kind_of[rep] = kind
            merged_now[members] = True
            eliminated += others.size
        return eliminated

    def _remap_arcs(self) -> None:
        """Send merged members' arcs to their reps; dedupe."""
        mapping = np.arange(self.n, dtype=np.int64)
        twins = self.status == STATUS_TWIN
        mapping[twins] = self.rep[twins]
        src = mapping[self.asrc]
        dst = mapping[self.adst]
        keep = src != dst  # intra-class edges of type-II classes
        src, dst, lens = src[keep], dst[keep], self.alen[keep]
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        pair = lo * self.n + hi
        uniq, first, inv = np.unique(
            pair, return_index=True, return_inverse=True
        )
        if uniq.size != pair.size:
            # duplicates may only arise from parallel unit edges of
            # one class (members share neighbourhoods); a mixed-length
            # group would silently drop a super-edge's interiors
            gmin = np.full(uniq.size, np.iinfo(np.int64).max)
            gmax = np.zeros(uniq.size, dtype=np.int64)
            np.minimum.at(gmin, inv, lens)
            np.maximum.at(gmax, inv, lens)
            if not np.array_equal(gmin, gmax):  # pragma: no cover
                raise AlgorithmError("twin merge collapsed mixed-length arcs")
        self.asrc, self.adst = lo[first], hi[first]
        self.alen = lens[first]

    # ------------------------------------------------------------------
    # chain contraction
    # ------------------------------------------------------------------
    def contract_chains(self) -> int:
        graph, deg, nonunit = self._round_adjacency()
        cand = (
            (self.status == STATUS_CORE)
            & ~self.protected
            & (deg == 2)
            & (self.mult == 1)
            & (self.pfold == 0)
            & ~nonunit
        )
        if not cand.any():
            return 0
        edge_keys = set(
            (self.asrc * self.n + self.adst).tolist()
        )
        visited = np.zeros(self.n, dtype=bool)
        eliminated = 0
        new_src: List[int] = []
        new_dst: List[int] = []
        new_len: List[int] = []
        dead = np.zeros(self.n, dtype=bool)
        for c in np.flatnonzero(cand).tolist():
            if visited[c]:
                continue
            visited[c] = True
            nb = graph.out_neighbors(c)
            right, v_end = self._walk(graph, cand, c, int(nb[1]))
            if v_end == c:  # pure candidate cycle: nothing to anchor on
                visited[right] = True
                continue
            left, u_end = self._walk(graph, cand, c, int(nb[0]))
            interiors = np.asarray(
                left[::-1] + [c] + right, dtype=np.int64
            )
            visited[interiors] = True
            if u_end == v_end:  # attached cycle would self-loop
                continue
            lo = min(u_end, v_end)
            hi = max(u_end, v_end)
            key = lo * self.n + hi
            if key in edge_keys:  # parallel super-edge: CSR is simple
                continue
            edge_keys.add(key)
            if u_end != lo:
                interiors = interiors[::-1].copy()
            self.status[interiors] = STATUS_CHAIN
            dead[interiors] = True
            self.chains.append((lo, hi, interiors))
            new_src.append(lo)
            new_dst.append(hi)
            new_len.append(interiors.size + 1)
            eliminated += interiors.size
        if eliminated:
            keep = ~dead[self.asrc] & ~dead[self.adst]
            self.asrc = np.concatenate(
                [self.asrc[keep], np.asarray(new_src, dtype=np.int64)]
            )
            self.adst = np.concatenate(
                [self.adst[keep], np.asarray(new_dst, dtype=np.int64)]
            )
            self.alen = np.concatenate(
                [self.alen[keep], np.asarray(new_len, dtype=np.int64)]
            )
        return eliminated

    def _walk(self, graph, cand, origin: int, start: int):
        """Follow degree-2 candidates from ``origin`` toward ``start``.

        Returns the interior vertices passed (excluding ``origin``)
        and the first non-candidate endpoint (or ``origin`` again for
        a pure candidate cycle).
        """
        path: List[int] = []
        prev, cur = origin, start
        while cand[cur] and cur != origin:
            path.append(cur)
            nb = graph.out_neighbors(cur)
            nxt = int(nb[0]) if int(nb[1]) == prev else int(nb[1])
            prev, cur = cur, nxt
        return path, cur


def _resolve_reps(rep: np.ndarray) -> np.ndarray:
    """Path-compress the rep mapping (members may chain across rounds)."""
    while True:
        nxt = rep[rep]
        if np.array_equal(nxt, rep):
            return rep
        rep = nxt


def build_plan(sg, *, eliminate_pendants: bool = True) -> SubgraphPlan:
    """Run the reduction ladder to fixpoint on one sub-graph."""
    g = sg.graph
    n = g.n
    if g.directed or n == 0:
        # compression is undirected-only (the interior-endpoint
        # doubling relies on α == β); directed sub-graphs get an
        # identity plan and flow through the plain kernels
        return _trivial_plan(sg, eliminate_pendants)
    ladder = _Ladder(sg, eliminate_pendants)
    if eliminate_pendants:
        ladder.fold_pendants(sg)
    while True:
        changed = ladder.merge_twins()
        changed += ladder.contract_chains()
        if not changed:
            break
    ladder.rep = _resolve_reps(ladder.rep)

    core_graph, arc_lengths = _csr_with_lengths(
        n, ladder.asrc, ladder.adst, ladder.alen
    )
    unit = ladder.alen == 1
    exp_src = [ladder.asrc[unit]]
    exp_dst = [ladder.adst[unit]]
    chains: List[Chain] = []
    for u, v, interiors in ladder.chains:
        hops = np.concatenate([[u], interiors, [v]])
        exp_src.append(hops[:-1])
        exp_dst.append(hops[1:])
        chains.append(
            Chain(
                u=u,
                v=v,
                interiors=interiors,
                arc_uv=_arc_index(core_graph, u, v),
                arc_vu=_arc_index(core_graph, v, u),
            )
        )
    if chains:
        expanded_graph, _ = _csr_with_lengths(
            n,
            np.concatenate(exp_src),
            np.concatenate(exp_dst),
            np.ones(sum(a.size for a in exp_src), dtype=np.int64),
        )
    else:
        expanded_graph = core_graph

    twin_classes: List[TwinClass] = []
    merged = np.flatnonzero(ladder.status == STATUS_TWIN)
    if merged.size:
        for rep in np.unique(ladder.rep[merged]).tolist():
            members = np.flatnonzero(ladder.rep == rep)
            neighbors = expanded_graph.out_neighbors(rep).astype(np.int64)
            twin_classes.append(
                TwinClass(
                    rep=int(rep),
                    members=members,
                    kind=int(ladder.kind_of[rep]),
                    neighbors=neighbors,
                    sigma_within=float(ladder.mult[neighbors].sum()),
                )
            )

    plan = SubgraphPlan(
        n=n,
        eliminate_pendants=eliminate_pendants,
        status=ladder.status,
        rep=ladder.rep,
        mult=ladder.mult,
        pfold=ladder.pfold,
        core_graph=core_graph,
        arc_lengths=arc_lengths,
        has_lengths=bool((arc_lengths > 1).any()),
        expanded_graph=expanded_graph,
        twin_classes=twin_classes,
        chains=chains,
    )
    if plan.vertices_peeled + plan.vertices_merged + plan.chain_interiors != (
        plan.n - plan.n_core
    ):  # pragma: no cover - per-rule tallies must invert exactly
        raise AlgorithmError("compression tallies do not match eliminations")
    return plan


def _trivial_plan(sg, eliminate_pendants: bool) -> SubgraphPlan:
    g = sg.graph
    n = g.n
    return SubgraphPlan(
        n=n,
        eliminate_pendants=eliminate_pendants,
        status=np.zeros(n, dtype=np.int8),
        rep=np.arange(n, dtype=np.int64),
        mult=np.ones(n, dtype=np.int64),
        pfold=np.zeros(n, dtype=np.int64),
        core_graph=g,
        arc_lengths=np.ones(g.num_arcs, dtype=np.int64),
        has_lengths=False,
        expanded_graph=g,
    )
