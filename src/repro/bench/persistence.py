"""Saving, loading and diffing experiment results.

A benchmark run is only useful if you can compare it to the last one.
``save_results``/``load_results`` serialise a set of
:class:`~repro.bench.runner.ExperimentResult` tables to a single JSON
document (with a schema version and the active scale/graph selection),
and ``diff_results`` reports which numeric cells moved by more than a
tolerance — the regression check for "did my change slow APGRE down".
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import sys
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.runner import ExperimentResult
from repro.errors import BenchmarkError

__all__ = [
    "environment_provenance",
    "save_results",
    "load_results",
    "diff_results",
    "CellChange",
]

_SCHEMA_VERSION = 2


def environment_provenance(
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict:
    """Describe the machine and toolchain behind a benchmark number.

    Perf numbers are only interpretable next to the environment that
    produced them (a 1.0x "speedup" at 4 workers is expected on a
    1-CPU container and a bug on a 16-core box), so every BENCH_*.json
    embeds this block.  ``workers`` records the worker count the
    benchmark actually ran with, when it has one, and ``backend`` the
    active execution backend (additive schema-2 keys); the block also
    records which backends the host could have run
    (``backends_available``) and which one ``"auto"`` resolves to
    (``backend_default``), so a committed speedup table can be audited
    against the machine that produced it.
    """
    import numpy

    try:
        import scipy

        scipy_version: Optional[str] = scipy.__version__
    except ImportError:  # pragma: no cover - scipy absent in minimal envs
        scipy_version = None
    from repro.graph.kernels import (
        default_kernel_name,
        get_kernel,
        kernel_names,
    )
    from repro.parallel.backends import (
        backend_names,
        default_backend_name,
        get_backend,
    )
    from repro.parallel.pool import available_workers

    info: Dict = {
        "cpu_count": os.cpu_count(),
        "available_workers": available_workers(),
        "start_methods": multiprocessing.get_all_start_methods(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "platform": sys.platform,
        "backends_available": [
            name for name in backend_names() if get_backend(name).available()
        ],
        "backend_default": default_backend_name(),
        "kernels_available": [
            name for name in kernel_names() if get_kernel(name).available()
        ],
        "kernel_default": default_kernel_name(),
    }
    if workers is not None:
        info["workers"] = int(workers)
    if backend is not None:
        info["backend"] = str(backend)
    return info


def save_results(
    results: Sequence[ExperimentResult],
    path: Union[str, Path],
    *,
    metadata: Dict | None = None,
) -> None:
    """Write experiment results (plus optional run metadata) as JSON.

    An ``environment`` provenance block is added to the metadata
    automatically (a caller-provided ``environment`` key wins), so
    every saved result file records the machine it was measured on.
    """
    merged: Dict = {"environment": environment_provenance()}
    merged.update(metadata or {})
    payload = {
        "schema": _SCHEMA_VERSION,
        "schema_version": _SCHEMA_VERSION,
        "metadata": merged,
        "experiments": [
            {
                "exp_id": r.exp_id,
                "title": r.title,
                "headers": list(r.headers),
                "rows": [list(row) for row in r.rows],
                "notes": r.notes,
            }
            for r in results
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=str))


def load_results(path: Union[str, Path]) -> List[ExperimentResult]:
    """Read experiment results written by :func:`save_results`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"cannot read results file {path}: {exc}") from exc
    version = payload.get("schema_version", payload.get("schema"))
    if not isinstance(version, int) or version > _SCHEMA_VERSION:
        raise BenchmarkError(f"unsupported results schema {version!r}")
    if version < _SCHEMA_VERSION:
        # Older files stay loadable: every schema bump so far only
        # added keys, and missing keys already default below.
        warnings.warn(
            f"results file {path} has schema {version} "
            f"(current {_SCHEMA_VERSION}); loading with defaults",
            stacklevel=2,
        )
    return [
        ExperimentResult(
            exp_id=e["exp_id"],
            title=e["title"],
            headers=e["headers"],
            rows=e["rows"],
            notes=e.get("notes", ""),
        )
        for e in payload["experiments"]
    ]


@dataclass
class CellChange:
    """One numeric cell that moved between two runs."""

    exp_id: str
    row_label: str
    column: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        """after / before (guarded; 0-before cells report inf)."""
        return self.after / self.before if self.before else float("inf")


def diff_results(
    old: Sequence[ExperimentResult],
    new: Sequence[ExperimentResult],
    *,
    rel_tolerance: float = 0.25,
) -> List[CellChange]:
    """Numeric cells differing by more than ``rel_tolerance``.

    Rows are matched by their first cell, experiments by id; cells
    present on only one side are ignored (layout changes are not
    regressions). Timing noise on small runs is real — the default
    tolerance is deliberately loose.
    """
    changes: List[CellChange] = []
    new_by_id = {r.exp_id: r for r in new}
    for old_result in old:
        new_result = new_by_id.get(old_result.exp_id)
        if new_result is None:
            continue
        new_rows = {str(row[0]): row for row in new_result.rows if row}
        for old_row in old_result.rows:
            if not old_row:
                continue
            new_row = new_rows.get(str(old_row[0]))
            if new_row is None:
                continue
            for idx, header in enumerate(old_result.headers):
                if idx >= len(old_row) or idx >= len(new_row) or idx == 0:
                    continue
                before, after = old_row[idx], new_row[idx]
                if not (
                    isinstance(before, (int, float))
                    and isinstance(after, (int, float))
                ):
                    continue
                base = max(abs(float(before)), 1e-12)
                if abs(float(after) - float(before)) / base > rel_tolerance:
                    changes.append(
                        CellChange(
                            exp_id=old_result.exp_id,
                            row_label=str(old_row[0]),
                            column=header,
                            before=float(before),
                            after=float(after),
                        )
                    )
    return changes
