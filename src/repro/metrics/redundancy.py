"""Redundancy accounting (paper Figure 7: "Breakdown of BC computation").

The paper splits Brandes' total traversal work into three shares:

* **total redundancy** — work spent on DAGs rooted at removable
  pendant sources (their dependencies are derivable, so the DAGs need
  not be built at all);
* **partial redundancy** — work re-traversing common sub-DAGs that the
  articulation decomposition shares across sources;
* **essential** — the work APGRE actually performs in its BC phase.

Work is measured in *forward-traversal arcs*: one BFS from source
``s`` examines the out-arcs of every vertex it reaches, which is the
DAG-construction cost (the backward phase re-walks the same DAG, so a
consistent forward-only convention preserves all ratios).

Formally, with ``W(s, G)`` = arcs examined by a BFS from ``s`` on
``G``::

    W_brandes = Σ_{v ∈ V}          W(v, G)
    W_1       = Σ_{v ∈ V \\ removed} W(v, G)      (pendants eliminated)
    W_apgre   = Σ_{SGi} Σ_{s ∈ R_sgi} W(s, SGi)  (decomposed)

    total_fraction     = (W_brandes − W_1) / W_brandes
    partial_fraction   = (W_1 − W_apgre)  / W_brandes
    essential_fraction = W_apgre          / W_brandes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.decompose.partition import (
    DEFAULT_THRESHOLD,
    Partition,
    graph_partition,
)
from repro.graph.csr import CSRGraph
from repro.graph.traversal import expand_frontier
from repro.types import VERTEX_DTYPE

__all__ = ["RedundancyBreakdown", "measure_redundancy", "bfs_arc_work"]


@dataclass
class RedundancyBreakdown:
    """The three work shares of Figure 7 (they sum to 1)."""

    graph_name: str
    w_brandes: int
    w_after_total: int
    w_apgre: int

    @property
    def total_fraction(self) -> float:
        """Share eliminated by pendant-source removal (γ/R)."""
        if self.w_brandes == 0:
            return 0.0
        return (self.w_brandes - self.w_after_total) / self.w_brandes

    @property
    def partial_fraction(self) -> float:
        """Share eliminated by common-sub-DAG reuse (α/β)."""
        if self.w_brandes == 0:
            return 0.0
        return (self.w_after_total - self.w_apgre) / self.w_brandes

    @property
    def essential_fraction(self) -> float:
        """Share APGRE still has to traverse."""
        if self.w_brandes == 0:
            return 1.0
        return self.w_apgre / self.w_brandes


def bfs_arc_work(graph: CSRGraph, source: int) -> int:
    """Arcs a plain forward BFS from ``source`` examines.

    Equal to the summed out-degree of every reached vertex (each
    reached vertex is expanded exactly once).
    """
    n = graph.n
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    work = 0
    while frontier.size:
        dst, _src = expand_frontier(
            graph.out_indptr, graph.out_indices, frontier
        )
        work += int(dst.size)
        if dst.size == 0:
            break
        nxt = np.unique(dst[~seen[dst]])
        if nxt.size == 0:
            break
        seen[nxt] = True
        frontier = nxt
    return work


def measure_redundancy(
    graph: CSRGraph,
    *,
    name: str = "",
    threshold: int = DEFAULT_THRESHOLD,
    partition: Optional[Partition] = None,
) -> RedundancyBreakdown:
    """Compute the Figure-7 breakdown for one graph.

    Costs one BFS per vertex plus one per sub-graph root — roughly two
    BC forward phases; intended for the benchmark harness, not hot
    paths.
    """
    if partition is None:
        partition = graph_partition(graph, threshold=threshold)

    per_vertex = np.zeros(graph.n, dtype=np.int64)
    for v in range(graph.n):
        per_vertex[v] = bfs_arc_work(graph, v)
    w_brandes = int(per_vertex.sum())

    removed_mask = np.zeros(graph.n, dtype=bool)
    for sg in partition.subgraphs:
        if sg.removed.size:
            removed_mask[sg.vertices[sg.removed]] = True
    w_after_total = int(per_vertex[~removed_mask].sum())

    w_apgre = 0
    for sg in partition.subgraphs:
        for s in sg.roots.tolist():
            w_apgre += bfs_arc_work(sg.graph, s)

    return RedundancyBreakdown(
        graph_name=name,
        w_brandes=w_brandes,
        w_after_total=w_after_total,
        w_apgre=w_apgre,
    )
