"""Table 4 — sub-graph sizes produced by GraphPartition.

Benchmarks the decomposition itself (Algorithm 1 + α/β counting) per
graph and emits the paper's sub-graph size table.
"""

import pytest

from repro.bench.experiments import table4
from repro.bench.workloads import bench_graph_names, get_graph
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition

from conftest import one_shot


def _decompose(graph):
    partition = graph_partition(graph)
    compute_alpha_beta(graph, partition)
    return partition


@pytest.mark.parametrize("name", bench_graph_names())
def test_partition_time(benchmark, name):
    graph = get_graph(name)
    partition = one_shot(benchmark, _decompose, graph)
    partition.validate()
    benchmark.extra_info["num_subgraphs"] = partition.num_subgraphs


def test_report_table4(benchmark, report):
    result = one_shot(benchmark, table4)
    # the top sub-graph dominates on every suite graph (paper: "The
    # top sub-graph is larger than other sub-graphs")
    for row in result.rows:
        top_v, second_v = row[2], row[6]
        assert top_v >= second_v
    report(result)
