"""The compressed per-sub-graph BC kernel.

Executes one :class:`~repro.compress.plan.SubgraphPlan` and returns
scores in the sub-graph's *original* local id space, bit-for-bit
compatible with :func:`repro.core.bc_subgraph.bc_subgraph` up to
float64 associativity.  Four contribution channels:

1. **Core sweeps** — one generalized sweep per live representative on
   the compressed graph.  A rep standing for ``cnt`` chunk roots (plus
   γ folded tree sources) carries source mass ``m_src = cnt + γ``;
   the merge mirrors Algorithm 2 line 46 with two extra terms that
   replace what elimination hid: ``m_src·pfold(v)`` (paths ending at
   v's folded pendants pass through v) and, for articulation sources,
   ``β(s)·pfold(v)``.
2. **Super-edge flow** — core sweeps accumulate the merge-weighted
   pair mass crossing each super-edge arc; every interior of the
   contracted chain lies on every such path, so after all core sweeps
   each interior is credited ``flow[u→v] + flow[v→u]``.
3. **Interior-endpoint sweeps** — pairs with a chain interior as an
   endpoint never appear in core sweeps (interiors have no mass in the
   compressed graph).  Each interior root runs one unit sweep on the
   *expanded* graph with doubled target mass / doubled α seeds: the
   sub-graph is undirected (α == β), so the ``i → t`` sweep stands for
   ``t → i`` too.  Interior-interior pairs keep mass 1 because both
   endpoints run their own sweep.
4. **Within-class credit** — a type-I twin class's members sit at
   distance 2 through exactly their common neighbourhood, so the
   member-to-member pairs are credited analytically:
   ``cnt·(k−1)·μ(c)/σ_within`` per neighbour class ``c``.  Type-II
   members are adjacent — no intermediates, nothing to credit.

Inversion divides each representative's score by its multiplicity
(class members are interchangeable under the class automorphism, so
equal shares are exact) and zeroes the peeled pendants, whose local
BC is identically zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.compress.plan import (
    STATUS_CHAIN,
    STATUS_PEELED,
    TWIN_OPEN,
    SubgraphPlan,
    compression_plan,
)
from repro.compress.sweep import unit_sweep, weighted_sweep
from repro.decompose.partition import Subgraph
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = ["bc_subgraph_compressed"]


def bc_subgraph_compressed(
    sg: Subgraph,
    plan: Optional[SubgraphPlan] = None,
    *,
    eliminate_pendants: bool = True,
    counter: Optional[WorkCounter] = None,
    roots: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Local BC scores of one sub-graph via its compression plan.

    Drop-in for :func:`repro.core.bc_subgraph.bc_subgraph`: same
    contract, same root-subset linearity (chunked calls sum to the
    full scores), scores returned in the original local id space.
    """
    g = sg.graph
    n = g.n
    if plan is None:
        plan = compression_plan(sg, eliminate_pendants=eliminate_pendants)
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    if n == 0:
        return bc
    if eliminate_pendants:
        gamma = sg.gamma
        if roots is None:
            roots = sg.roots
    else:
        gamma = np.zeros(n, dtype=SCORE_DTYPE)
        if roots is None:
            roots = np.arange(n, dtype=VERTEX_DTYPE)
    if not plan.nontrivial:
        from repro.core.bc_subgraph import bc_subgraph

        return bc_subgraph(
            sg,
            eliminate_pendants=eliminate_pendants,
            counter=counter,
            roots=roots,
        )

    alpha = sg.alpha
    beta = sg.beta
    is_art = sg.is_boundary_art
    roots = np.asarray(roots)
    mult_f = plan.mult.astype(SCORE_DTYPE)
    pfold_f = plan.pfold.astype(SCORE_DTYPE)
    tmass = mult_f + pfold_f

    chain_mask = plan.status == STATUS_CHAIN
    interior_roots = roots[chain_mask[roots]]
    counts = plan.class_count(roots[~chain_mask[roots]])
    flow = (
        np.zeros(plan.core_graph.num_arcs, dtype=SCORE_DTYPE)
        if plan.chains
        else None
    )

    # ---- 1+2: core sweeps (with super-edge flow capture) -------------
    for r in np.flatnonzero(counts).tolist():
        cnt = float(counts[r])
        g_r = float(gamma[r])
        m_src = cnt + g_r
        if plan.has_lengths:
            sw = weighted_sweep(
                plan,
                r,
                mu=mult_f,
                tmass=tmass,
                alpha_seed=alpha,
                beta=beta,
                is_art=is_art,
                m_src=m_src,
                flow=flow,
                counter=counter,
            )
        else:
            sw = unit_sweep(
                plan.core_graph,
                r,
                mu=mult_f,
                tmass=tmass,
                alpha_seed=alpha,
                beta=beta,
                is_art=is_art,
                counter=counter,
            )
        reached = sw.reached
        if reached.size:
            contrib = m_src * (
                sw.delta_i2i[reached]
                + sw.delta_i2o[reached]
                + pfold_f[reached]
            )
            if sw.source_is_art:
                contrib = (
                    contrib
                    + sw.beta_s
                    * (sw.delta_i2i[reached] + pfold_f[reached])
                    + sw.delta_o2o[reached]
                )
            np.add.at(bc, reached, contrib)
        if g_r:
            # γ derived pendant sources: as in the plain kernel's
            # line-48 correction, plus the pfold targets the fold hid
            # (minus the derived source itself, undirected)
            self_i2i = sw.delta_i2i[r] + pfold_f[r] - 1.0
            self_i2o = sw.delta_i2o[r] + (
                float(alpha[r]) if sw.source_is_art else 0.0
            )
            bc[r] += g_r * (self_i2i + self_i2o)

    # ---- 2: credit chain interiors with the crossing pair mass ------
    if flow is not None:
        for ch in plan.chains:
            f = float(flow[ch.arc_uv]) + float(flow[ch.arc_vu])
            if f:
                bc[ch.interiors] += f

    # ---- 3: interior-endpoint sweeps on the expanded graph ----------
    if interior_roots.size:
        tmass_e = 2.0 * tmass
        tmass_e[chain_mask] = 1.0
        alpha_f = np.asarray(alpha, dtype=SCORE_DTYPE)
        alpha2 = 2.0 * alpha_f
        # An articulation point's own α seed must only count the
        # forward (i → out) direction: the reverse pairs' credit at
        # the art itself belongs to the neighbouring sub-graph under
        # the equation-7 split.  Intermediates strictly between the
        # interior and the art keep the doubled (propagated) credit.
        art_own = np.where(is_art, alpha_f, 0.0)
        for i in interior_roots.tolist():
            sw = unit_sweep(
                plan.expanded_graph,
                i,
                mu=mult_f,
                tmass=tmass_e,
                alpha_seed=alpha2,
                beta=beta,
                is_art=is_art,
                counter=counter,
            )
            reached = sw.reached
            if reached.size:
                np.add.at(
                    bc,
                    reached,
                    sw.delta_i2i[reached]
                    + sw.delta_i2o[reached]
                    + 2.0 * pfold_f[reached]
                    - art_own[reached],
                )

    # ---- 4: within-class analytic credit (type-I only) --------------
    for tc in plan.twin_classes:
        cnt = int(counts[tc.rep])
        if cnt == 0 or tc.kind != TWIN_OPEN:
            continue
        k = float(plan.mult[tc.rep])
        if tc.sigma_within > 0.0:
            bc[tc.neighbors] += (
                cnt * (k - 1.0) * mult_f[tc.neighbors] / tc.sigma_within
            )

    # ---- inversion ---------------------------------------------------
    out = bc[plan.rep] / mult_f[plan.rep]
    out[plan.status == STATUS_PEELED] = 0.0
    return out
