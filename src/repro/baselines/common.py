"""Shared machinery for the baseline BC algorithms.

All level-synchronous baselines share the same skeleton (Brandes'
two-phase structure); they differ in how the backward dependency
accumulation locates shortest-path-DAG arcs:

``"arcs"``
    Replay the DAG arcs recorded during the forward phase —
    functionally the *predecessor list* strategy (the lists are exactly
    the per-level arc arrays).
``"succs"``
    Re-expand each level's out-neighbourhoods and keep arcs whose head
    is one level deeper — the *successor* strategy: no stored lists,
    extra edge traversals.
``"edge"``
    Scan the full arc array once per level and mask by level — the
    edge-parallel, conflict-free strategy.

The work counter records edges *examined* (the quantity behind the
paper's MTEPS tables and redundancy breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import BFSResult, bfs_sigma, expand_frontier
from repro.types import SCORE_DTYPE

__all__ = [
    "WorkCounter",
    "accumulate_dependencies",
    "per_source_delta",
    "run_per_source",
]


@dataclass
class WorkCounter:
    """Mutable tally of edges examined by an algorithm run.

    ``edges`` counts top-down (push) probes and backward-sweep replays;
    ``pulled`` counts the direction-optimizing kernel's bottom-up
    probes (:mod:`repro.graph.kernels.pull`).  Both are arcs actually
    examined — ``examined`` is their sum and is the quantity behind
    TEPS.  ``switches`` counts push↔pull direction flips: heuristic
    bookkeeping, *outside* TEPS.
    """

    edges: int = 0
    pulled: int = 0
    switches: int = 0

    def add(self, k: int) -> None:
        self.edges += int(k)

    def add_pulled(self, k: int) -> None:
        self.pulled += int(k)

    def add_switch(self, k: int = 1) -> None:
        self.switches += int(k)

    @property
    def examined(self) -> int:
        """Total arcs examined either direction (the TEPS numerator)."""
        return self.edges + self.pulled


def accumulate_dependencies(
    graph: CSRGraph,
    res: BFSResult,
    *,
    mode: str = "succs",
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Backward phase: compute δ_s(v) for one source's BFS result.

    Implements the recursion δ_s(v) = Σ_w (σ_sv/σ_sw)(1 + δ_s(w)) one
    level at a time, deepest first; arcs within a level step never
    depend on each other, so each step is a single vectorised
    gather/scatter (the paper's "for all v ∈ Levels[currLevel] in
    parallel").
    """
    n = graph.n
    delta = np.zeros(n, dtype=SCORE_DTYPE)
    sigma = res.sigma
    dist = res.dist
    depth = res.depth
    if mode == "arcs":
        if res.level_arcs is None:
            raise AlgorithmError("mode='arcs' needs keep_level_arcs=True")
        for d in range(depth - 1, -1, -1):
            src, dst = res.level_arcs[d]
            if counter is not None:
                counter.add(src.size)
            if src.size == 0:
                continue
            contrib = sigma[src] / sigma[dst] * (1.0 + delta[dst])
            np.add.at(delta, src, contrib)
    elif mode == "succs":
        for d in range(depth - 1, -1, -1):
            frontier = res.levels[d]
            dst, src = expand_frontier(
                graph.out_indptr, graph.out_indices, frontier
            )
            if counter is not None:
                counter.add(dst.size)
            keep = dist[dst] == d + 1
            src, dst = src[keep], dst[keep]
            if src.size == 0:
                continue
            contrib = sigma[src] / sigma[dst] * (1.0 + delta[dst])
            np.add.at(delta, src, contrib)
    elif mode == "edge":
        all_src, all_dst = graph.arcs()
        for d in range(depth - 1, -1, -1):
            if counter is not None:
                counter.add(all_src.size)
            keep = (dist[all_src] == d) & (dist[all_dst] == d + 1)
            src, dst = all_src[keep], all_dst[keep]
            if src.size == 0:
                continue
            contrib = sigma[src] / sigma[dst] * (1.0 + delta[dst])
            np.add.at(delta, src, contrib)
    else:
        raise AlgorithmError(f"unknown accumulation mode {mode!r}")
    return delta


def per_source_delta(
    graph: CSRGraph,
    source: int,
    *,
    mode: str = "succs",
    forward: Callable[..., BFSResult] = bfs_sigma,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """δ_s(·) for one source: forward BFS + backward accumulation."""
    res = forward(graph, source, keep_level_arcs=(mode == "arcs"))
    if counter is not None:
        counter.add(res.edges_traversed)
    return accumulate_dependencies(graph, res, mode=mode, counter=counter)


def run_per_source(
    graph: CSRGraph,
    *,
    sources: Optional[Sequence[int]] = None,
    mode: str = "succs",
    forward: Callable[..., BFSResult] = bfs_sigma,
    counter: Optional[WorkCounter] = None,
    workers: int = 1,
    supervisor=None,
    health=None,
    batch_size=None,
    steal: bool = True,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Sum per-source dependencies into BC scores.

    ``workers > 1`` distributes sources over the *supervised*
    fork-based process pool (coarse-grained parallelism — the strategy
    available to Python given the GIL; see DESIGN.md §5 and
    docs/ROBUSTNESS.md): a crashed or stuck worker is retried and, if
    need be, its chunk re-runs serially instead of hanging the map.
    ``supervisor`` (a :class:`repro.parallel.supervisor
    .SupervisorConfig`) tunes that policy and ``health`` (a
    :class:`~repro.parallel.supervisor.RunHealth`) collects the
    report.

    ``batch_size`` (a positive int or ``"auto"``) routes the run
    through the multi-source kernel
    (:mod:`repro.graph.batched`): sources advance ``B`` at a time over
    shared ``(B, n)`` level steps.  Batching realises the ``"arcs"``
    (recorded-DAG) accumulation strategy, so it requires
    ``mode="arcs"`` with the default forward BFS; scores match the
    per-source path within float64 tolerance and the edge tally is
    identical.

    Composing both dispatches through the execution-backend registry
    (:mod:`repro.parallel.backends`): ``backend`` names the engine
    (``"serial"`` / ``"threads"`` / ``"processes"`` / ``"auto"``), and
    ``None`` defers to ``REPRO_PARALLEL_BACKEND`` and then the host
    default — worker *threads* over the shared in-process CSR when
    scipy's GIL-releasing SpMM kernel is available, the fork-based
    shared-memory process pool otherwise.  Either way workers pull
    LPT-ordered source batches (``steal`` lets idle workers take over
    a straggler's remaining batches) and — unlike the per-source chunk
    pool — ``counter`` aggregates the exact serial edge tally across
    workers.  Passing ``backend`` without ``batch_size`` implies
    ``batch_size="auto"`` (the engines run the batched kernel).  On
    the per-source pool (``workers > 1`` without ``batch_size``)
    counters still stay in the children; pass ``workers=1`` there when
    instrumenting.

    ``kernel`` names the compute kernel the batched paths traverse
    with (:mod:`repro.graph.kernels`: ``"auto"`` / ``"arcs"`` /
    ``"spmm"`` / ``"pull"`` / ``"numba"``); ``None`` defers to
    ``REPRO_KERNEL`` and then automatic selection.  It requires a
    batched run, so passing it without ``batch_size`` implies
    ``batch_size="auto"`` (like ``backend``).
    """
    n = graph.n
    if sources is None:
        source_list: Sequence[int] = range(n)
    else:
        source_list = sources
    if (backend is not None or kernel is not None) and batch_size is None:
        batch_size = "auto"
    if batch_size is not None:
        if mode != "arcs":
            raise AlgorithmError(
                f"batch_size implements the 'arcs' accumulation "
                f"strategy; got mode={mode!r}"
            )
        if forward is not bfs_sigma:
            raise AlgorithmError(
                "batch_size requires the default bfs_sigma forward"
            )
    if batch_size is not None and kernel is not None:
        # price the RAM model against the kernel that will actually
        # run (resolution of an explicit name is stable; "auto" here
        # is only a sizing hint — the engines re-resolve per batch)
        from repro.graph import kernels as _kernels

        kernel = _kernels.resolve_kernel_name(kernel, graph=graph)
    if batch_size is not None and (workers > 1 or backend is not None):
        from repro.graph.batched import resolve_batch_size
        from repro.parallel.backends import resolve_backend

        engine = resolve_backend(backend)
        batch = resolve_batch_size(
            batch_size,
            n,
            graph.num_arcs,
            workers=workers,
            shared_csr=engine.shared_csr,
            kernel=kernel,
        )
        return engine.scores(
            graph,
            list(source_list),
            batch=batch,
            workers=workers,
            steal=steal,
            counter=counter,
            config=supervisor,
            health=health,
            kernel=kernel,
        )
    if workers > 1:
        from repro.parallel.pool import map_sources_bc

        return map_sources_bc(
            graph,
            list(source_list),
            mode=mode,
            forward=forward,
            workers=workers,
            supervisor=supervisor,
            health=health,
        )
    if batch_size is not None:
        from repro.graph.batched import (
            batched_bc_scores,
            resolve_batch_size,
        )

        batch = resolve_batch_size(
            batch_size, n, graph.num_arcs, kernel=kernel
        )
        return batched_bc_scores(
            graph, source_list, batch=batch, counter=counter,
            kernel=kernel,
        )
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    for s in source_list:
        delta = per_source_delta(
            graph, int(s), mode=mode, forward=forward, counter=counter
        )
        delta[s] = 0.0
        bc += delta
    return bc
