"""Divide-and-conquer sharding of the dominant BCC (docs/SHARDING.md).

Four layers of coverage:

* the separator finder: balanced interiors under the size ceiling,
  pairwise non-adjacent interiors, graphs that refuse to split;
* the shard plan + kernel: the per-task sum identity against
  :func:`repro.core.bc_subgraph.bc_subgraph`, shard fingerprints;
* the end-to-end equivalence contract: ``shard=True`` reproduces
  Brandes to 1e-9 across serial / threads / processes / backend
  engines × compressed / cached / journaled / resumed, with exact
  edge-tally identity (replayed == from-scratch traversed, resumed +
  recomputed == from-scratch);
* crash safety: a SIGKILL mid-run commits no partial shard — every
  journal record is a complete shard vector, and resume recomputes
  exactly the missing units.

The shared test graph is a deterministic ring of cliques — one
dominant biconnected component (the shape sharding exists for) plus
pendant 2-paths so the partition also has small sub-graphs, boundary
articulation points and nonzero α/β/γ summaries.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.cache.store import ContributionStore
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import AlgorithmError, JournalError
from repro.graph.build import from_edges
from repro.journal import scan_log
from repro.shard import (
    bc_subgraph_sharded,
    find_shard_labels,
    shard_key,
    shard_plan,
    shard_task_scores,
)

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

# Deterministic ring of 4 cliques (K12) joined into one biconnected
# ring, plus a pendant 2-path off each clique.  Inlined into subprocess
# scripts too, so parent and child build fingerprint-identical graphs.
RING_SRC = """
edges = []
for b in range(4):
    off = b * 12
    edges += [(off + i, off + j) for i in range(12) for j in range(i + 1, 12)]
n = 48
for b in range(4):
    edges.append((b * 12, ((b + 1) % 4) * 12 + 6))
for b in range(4):
    edges += [(b * 12 + 1, n), (n, n + 1)]
    n += 2
"""
_ns: dict = {}
exec(RING_SRC, _ns)
RING_EDGES, RING_N = _ns["edges"], _ns["n"]

MAX_SIZE = 16  # splits the 52-vertex top sub-graph into 4 shards


def make_graph():
    return from_edges(RING_EDGES, n=RING_N, directed=False)


@pytest.fixture(scope="module")
def graph():
    return make_graph()


@pytest.fixture(scope="module")
def reference(graph):
    return brandes_bc(graph)


@pytest.fixture(scope="module")
def partition(graph):
    part = graph_partition(graph, threshold=2)
    compute_alpha_beta(graph, part)
    return part


def shard_config(**kw):
    return APGREConfig(
        threshold=2, shard=True, shard_max_size=MAX_SIZE, **kw
    )


# ----------------------------------------------------------------------
# separator finder
# ----------------------------------------------------------------------
class TestSeparator:
    def test_path_graph_splits_balanced(self):
        g = from_edges(
            [(i, i + 1) for i in range(99)], n=100, directed=False
        )
        labels, k = find_shard_labels(g, 20)
        assert k >= 2
        sizes = np.bincount(labels[labels >= 0], minlength=k)
        assert sizes.max() <= 20
        assert sizes.min() >= 1

    def test_interiors_pairwise_non_adjacent(self, graph):
        labels, k = find_shard_labels(graph, MAX_SIZE)
        assert k >= 2
        src, dst = graph.arcs()
        ls, ld = labels[src], labels[dst]
        both_interior = (ls >= 0) & (ld >= 0)
        # every arc between interiors stays within one shard
        assert (ls[both_interior] == ld[both_interior]).all()

    def test_every_vertex_labelled(self, graph):
        labels, k = find_shard_labels(graph, MAX_SIZE)
        assert labels.shape == (graph.n,)
        assert labels.min() >= -1
        assert labels.max() == k - 1
        assert set(np.unique(labels[labels >= 0]).tolist()) == set(
            range(k)
        )

    def test_clique_refuses_to_split(self):
        g = from_edges(
            [(i, j) for i in range(20) for j in range(i + 1, 20)],
            n=20,
            directed=False,
        )
        labels, k = find_shard_labels(g, 8)
        # diameter-1 graphs have no usable level cut
        assert k == 1
        assert (labels == 0).all()


# ----------------------------------------------------------------------
# plan + kernel: the per-task sum identity
# ----------------------------------------------------------------------
class TestPlanAndKernel:
    def test_plan_none_below_threshold(self, partition):
        assert shard_plan(partition.subgraphs[1], max_size=MAX_SIZE) is None

    def test_plan_memoized(self, partition):
        top = partition.subgraphs[0]
        p1 = shard_plan(top, max_size=MAX_SIZE)
        p2 = shard_plan(top, max_size=MAX_SIZE)
        assert p1 is p2 and p1 is not None

    @pytest.mark.parametrize("eliminate", [True, False])
    def test_task_sum_matches_bc_subgraph(self, partition, eliminate):
        top = partition.subgraphs[0]
        plan = shard_plan(top, max_size=MAX_SIZE)
        assert plan is not None and plan.k >= 2
        want = bc_subgraph(top, eliminate_pendants=eliminate)
        total = np.zeros(top.num_vertices)
        for s in range(plan.k):
            total += shard_task_scores(
                top, plan, s, eliminate_pendants=eliminate
            )
        np.testing.assert_allclose(total, want, atol=1e-9)
        np.testing.assert_allclose(
            bc_subgraph_sharded(top, plan, eliminate_pendants=eliminate),
            want,
            atol=1e-9,
        )

    def test_largest_shard_shrinks_critical_path(self, partition):
        top = partition.subgraphs[0]
        plan = shard_plan(top, max_size=MAX_SIZE)
        assert plan.largest_shard < top.num_vertices

    def test_shard_keys_deterministic_and_distinct(self, partition):
        top = partition.subgraphs[0]
        plan = shard_plan(top, max_size=MAX_SIZE)
        keys = [
            shard_key(top, s, max_size=MAX_SIZE) for s in range(plan.k)
        ]
        assert len(set(keys)) == plan.k
        assert keys == [
            shard_key(top, s, max_size=MAX_SIZE) for s in range(plan.k)
        ]
        # the threshold and the pendant mode are part of the identity
        assert shard_key(top, 0, max_size=MAX_SIZE + 1) != keys[0]
        assert (
            shard_key(top, 0, max_size=MAX_SIZE, eliminate_pendants=False)
            != keys[0]
        )


# ----------------------------------------------------------------------
# end-to-end equivalence across execution paths
# ----------------------------------------------------------------------
EXEC_PATHS = {
    "serial": {},
    "compressed": {"compress": True},
    "batched": {"batch_size": 4},
    "threads": {"parallel": "threads", "workers": 2},
    "processes": {"parallel": "processes", "workers": 2},
    "backend-threads": {"backend": "threads", "workers": 2},
}


class TestEquivalence:
    @pytest.mark.parametrize("path", sorted(EXEC_PATHS))
    def test_matches_brandes(self, graph, reference, path):
        result = apgre_bc_detailed(graph, shard_config(**EXEC_PATHS[path]))
        np.testing.assert_allclose(result.scores, reference, atol=1e-9)

    def test_no_pendant_elimination(self, graph, reference):
        scores = apgre_bc(
            graph,
            threshold=2,
            shard=True,
            shard_max_size=MAX_SIZE,
            eliminate_pendants=False,
        )
        np.testing.assert_allclose(scores, reference, atol=1e-9)

    def test_convenience_kwargs(self, graph, reference):
        scores = apgre_bc(
            graph, threshold=2, shard=True, shard_max_size=MAX_SIZE
        )
        np.testing.assert_allclose(scores, reference, atol=1e-9)

    def test_stats_populated(self, graph):
        result = apgre_bc_detailed(graph, shard_config())
        stats = result.stats
        assert stats.shards_created >= 2
        assert stats.separator_vertices >= 1
        assert stats.edges_correction > 0
        assert 0.0 < stats.largest_shard_ratio < 1.0
        # an unsharded run keeps the defaults
        plain = apgre_bc_detailed(graph, APGREConfig(threshold=2))
        assert plain.stats.shards_created == 0
        assert plain.stats.largest_shard_ratio == 1.0

    def test_scores_identical_to_unsharded(self, graph):
        sharded = apgre_bc_detailed(graph, shard_config()).scores
        plain = apgre_bc_detailed(graph, APGREConfig(threshold=2)).scores
        np.testing.assert_allclose(sharded, plain, atol=1e-9)


# ----------------------------------------------------------------------
# cache composition: shard units are first-class entries
# ----------------------------------------------------------------------
class TestCacheComposition:
    def test_cold_warm_and_edge_tally_identity(self, graph, reference):
        store = ContributionStore()
        cold = apgre_bc_detailed(graph, shard_config(cache=store))
        warm = apgre_bc_detailed(graph, shard_config(cache=store))
        np.testing.assert_allclose(cold.scores, reference, atol=1e-9)
        np.testing.assert_allclose(warm.scores, reference, atol=1e-9)
        # units dedupe into fewer store entries (the four identical
        # pendant sub-graphs share one) but every unit replays
        assert 0 < len(store) < cold.stats.subgraphs_recomputed
        assert warm.stats.edges_traversed == 0
        assert (
            warm.stats.subgraphs_replayed
            == cold.stats.subgraphs_recomputed
        )
        # the replayed tallies are exactly the cold run's traversal
        assert warm.stats.edges_replayed == cold.stats.edges_traversed

    def test_identical_components_share_shard_entries(self):
        # two structurally identical ring components: units double,
        # store entries do not
        edges = list(RING_EDGES) + [
            (u + RING_N, v + RING_N) for u, v in RING_EDGES
        ]
        g = from_edges(edges, n=2 * RING_N, directed=False)
        ref = brandes_bc(g)
        store = ContributionStore()
        single = ContributionStore()
        apgre_bc_detailed(make_graph(), shard_config(cache=single))
        cold = apgre_bc_detailed(g, shard_config(cache=store))
        np.testing.assert_allclose(cold.scores, ref, atol=1e-9)
        # twice the units, identical content: the second component's
        # shard tasks land on the first component's keys
        assert len(store) == len(single)
        assert cold.stats.subgraphs_recomputed >= 2 * len(store) - 1
        warm = apgre_bc_detailed(g, shard_config(cache=store))
        np.testing.assert_allclose(warm.scores, ref, atol=1e-9)
        assert (
            warm.stats.subgraphs_replayed
            == cold.stats.subgraphs_recomputed
        )
        assert warm.stats.edges_traversed == 0


# ----------------------------------------------------------------------
# journal composition: composite slots, resume, digest back-compat
# ----------------------------------------------------------------------
class TestJournalComposition:
    def test_journal_and_resume(self, tmp_path, graph, reference):
        cold = apgre_bc_detailed(
            graph, shard_config(journal_dir=str(tmp_path))
        )
        np.testing.assert_allclose(cold.scores, reference, atol=1e-9)
        resumed = apgre_bc_detailed(
            graph, shard_config(journal_dir=str(tmp_path), resume=True)
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_recomputed == 0
        assert (
            resumed.stats.subgraphs_resumed
            == cold.stats.subgraphs_recomputed
        )
        assert resumed.stats.edges_resumed == cold.stats.edges_traversed
        assert resumed.stats.edges_traversed == 0

    def test_partial_journal_resumes_missing_units(
        self, tmp_path, graph, reference
    ):
        from repro.journal import decode_line

        cold = apgre_bc_detailed(
            graph, shard_config(journal_dir=str(tmp_path))
        )
        total = cold.stats.subgraphs_recomputed
        # crash stand-in: keep the header + first two commits only
        log = tmp_path / "journal.log"
        kept, contribs = [], 0
        for line in log.read_bytes().splitlines(keepends=True):
            body = decode_line(line)
            if body is None:
                break
            if body.get("type") == "header":
                kept.append(line)
            elif body.get("type") == "contribution" and contribs < 2:
                kept.append(line)
                contribs += 1
        log.write_bytes(b"".join(kept))
        resumed = apgre_bc_detailed(
            graph, shard_config(journal_dir=str(tmp_path), resume=True)
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2
        assert resumed.stats.subgraphs_recomputed == total - 2
        assert (
            resumed.stats.edges_resumed + resumed.stats.edges_traversed
            == cold.stats.edges_traversed
        )

    def test_sharded_journal_rejects_unsharded_resume(
        self, tmp_path, graph
    ):
        apgre_bc_detailed(graph, shard_config(journal_dir=str(tmp_path)))
        with pytest.raises(JournalError):
            apgre_bc_detailed(
                graph,
                APGREConfig(
                    threshold=2, journal_dir=str(tmp_path), resume=True
                ),
            )

    def test_unsharded_digest_unchanged(self):
        # pre-shard journals must keep their digests (back-compat):
        # shard fields only join the digest when sharding is enabled
        import hashlib

        from repro.journal.journal import _config_digest

        config = APGREConfig(threshold=2)
        legacy = hashlib.blake2b(
            b"threshold=2;alpha_beta_method=auto;eliminate_pendants=True",
            digest_size=16,
        ).hexdigest()
        assert _config_digest(config) == legacy
        assert _config_digest(shard_config()) != legacy


# ----------------------------------------------------------------------
# crash safety: SIGKILL mid-run commits no partial shard
# ----------------------------------------------------------------------
def run_child(script, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=str(ROOT),
    )


@pytest.mark.faults
class TestKillMidShard:
    def test_sigkill_mid_run_commits_only_whole_shards(
        self, tmp_path, graph, reference
    ):
        """SIGKILL at the second commit point: the journal holds
        exactly two records, each a complete full-length shard vector
        (never a partially swept one), and resume recomputes exactly
        the missing units."""
        script = f"""
import sys
from repro.graph.build import from_edges
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.parallel.faults import FaultSpec, FaultPlan, install_faults
{RING_SRC}
g = from_edges(edges, n=n, directed=False)
install_faults(FaultPlan([FaultSpec(
    'kill', task=1, target='journal.committed')]))
result = apgre_bc_detailed(g, APGREConfig(
    threshold=2, shard=True, shard_max_size={MAX_SIZE},
    journal_dir={str(tmp_path)!r}))
print("FINISHED", result.stats.subgraphs_recomputed)
"""
        proc = run_child(script)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "FINISHED" not in proc.stdout

        records, _ = scan_log(tmp_path / "journal.log")
        contribs = [r for r in records if r["type"] == "contribution"]
        assert [r["type"] for r in records[:1]] == ["header"]
        assert len(contribs) == 2
        # no partial shard commit: every journaled vector spans its
        # whole sub-graph (shard tasks produce full-length vectors)
        part = graph_partition(graph, threshold=2)
        sizes = {sg.num_vertices for sg in part.subgraphs}
        for rec in contribs:
            assert rec["n"] in sizes

        cold = apgre_bc_detailed(graph, shard_config())
        resumed = apgre_bc_detailed(
            graph, shard_config(journal_dir=str(tmp_path), resume=True)
        )
        np.testing.assert_allclose(resumed.scores, reference, atol=1e-9)
        assert resumed.stats.subgraphs_resumed == 2
        assert resumed.stats.subgraphs_recomputed > 0
        assert (
            resumed.stats.edges_resumed + resumed.stats.edges_traversed
            == cold.stats.edges_traversed
        )


# ----------------------------------------------------------------------
# configuration and CLI surface
# ----------------------------------------------------------------------
class TestConfigAndCli:
    def test_shard_max_size_floor(self):
        with pytest.raises(AlgorithmError):
            APGREConfig(shard_max_size=15)

    def test_shard_max_size_type(self):
        with pytest.raises(AlgorithmError):
            APGREConfig(shard_max_size=True)
        with pytest.raises(AlgorithmError):
            APGREConfig(shard_max_size="2048")

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["compute", "g.txt", "--shard", "--shard-max-size", "64"]
        )
        assert args.shard is True
        assert args.shard_max_size == 64

    def test_cli_shard_needs_apgre(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code = main(
            ["compute", str(path), "--algorithm", "serial", "--shard"]
        )
        assert code == 2

    def test_directed_graph_runs_unsharded(self):
        # directed sub-graphs decline the plan and run whole — the
        # config composes, the scores stay exact
        edges = [(i, (i + 1) % 30) for i in range(30)] + [
            (i, (i + 7) % 30) for i in range(30)
        ]
        g = from_edges(edges, n=30, directed=True)
        ref = brandes_bc(g)
        result = apgre_bc_detailed(
            g, APGREConfig(shard=True, shard_max_size=16)
        )
        np.testing.assert_allclose(result.scores, ref, atol=1e-9)
        assert result.stats.shards_created == 0
