"""Compression-layer smoke bench: Brandes vs APGRE vs compressed APGRE.

A small deterministic perf artifact for the structural compression
layer (:mod:`repro.compress`): one twin-heavy power-law analogue and
one chain-heavy road analogue, full end-to-end runs of Brandes, plain
APGRE and ``compress=True`` APGRE, recorded as wall-clock seconds with
the per-rule elimination tallies (twin merges, chain interiors,
pendant peels) and the compression ratio.  Results land in
``benchmarks/results/bench_compress.json`` each run; the first
recorded numbers are committed as ``benchmarks/BENCH_compress.json``
(schema_version 2 with an environment provenance block) so later PRs
have a perf trajectory to compare against.

The compression counters never feed TEPS — eliminated vertices do no
traversal work, so only wall-clock and the examined-edge tally of the
run that actually happened are recorded.

Honest numbers note: the headline >= 1.5x floor is end-to-end
compressed-APGRE against *Brandes*; the ``speedup_vs_plain`` column
records the marginal win of compression over plain APGRE honestly,
and it is modest (~1.1-1.4x on these workloads) or even slightly
below 1x on peel-heavy power-law graphs: pendant elimination already
removes most of what twin merging would, and the compressed kernel
pays integer-Dijkstra sweeps for super-edges where the plain kernel
runs unit BFS.  The floor asserted per rule below guards the achieved
level of each column, not the aspiration.

Run directly (``python benchmarks/bench_compress.py [--quick]``) or
via pytest (``pytest benchmarks/bench_compress.py --benchmark-only``).
``--quick`` shrinks the workloads for the CI smoke job.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.compress import compression_plan
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_compress.json"

#: (suite graph, scale, floor for compressed-vs-Brandes speedup) — one
#: twin/peel-heavy power-law analogue and one chain-heavy road
#: analogue, the two structural regimes the reduction ladder targets.
WORKLOADS = [
    ("com-youtube", 3.0, 1.5),
    ("USA-roadBAY", 1.5, 1.5),
]
QUICK_WORKLOADS = [
    ("com-youtube", 1.0, 1.0),
    ("USA-roadBAY", 1.0, 1.0),
]
SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _plan_tallies(graph):
    """Per-rule elimination tallies summed over the sub-graph plans."""
    part = graph_partition(graph)
    compute_alpha_beta(graph, part)
    plans = [compression_plan(sg) for sg in part.subgraphs]
    return {
        "n_original": int(sum(p.n for p in plans)),
        "n_compressed": int(sum(p.n_core for p in plans)),
        "vertices_merged": int(sum(p.vertices_merged for p in plans)),
        "chains_contracted": int(sum(p.chain_interiors for p in plans)),
        "vertices_peeled": int(sum(p.vertices_peeled for p in plans)),
        "twin_classes": int(sum(len(p.twin_classes) for p in plans)),
        "chains": int(sum(len(p.chains) for p in plans)),
    }


def measure_workload(name, scale, floor, repeat=REPEAT):
    """One graph's three-way end-to-end measurement row."""
    graph = get_graph(name, scale=scale)
    ref, t_brandes = _best_of(lambda: brandes_bc(graph), repeat)
    plain, t_plain = _best_of(lambda: apgre_bc_detailed(graph), repeat)
    comp, t_comp = _best_of(
        lambda: apgre_bc_detailed(graph, APGREConfig(compress=True)), repeat
    )
    # exactness vs uncompressed Brandes, the acceptance tolerance
    np.testing.assert_allclose(comp.scores, ref, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(plain.scores, ref, rtol=1e-9, atol=1e-9)
    tallies = _plan_tallies(graph)
    # exact-inversion identity: every eliminated vertex is accounted
    # to exactly one rule
    assert (
        tallies["vertices_merged"]
        + tallies["chains_contracted"]
        + tallies["vertices_peeled"]
        == tallies["n_original"] - tallies["n_compressed"]
    ), f"tallies identity violated on {name}"
    stats = comp.stats
    assert stats.vertices_merged == tallies["vertices_merged"]
    assert stats.chains_contracted == tallies["chains_contracted"]
    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "brandes_seconds": round(t_brandes, 4),
        "apgre_seconds": round(t_plain, 4),
        "compressed_seconds": round(t_comp, 4),
        "speedup_vs_brandes": round(t_brandes / t_comp, 3),
        "speedup_vs_plain": round(t_plain / t_comp, 3),
        "floor_vs_brandes": floor,
        "compression_ratio": round(stats.compression_ratio, 3),
        "tallies": tallies,
    }


def run_bench(workloads, repeat=REPEAT, results_path=None):
    rows = [measure_workload(*w, repeat=repeat) for w in workloads]
    payload = {
        "bench": "bench_compress",
        "schema_version": 2,
        "environment": environment_provenance(),
        "seed": SEED,
        "repeat": repeat,
        "workloads": rows,
    }
    if results_path is not None:
        results_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    for row in rows:
        assert row["speedup_vs_brandes"] >= row["floor_vs_brandes"], (
            f"compressed APGRE regressed on {row['graph']}: "
            f"{row['speedup_vs_brandes']}x vs Brandes "
            f"(floor {row['floor_vs_brandes']}x)"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_rows = {r["graph"]: r for r in baseline["workloads"]}
        for row in rows:
            base = base_rows.get(row["graph"])
            if base is None or base["scale"] != row["scale"]:
                continue
            assert (
                row["speedup_vs_brandes"]
                >= 0.5 * base["speedup_vs_brandes"]
            ), (
                f"{row['graph']}: {row['speedup_vs_brandes']}x fell to "
                f"less than half the committed baseline "
                f"{base['speedup_vs_brandes']}x"
            )
            # the reduction ladder is deterministic: the committed
            # per-rule tallies must reproduce exactly
            assert row["tallies"] == base["tallies"], (
                f"{row['graph']}: elimination tallies drifted from the "
                f"committed baseline"
            )
    return payload


def test_compress_smoke(results_dir):
    run_bench(WORKLOADS, results_path=results_dir / "bench_compress.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads + single repeat (CI smoke job)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        run_bench(QUICK_WORKLOADS, repeat=1)
    else:
        results = Path(__file__).resolve().parent / "results"
        results.mkdir(exist_ok=True)
        run_bench(WORKLOADS, results_path=results / "bench_compress.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
