#!/usr/bin/env python
"""Quickstart: exact betweenness centrality with APGRE.

Builds a small social-style graph, computes BC three ways (APGRE, the
serial Brandes baseline, and sampling), shows they agree, and peeks at
the articulation-point decomposition that makes APGRE fast.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import apgre_bc, apgre_bc_detailed, brandes_bc, from_edges
from repro.baselines import sampling_bc
from repro.decompose import graph_partition
from repro.metrics.stats import partition_stats

# A tiny "two communities + bridge + hangers-on" graph: vertex 4 is the
# bridge everyone must cross, vertices 9-11 are pendant accounts.
EDGES = [
    # community A (clique-ish)
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 3),
    # the bridge
    (3, 4), (4, 5),
    # community B
    (5, 6), (5, 7), (6, 7), (6, 8), (7, 8),
    # pendants
    (2, 9), (6, 10), (6, 11),
]


def main() -> None:
    graph = from_edges(EDGES, directed=False)
    print(f"graph: {graph}")

    # --- exact BC via APGRE -------------------------------------------------
    scores = apgre_bc(graph)
    ranked = np.argsort(-scores)
    print("\nexact BC (APGRE), highest first:")
    for v in ranked[:5].tolist():
        print(f"  vertex {v:2d}  bc = {scores[v]:7.2f}")

    # --- it matches plain Brandes exactly ----------------------------------
    reference = brandes_bc(graph)
    assert np.allclose(scores, reference)
    print("\nAPGRE == Brandes:", np.allclose(scores, reference))

    # --- what the decomposition saw -----------------------------------------
    partition = graph_partition(graph)
    stats = partition_stats(partition, name="quickstart")
    print(
        f"\ndecomposition: {stats.num_subgraphs} sub-graphs, top holds "
        f"{stats.top.num_vertices} vertices "
        f"({stats.top.vertex_fraction:.0%} of the graph)"
    )
    detailed = apgre_bc_detailed(graph)
    print(
        f"removed pendant sources: {detailed.stats.num_removed_pendants}, "
        f"BFS sources actually run: {detailed.stats.num_sources} "
        f"(vs {graph.n} for Brandes)"
    )

    # --- cheap approximation for when exact is too slow ---------------------
    approx = sampling_bc(graph, k=8, seed=42)
    top_exact = int(np.argmax(scores))
    top_approx = int(np.argmax(approx))
    print(
        f"\nsampling estimate (k=8) picks vertex {top_approx} as most "
        f"central; exact answer is vertex {top_exact}"
    )


if __name__ == "__main__":
    main()
