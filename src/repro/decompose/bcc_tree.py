"""The block-cut tree.

"Any connected graph decomposes into a tree of biconnected components.
These biconnected components are attached to each other at shared
vertices called articulation points." (paper §3.1, property 3.)

The tree is bipartite: *block* nodes (one per biconnected component)
and *cut* nodes (one per articulation point); a block is adjacent to
the cut vertices it contains. For forests of components the structure
is a forest of block-cut trees, which this module handles uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.decompose.articulation import BCCResult

__all__ = ["BlockCutTree", "build_block_cut_tree"]


@dataclass
class BlockCutTree:
    """Bipartite adjacency between biconnected components and cut vertices.

    Attributes
    ----------
    bcc:
        The underlying decomposition.
    block_cuts:
        ``block_cuts[c]`` lists the articulation points contained in
        component ``c``.
    cut_blocks:
        Maps each articulation point to the component ids containing
        it (always >= 2 entries — that is what being a cut vertex
        means).
    """

    bcc: BCCResult
    block_cuts: List[np.ndarray]
    cut_blocks: Dict[int, np.ndarray]

    @property
    def num_blocks(self) -> int:
        return len(self.block_cuts)

    def block_neighbors(self, c: int) -> List[int]:
        """Components sharing an articulation point with component ``c``."""
        out: List[int] = []
        for a in self.block_cuts[c]:
            for other in self.cut_blocks[int(a)]:
                if other != c:
                    out.append(int(other))
        return out

    def degree_of_cut(self, a: int) -> int:
        """Number of components attached at articulation point ``a``."""
        return int(self.cut_blocks[int(a)].size)


def build_block_cut_tree(bcc: BCCResult) -> BlockCutTree:
    """Assemble the block-cut tree from a BCC decomposition."""
    art_flags = bcc.articulation_flags
    block_cuts: List[np.ndarray] = []
    cut_blocks_lists: Dict[int, List[int]] = {}
    for c, verts in enumerate(bcc.component_vertices):
        cuts = verts[art_flags[verts]]
        block_cuts.append(cuts)
        for a in cuts.tolist():
            cut_blocks_lists.setdefault(a, []).append(c)
    cut_blocks = {
        a: np.asarray(blocks, dtype=np.int64)
        for a, blocks in cut_blocks_lists.items()
    }
    return BlockCutTree(bcc=bcc, block_cuts=block_cuts, cut_blocks=cut_blocks)
