"""Figure 10 — APGRE scaling to 32 workers (the paper's 4-socket run).

Same methodology as Figure 9, APGRE only, worker counts up to 32.
The model column shows where coarse-grained scaling saturates — the
task-granularity bound the paper works around with its fine-grained
level (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.experiments import fig10

from conftest import one_shot


def test_report_fig10(benchmark, report):
    result = one_shot(benchmark, fig10)
    workers = [row[0] for row in result.rows]
    assert workers == [1, 2, 4, 8, 16, 32]
    model = [row[-1] for row in result.rows]
    # monotone non-decreasing, saturating (32-worker gain over 16 is
    # bounded by the remaining task granularity)
    assert all(b >= a - 1e-9 for a, b in zip(model, model[1:]))
    report(result)
