"""Sharding bench: splitting the dominant BCC vs computing it whole.

The workload is the case sharding exists for: a ring of dense blobs
whose closing cycle fuses everything into ONE biconnected component,
so unsharded APGRE sees a single sub-graph holding ~100 % of the
vertices and the whole run serialises behind it (root slicing spreads
the sources but every slice still sweeps the full CSR).  With
``shard=True`` the same run splits that sub-graph into balanced shards
— each sweep touches a shard-plus-separator graph a fraction of the
size — and the shards schedule as independent LPT units.

One row per execution path (serial / threads backend) x {unsharded,
sharded}.  Scores are asserted sharded == unsharded to 1e-9, the
sharded run must traverse strictly fewer edges (the work reduction is
the point, not a scheduling artifact), and every sharded row reports
``model_speedup`` — ``sum(task_cost) / lpt_makespan`` over the
per-shard ``task_cost(num_arcs, num_roots)`` weights — so the
schedule's headroom is visible even on hosts too small to realise it.

Honest numbers note: the acceptance bar (sharded threads >= 1.3x over
unsharded threads at 4 workers) is a multi-core number; on a 1-CPU
container the measured ratio mostly reflects the serial work
reduction.  CI enforces the bar on a >= 4-core runner via
``--min-speedup`` (see .github/workflows/ci.yml, job
``bench-multicore``); the committed ``BENCH_shard.json`` records what
this host measured with the environment block saying exactly what the
host was.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.persistence import environment_provenance
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.graph.csr import CSRGraph
from repro.parallel.pool import available_workers
from repro.parallel.scheduler import lpt_makespan, task_cost

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise
WORKERS = 4
QUICK_WORKERS = 2

#: (blobs, blob_size, p, shard_max_size)
FULL_SHAPE = (8, 120, 0.08, 200)
QUICK_SHAPE = (4, 48, 0.15, 64)

#: Measured sharded-over-unsharded bar per path, applied only when the
#: host has the cores to hold it (threads needs real parallelism on
#: top of the work reduction; serial shows the reduction alone).
SPEEDUP_TARGETS = {"threads": 1.3}


def ring_of_blobs(blobs, blob_size, p, *, seed=SEED):
    """A cycle of G(n, p) blobs fused into one dominant BCC.

    Each blob gets an internal Hamiltonian cycle (connectivity) plus
    random G(n, p) arcs; consecutive blobs are joined by one edge and
    the ring closes, so every joining edge lies on the global cycle
    and the whole graph is a single biconnected component.
    """
    rng = np.random.default_rng(seed)
    n = blobs * blob_size
    src, dst = [], []
    for b in range(blobs):
        lo = b * blob_size
        verts = np.arange(lo, lo + blob_size)
        src.append(verts)
        dst.append(np.roll(verts, -1))
        mask = rng.random((blob_size, blob_size)) < p
        iu, ju = np.triu_indices(blob_size, k=2)
        keep = mask[iu, ju]
        src.append(lo + iu[keep])
        dst.append(lo + ju[keep])
        # ring edge: this blob's mid vertex to the next blob's start
        src.append(np.array([lo + blob_size // 2]))
        dst.append(np.array([((b + 1) % blobs) * blob_size]))
    return CSRGraph.from_arcs(
        n, np.concatenate(src), np.concatenate(dst), directed=False
    )


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _config(shape, *, shard, path, workers):
    kw = {}
    if path == "threads":
        kw = {"backend": "threads", "workers": workers}
    if shard:
        kw.update(shard=True, shard_max_size=shape[3])
    return APGREConfig(**kw)


def _model_speedup(graph, shape, workers):
    """Work/critical-path bound over the sharded unit weights."""
    from repro.decompose.alphabeta import compute_alpha_beta
    from repro.decompose.partition import graph_partition
    from repro.shard.plan import shard_plan

    part = graph_partition(graph, threshold=2)
    compute_alpha_beta(graph, part)
    weights = []
    for sg in part.subgraphs:
        plan = shard_plan(sg, max_size=shape[3])
        if plan is None:
            weights.append(task_cost(sg.num_arcs, sg.roots.size))
            continue
        for shard in range(plan.k):
            h = plan.shard_graphs[shard]
            n_roots = plan.home_roots(sg.roots, shard).size
            weights.append(task_cost(h.num_arcs, n_roots))
    return sum(weights) / lpt_makespan(weights, workers), len(weights)


def measure(shape, workers=WORKERS, paths=("serial", "threads")):
    """Unsharded vs sharded rows for every execution path."""
    blobs, blob_size, p, max_size = shape
    graph = ring_of_blobs(blobs, blob_size, p)
    model, units = _model_speedup(graph, shape, workers)

    rows = []
    reference = None
    for path in paths:
        runs = {}
        for shard in (False, True):
            cfg = _config(shape, shard=shard, path=path, workers=workers)
            result, seconds = _best_of(lambda: apgre_bc_detailed(graph, cfg))
            runs[shard] = (result, seconds)
        (plain, t_plain), (sharded, t_sharded) = runs[False], runs[True]
        if reference is None:
            reference = plain.scores
        np.testing.assert_allclose(
            sharded.scores, reference, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            plain.scores, reference, rtol=1e-9, atol=1e-9
        )
        # the structural claim: sharding must cut traversal work, not
        # just reshuffle it (correction replays included in the tally)
        assert (
            sharded.stats.edges_traversed < plain.stats.edges_traversed
        ), (
            f"{path}: sharded traversal {sharded.stats.edges_traversed} "
            f">= unsharded {plain.stats.edges_traversed}"
        )
        assert sharded.stats.shards_created >= 2
        assert sharded.stats.largest_shard_ratio < 1.0
        rows.append({
            "path": path,
            "n": graph.n,
            "m": graph.num_arcs,
            "workers": workers if path != "serial" else 1,
            "shard_max_size": max_size,
            "shards_created": sharded.stats.shards_created,
            "separator_vertices": sharded.stats.separator_vertices,
            "largest_shard_ratio": round(
                sharded.stats.largest_shard_ratio, 4
            ),
            "schedule_units": units,
            "edges_traversed_unsharded": plain.stats.edges_traversed,
            "edges_traversed_sharded": sharded.stats.edges_traversed,
            "edges_correction": sharded.stats.edges_correction,
            "unsharded_seconds": round(t_plain, 4),
            "sharded_seconds": round(t_sharded, 4),
            "speedup": round(t_plain / t_sharded, 3),
            "model_speedup": round(model, 3),
        })
    return rows


def run_bench(quick=False, out_path=None, workers=None, paths=None):
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    if workers is None:
        workers = QUICK_WORKERS if quick else WORKERS
    if paths is None:
        paths = ("serial", "threads")
    rows = measure(shape, workers=workers, paths=paths)
    payload = {
        "bench": "bench_shard",
        "seed": SEED,
        "repeat": REPEAT,
        "quick": quick,
        "shape": list(shape),
        "environment": environment_provenance(
            workers=workers, backend=",".join(paths)
        ),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_shard.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False, min_speedup=None):
    """Perf guards, scaled to what this machine can actually show.

    ``min_speedup`` (the CI knob) unconditionally asserts the threads
    row reaches that measured sharded-over-unsharded ratio — the
    caller is vouching for the cores (the workflow gates on
    ``nproc``).  Without it, ``SPEEDUP_TARGETS`` applies only when
    ``available_workers()`` covers the worker count.
    """
    cores = available_workers()
    for row in rows:
        target = SPEEDUP_TARGETS.get(row["path"])
        if min_speedup is not None and row["path"] != "serial":
            assert row["speedup"] >= min_speedup, (
                f"{row['path']}: sharded measured {row['speedup']}x at "
                f"{row['workers']} workers is below the enforced "
                f"--min-speedup {min_speedup}x"
            )
        elif target is not None and not quick and cores >= row["workers"]:
            assert row["speedup"] >= target, (
                f"{row['path']}: {row['speedup']}x at {row['workers']} "
                f"workers on {cores} cores (target >= {target}x)"
            )
        # the schedule must expose real fan-out even when the host
        # cannot realise it — one giant unit means the split failed
        assert row["model_speedup"] >= 2.0 or row["workers"] < 4, (
            f"shard schedule shows only {row['model_speedup']}x LPT "
            f"headroom over {row['schedule_units']} units"
        )
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {r["path"]: r for r in baseline["workloads"]}
    for row in rows:
        base = base_rows.get(row["path"])
        if base is None:
            continue
        assert row["speedup"] >= 0.5 * base["speedup"], (
            f"{row['path']}: sharded speedup {row['speedup']}x fell to "
            f"less than half the committed baseline {base['speedup']}x"
        )


def test_shard_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small ring, 2 workers — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    parser.add_argument(
        "--path",
        action="append",
        choices=("serial", "threads"),
        default=None,
        help="execution path(s) to measure (repeatable; default both)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker count (default {QUICK_WORKERS} with --quick, "
        f"else {WORKERS})",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="unconditionally require the threads row to reach X "
        "measured sharded-over-unsharded speedup (the CI enforcement "
        "knob — only pass on a host with enough cores)",
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(
        quick=args.quick,
        out_path=args.out,
        workers=args.workers,
        paths=tuple(args.path) if args.path else None,
    )
    print(json.dumps(payload, indent=2))
    check_rows(
        payload["workloads"], quick=args.quick, min_speedup=args.min_speedup
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
