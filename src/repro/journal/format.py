"""On-disk record format of the run journal.

The journal log is a plain-text, append-only file of one record per
line::

    J1 <blake2b-128 hex> <compact JSON body>\n

The checksum covers exactly the JSON bytes, so *any* torn tail — a
record cut mid-line by a crash, ``ENOSPC`` truncation, or a corrupted
byte — fails verification and is dropped together with everything
after it.  Records are never trusted structurally: a line that parses
as JSON but fails its checksum is as dead as a half-written one.

Record bodies are dicts with a ``type`` key:

``header``
    First record of every journal.  Carries the run fingerprint
    (graph hash + score-relevant config digest — see
    :func:`repro.journal.journal.run_fingerprint`) and environment
    provenance.
``contribution``
    One completed sub-graph contribution: the sub-graph index, its
    payload file name, the BLAKE2b digest of the payload bytes, the
    local vertex count and the exact examined-edge tally.
``final``
    Terminal marker (``status`` of ``complete`` / ``partial`` /
    ``interrupted``).  Purely informational: resume replays
    contribution records whether or not a final record exists.

Binary score vectors live *outside* the log, one raw ``.npy`` per
sub-graph written with the same atomic write-then-rename discipline as
:mod:`repro.cache.store`; the log records their content digest so a
torn payload (rename survived, bytes did not) is detected on replay
and degrades to a recompute, never to silently wrong scores.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RECORD_MAGIC",
    "encode_record",
    "decode_line",
    "payload_digest",
    "scan_log",
]

#: Line magic; bumped on any framing change so an old reader can never
#: misparse a new journal (and vice versa).
RECORD_MAGIC = "J1"

#: BLAKE2b digest width (hex chars = 2x) — matches the cache
#: fingerprints' 128-bit collision margin.
_DIGEST_SIZE = 16


def _digest(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


def payload_digest(data: bytes) -> str:
    """Content digest recorded for (and checked against) payload files."""
    return _digest(data)


def encode_record(body: Dict) -> bytes:
    """Serialise one record body to its checksummed log line."""
    payload = json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode()
    return b" ".join(
        (RECORD_MAGIC.encode(), _digest(payload).encode(), payload)
    ) + b"\n"


def decode_line(line: bytes) -> Optional[Dict]:
    """Parse one log line; ``None`` for anything torn or corrupt."""
    if not line.endswith(b"\n"):
        return None  # truncated tail: the write never completed
    parts = line.rstrip(b"\n").split(b" ", 2)
    if len(parts) != 3 or parts[0] != RECORD_MAGIC.encode():
        return None
    checksum, payload = parts[1], parts[2]
    if _digest(payload).encode() != checksum:
        return None
    try:
        body = json.loads(payload)
    except json.JSONDecodeError:  # pragma: no cover - checksum passed
        return None
    return body if isinstance(body, dict) else None


def scan_log(path: Path) -> Tuple[List[Dict], int]:
    """Read every valid record of a journal log.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    offset one past the last valid record — the clean resume point a
    re-opened journal truncates to before appending.  Scanning stops
    at the first invalid line: a torn record's bytes are garbage and
    nothing after them has a trustworthy frame boundary.
    """
    records: List[Dict] = []
    valid_bytes = 0
    try:
        data = Path(path).read_bytes()
    except OSError:
        return records, valid_bytes
    offset = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        if end < 0:
            break  # torn tail without a newline
        line = data[offset : end + 1]
        body = decode_line(line)
        if body is None:
            break
        records.append(body)
        offset = end + 1
        valid_bytes = offset
    return records, valid_bytes
