"""Adaptive-sampling approximate BC (Bader et al., WAW 2007).

The paper's related work surveys approximation algorithms that
"perform the shortest path computations for only a subset of vertices"
(§6, citing Bader–Kintali–Madduri–Mihail). This is their adaptive
scheme for estimating a *single* vertex's BC: sample pivot sources one
at a time and stop as soon as the accumulated dependency on the target
exceeds ``c·n`` — high-centrality vertices converge after very few
pivots, with a provable (ε, δ) style guarantee for c ≥ 2.

Complements :func:`repro.baselines.sampling.sampling_bc` (fixed-k,
all-vertex estimates) with a targeted early-stopping estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import per_source_delta
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["AdaptiveEstimate", "adaptive_bc"]


@dataclass
class AdaptiveEstimate:
    """Result of an adaptive BC estimation for one vertex."""

    vertex: int
    estimate: float
    samples: int  # pivot sources actually expanded
    converged: bool  # stopped via the c·n rule (vs pivot exhaustion)


def adaptive_bc(
    graph: CSRGraph,
    vertex: int,
    *,
    c: float = 2.0,
    max_fraction: float = 1.0,
    seed: Seed = None,
) -> AdaptiveEstimate:
    """Estimate ``BC(vertex)`` by adaptive pivot sampling.

    Parameters
    ----------
    graph:
        Any graph.
    vertex:
        The vertex whose centrality is wanted.
    c:
        Stopping constant: sampling halts once the summed dependency
        reaches ``c·n``. Bader et al. prove small relative error with
        high probability for ``c >= 2`` on high-centrality vertices.
    max_fraction:
        Budget cap as a fraction of ``n`` pivots; hitting the cap
        returns ``converged=False`` (the estimate then equals the
        plain k-sample estimator).
    seed:
        RNG seed for the pivot order.

    Notes
    -----
    The estimator is ``n/k · Σ δ_pivot(vertex)`` after ``k`` pivots —
    unbiased at any fixed ``k``; adaptive stopping trades a small bias
    for dramatically fewer samples on central vertices.
    """
    n = graph.n
    if not 0 <= vertex < n:
        raise AlgorithmError(f"vertex {vertex} outside [0, {n})")
    if c <= 0:
        raise AlgorithmError(f"stopping constant c must be > 0, got {c}")
    if not 0 < max_fraction <= 1:
        raise AlgorithmError(
            f"max_fraction must be in (0, 1], got {max_fraction}"
        )
    rng = as_rng(seed)
    order = rng.permutation(n)
    budget = max(int(np.ceil(max_fraction * n)), 1)
    total = 0.0
    samples = 0
    converged = False
    for s in order[:budget].tolist():
        delta = per_source_delta(graph, int(s))
        samples += 1
        if s != vertex:
            total += float(delta[vertex])
        if total >= c * n:
            converged = True
            break
    estimate = total * n / samples if samples else 0.0
    return AdaptiveEstimate(
        vertex=int(vertex),
        estimate=estimate,
        samples=samples,
        converged=converged,
    )
