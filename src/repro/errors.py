"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while letting programming errors (``TypeError``
from bad call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "PartitionError",
    "AlgorithmError",
    "BenchmarkError",
    "CacheError",
    "JournalError",
    "ServeError",
    "ExecutionError",
    "WorkerCrashError",
    "TaskTimeoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory payload could not be parsed.

    Raised by the :mod:`repro.io` readers when the input violates the
    expected on-disk format (bad header, non-integer endpoint, truncated
    record, ...). The message always includes the offending location
    (line number or field) when one is available.
    """


class GraphValidationError(ReproError):
    """A graph object violates a structural invariant.

    Raised by :func:`repro.graph.validate.validate_graph` and by CSR
    constructors when handed inconsistent arrays (unsorted ``indptr``,
    out-of-range vertex ids, ...).
    """


class PartitionError(ReproError):
    """Graph decomposition produced or was handed an inconsistent state.

    Raised by :mod:`repro.decompose` when a partition does not cover the
    graph, when a sub-graph references unknown articulation points, or
    when α/β counting detects an impossible configuration.
    """


class AlgorithmError(ReproError):
    """A BC algorithm was invoked with unsupported options or inputs.

    For example the asynchronous baseline only supports undirected
    graphs (mirroring the paper's ``async`` comparator) and raises this
    error for directed input.
    """


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured.

    Raised by :mod:`repro.bench` for unknown experiment ids, empty
    workload selections and similar harness-level misuse.
    """


class CacheError(ReproError):
    """The contribution cache was misconfigured or cannot persist.

    Raised by :mod:`repro.cache` for invalid store budgets, a
    ``cache_dir`` that cannot be written, or a store/``cache_dir``
    configuration conflict. A *corrupted* on-disk entry is never an
    error — it degrades to a cache miss and is recomputed.
    """


class JournalError(ReproError):
    """The run journal was misconfigured or cannot honour a resume.

    Raised by :mod:`repro.journal` for an unwritable ``journal_dir``,
    a resume against a directory holding no valid journal, or a header
    fingerprint that does not match the graph/configuration being
    resumed.  A *corrupted* journal tail is never an error — checksum
    validation drops the torn records and the affected sub-graphs are
    recomputed (docs/ROBUSTNESS.md).
    """


class ServeError(ReproError):
    """The serving daemon was misconfigured or received a bad request.

    Raised by :mod:`repro.serve` for an unbindable address, malformed
    request parameters, or a delta payload that cannot be applied.
    Request-level instances carry an ``http_status`` attribute so the
    HTTP layer can map them to 400/409/503 responses; failures of the
    *computation* behind a request surface as the ordinary
    :class:`ExecutionError` family instead.
    """

    def __init__(self, message: str, *, http_status: int = 400) -> None:
        super().__init__(message)
        self.http_status = int(http_status)


class ExecutionError(ReproError):
    """Supervised coarse-grained execution could not produce a result.

    Base class for failures of the :mod:`repro.parallel.supervisor`
    layer — a task that exhausted its retry budget, an unhealthy pool
    with fallback disabled, or a serial re-run that itself failed.
    The message always names the task and the attempt count.
    """


class WorkerCrashError(ExecutionError):
    """A worker process died (segfault, OOM kill, ``os._exit``).

    Raised only when fallback is disabled or every rung of the
    degradation ladder (pool retry → serial re-run) is exhausted;
    with fallback enabled the supervisor re-runs the task instead.
    """


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock budget.

    The stuck worker is killed before this is raised, so a timeout
    never leaves the pool occupied by a runaway task.
    """
