"""Figure 6 — speedups of every algorithm relative to serial.

A ratio view over Table 2's memoised timings, rendered both as the
numeric series and as ASCII bars per graph (the paper's bar chart).
"""

from repro.bench.experiments import fig6
from repro.bench.report import render_bars

from conftest import one_shot


def test_report_fig6(benchmark, report, results_dir, capsys):
    result = one_shot(benchmark, fig6)
    # APGRE (column 1) must be the best exact algorithm on most graphs
    wins = 0
    for row in result.rows:
        speedups = [s for s in row[1:] if s is not None]
        if row[1] == max(speedups):
            wins += 1
    assert wins >= len(result.rows) * 0.7, "APGRE lost too many graphs"
    report(result)
    # bar-chart rendering of the APGRE column
    labels = [row[0] for row in result.rows]
    values = [row[1] for row in result.rows]
    bars = render_bars(
        "Figure 6 (bars): APGRE speedup over serial", labels, values, unit="x"
    )
    (results_dir / "figure6_bars.txt").write_text(bars + "\n")
    with capsys.disabled():
        print(f"\n{bars}\n")
