"""Compute-kernel registry for the batched traversal layer.

:mod:`repro.parallel.backends` answers *where* a run executes (serial,
threads, processes); this registry answers *how* each (sub-graph,
batch) traverses its arcs, one level down.  Every registered
:class:`ComputeKernel` is a batched-contributions implementation with
a capability probe, so optional dependencies degrade to a clean miss
(the cache's disk-layer policy) instead of an import error:

``"arcs"``
    The pure-numpy flattened-scatter kernel
    (:func:`repro.graph.batched.arcs_contributions`) — always
    available, per-row bit-identical to the serial per-source path.
``"spmm"``
    The scipy ``csr_matmat`` level kernel
    (:func:`repro.graph.batched.spmm_contributions`) — the default
    whenever scipy's C backend imports.
``"pull"``
    The direction-optimizing (push/pull) kernel
    (:mod:`repro.graph.kernels.pull`): Beamer-style top-down /
    bottom-up switching on union-frontier density, pure numpy, always
    available.  Bottom-up probes are tallied separately
    (``edges_pulled``) but stay inside TEPS.
``"numba"``
    An optional ``@njit(nogil=True)`` per-source Brandes kernel
    (:mod:`repro.graph.kernels.nogil`) behind a lazy import probe;
    absent numba is a clean miss, never an error.

``resolve_kernel_name`` mirrors ``resolve_backend``: an explicit name
wins, then the ``REPRO_KERNEL`` environment variable, then ``"auto"``
— which picks per sub-graph from cheap structural features (density,
two-sweep estimated diameter, BFS coverage, batch width) and **never**
selects an unavailable kernel.  Explicitly requesting an unavailable kernel
degrades to the default with a :class:`RuntimeWarning`.
"""

from __future__ import annotations

import os
import warnings
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.batched import (
    _spmm_operands_for,
    arcs_contributions,
    spmm_available,
    spmm_contributions,
)
from repro.graph.csr import CSRGraph

__all__ = [
    "KERNEL_ENV_VAR",
    "ComputeKernel",
    "KernelFeatures",
    "register_kernel",
    "kernel_names",
    "get_kernel",
    "default_kernel_name",
    "resolve_kernel_name",
    "select_kernel",
    "kernel_features",
    "kernel_report",
]

#: Environment override consulted when no explicit kernel is passed
#: (mirrors ``REPRO_PARALLEL_BACKEND`` at the scheduling layer).
KERNEL_ENV_VAR = "REPRO_KERNEL"

# ``auto`` selection thresholds: the pull kernel pays a full bottom-up
# probe of every unvisited in-arc per pulled level (σ-counting has no
# first-parent early exit), which only beats top-down expansion when
# BFS *saturates* — most vertices reachable, few levels, and arcs
# dense enough that one or two frontiers carry most of the mass.
# Sparse or partially-reachable graphs keep unvisited in-arc mass high
# for many levels and re-probe it each one, so the thresholds are
# deliberately strict (measured on the bench workloads: dense
# BA/G(n,p) shapes win 1.5-3.5x, an 8.7-avg-degree directed social
# analogue loses ~30%).
AUTO_PULL_MAX_DIAMETER = 8
AUTO_PULL_MIN_AVG_DEG = 10.0
AUTO_PULL_MIN_REACHED = 0.5
AUTO_PULL_MIN_BATCH = 8
AUTO_MIN_VERTICES = 256


@dataclass(frozen=True)
class ComputeKernel:
    """One traversal strategy for batched BC contributions.

    ``contributions(graph, sources, *, counter=None, workspace=None,
    context=None)`` returns the summed ``(n,)`` dependency vector of
    the batch with source self-dependencies zeroed — the contract of
    :func:`repro.graph.batched.batched_contributions`.  ``prepare``
    optionally builds per-run shared state (SpMM operands, compiled
    functions) handed back as ``context``; ``probe`` must be cheap and
    side-effect free after its first call.
    """

    name: str
    description: str
    probe: Callable[[], bool]
    unavailable_reason: str
    contributions: Callable[..., np.ndarray]
    prepare: Optional[Callable[[CSRGraph, int], object]] = None

    def available(self) -> bool:
        return bool(self.probe())


_REGISTRY: Dict[str, ComputeKernel] = {}


def register_kernel(kernel: ComputeKernel) -> ComputeKernel:
    """Add (or replace) a kernel in the registry."""
    _REGISTRY[kernel.name] = kernel
    return kernel


def kernel_names() -> Tuple[str, ...]:
    """Registered kernel names, registration order."""
    return tuple(_REGISTRY)


def get_kernel(name: str) -> ComputeKernel:
    """Look up a kernel; unknown names are an :class:`AlgorithmError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(list(_REGISTRY) + ["auto"])
        raise AlgorithmError(
            f"unknown compute kernel {name!r} (known: {known})"
        ) from None


def default_kernel_name() -> str:
    """The kernel ``auto`` falls back to: spmm when scipy is present."""
    return "spmm" if _REGISTRY["spmm"].available() else "arcs"


@dataclass(frozen=True)
class KernelFeatures:
    """Cheap structural features driving ``auto`` kernel selection."""

    n: int
    m: int
    avg_degree: float
    est_diameter: int
    #: best BFS coverage seen across the two sweeps, as a fraction of
    #: ``n`` — low coverage marks directed graphs whose searches never
    #: saturate (the regime where bottom-up probing re-pays the whole
    #: unreachable in-arc mass every level)
    reached: float = 1.0


# features are a pure function of the CSR, so one two-sweep BFS per
# graph object serves every chunk of a run
_FEATURE_CACHE: "weakref.WeakKeyDictionary[CSRGraph, KernelFeatures]" = (
    weakref.WeakKeyDictionary()
)


def kernel_features(graph: CSRGraph) -> KernelFeatures:
    """Structural features of ``graph`` (cached per graph object).

    The diameter estimate is the two-sweep pseudo-peripheral BFS the
    separator search already uses (:mod:`repro.shard.separator`): BFS
    from vertex 0's component, re-BFS from the farthest vertex, take
    the depth — a classic lower bound that is tight on the road/social
    shapes the suite covers.
    """
    cached = _FEATURE_CACHE.get(graph)
    if cached is not None:
        return cached
    n = int(graph.n)
    m = int(graph.num_arcs)
    if n == 0:
        feats = KernelFeatures(0, 0, 0.0, 0, 0.0)
    else:
        from repro.shard.separator import _masked_bfs

        active = np.ones(n, dtype=bool)
        d0 = _masked_bfs(graph, 0, active)
        far = int(np.argmax(d0))
        dist = _masked_bfs(graph, far, active)
        reached = max(
            int((d0 >= 0).sum()), int((dist >= 0).sum())
        ) / n
        feats = KernelFeatures(
            n=n,
            m=m,
            avg_degree=m / n,
            est_diameter=int(dist.max(initial=0)),
            reached=reached,
        )
    _FEATURE_CACHE[graph] = feats
    return feats


def select_kernel(
    graph: Optional[CSRGraph] = None, batch: Optional[int] = None
) -> str:
    """``auto`` selection: pick a kernel from structural features.

    Dense, small-diameter, mostly-reachable sub-graphs with a wide
    enough batch go to the direction-optimizing ``pull`` kernel (its
    bottom-up passes win exactly when most arcs sit in one or two
    saturated frontiers); everything else — deep road-like graphs,
    sparse social analogues, partially-reachable directed graphs, thin
    batches, tiny sub-graphs — stays on the spmm/arcs default.  Only
    available kernels are ever returned.
    """
    if graph is None:
        return default_kernel_name()
    feats = kernel_features(graph)
    if (
        _REGISTRY["pull"].available()
        and feats.n >= AUTO_MIN_VERTICES
        and feats.avg_degree >= AUTO_PULL_MIN_AVG_DEG
        and 0 < feats.est_diameter <= AUTO_PULL_MAX_DIAMETER
        and feats.reached >= AUTO_PULL_MIN_REACHED
        and (batch is None or batch >= AUTO_PULL_MIN_BATCH)
    ):
        return "pull"
    return default_kernel_name()


def resolve_kernel_name(
    name: Optional[str],
    *,
    graph: Optional[CSRGraph] = None,
    batch: Optional[int] = None,
) -> str:
    """Resolve a kernel option to an available registered name.

    ``None`` defers to ``REPRO_KERNEL`` and then ``"auto"``; ``"auto"``
    selects per (graph, batch) via :func:`select_kernel`.  A known but
    unavailable kernel degrades to :func:`default_kernel_name` with a
    :class:`RuntimeWarning`; an unknown name raises.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR, "").strip() or "auto"
    if name == "auto":
        return select_kernel(graph, batch)
    kernel = get_kernel(name)
    if not kernel.available():
        fallback = default_kernel_name()
        warnings.warn(
            f"compute kernel '{name}' unavailable "
            f"({kernel.unavailable_reason}); falling back to "
            f"'{fallback}'",
            RuntimeWarning,
            stacklevel=2,
        )
        return fallback
    return name


def kernel_report() -> Dict[str, Dict[str, object]]:
    """Probe results for every registered kernel (CLI / provenance)."""
    report: Dict[str, Dict[str, object]] = {}
    default = default_kernel_name()
    for name, kernel in _REGISTRY.items():
        ok = kernel.available()
        report[name] = {
            "available": ok,
            "default": name == default,
            "description": kernel.description,
            "reason": None if ok else kernel.unavailable_reason,
        }
    return report


# ---------------------------------------------------------------------------
# registrations


def _arcs_kernel_contributions(
    graph, sources, *, counter=None, workspace=None, context=None
):
    return arcs_contributions(
        graph, sources, counter=counter, workspace=workspace
    )


def _spmm_kernel_contributions(
    graph, sources, *, counter=None, workspace=None, context=None
):
    return spmm_contributions(
        graph, sources, counter=counter, operands=context,
        workspace=workspace,
    )


register_kernel(ComputeKernel(
    name="arcs",
    description="pure-numpy flattened scatters (bit-identical to serial)",
    probe=lambda: True,
    unavailable_reason="",
    contributions=_arcs_kernel_contributions,
))

register_kernel(ComputeKernel(
    name="spmm",
    description="scipy csr_matmat level products (C-compiled expansion)",
    probe=spmm_available,
    unavailable_reason="scipy.sparse._sparsetools is not importable",
    contributions=_spmm_kernel_contributions,
    prepare=_spmm_operands_for,
))

from repro.graph.kernels import nogil as _nogil  # noqa: E402
from repro.graph.kernels import pull as _pull  # noqa: E402

register_kernel(ComputeKernel(
    name="pull",
    description=(
        "direction-optimizing push/pull BFS (bottom-up gathers over "
        "unvisited rows)"
    ),
    probe=lambda: True,
    unavailable_reason="",
    contributions=_pull.pull_contributions,
))

register_kernel(ComputeKernel(
    name="numba",
    description="numba @njit(nogil=True) per-source Brandes over CSR",
    probe=_nogil.numba_available,
    unavailable_reason="numba is not importable (optional dependency)",
    contributions=_nogil.numba_contributions,
    prepare=_nogil.prepare_numba,
))
