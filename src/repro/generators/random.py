"""Classic uniform random graph models (Erdős–Rényi G(n,p) and G(n,m)).

Both generators are fully vectorised and deterministic for a given
seed, making benchmark workloads reproducible byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["gnp_random_graph", "gnm_random_graph"]


def gnp_random_graph(
    n: int, p: float, *, directed: bool = False, seed: Seed = None
) -> CSRGraph:
    """G(n, p): every (ordered) pair is an arc independently with prob ``p``.

    Uses the geometric skip-sampling trick (O(m) expected work) instead
    of materialising the n² Bernoulli matrix, so sparse graphs of any
    ``n`` are cheap.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError(f"p must be in [0, 1], got {p}")
    rng = as_rng(seed)
    if n == 0 or p == 0.0:
        return CSRGraph.from_arcs(n, [], [], directed=directed)
    # number of candidate slots (ordered pairs minus diagonal for
    # directed; upper triangle for undirected)
    slots = n * (n - 1) if directed else n * (n - 1) // 2
    if p >= 1.0:
        picks = np.arange(slots, dtype=np.int64)
    else:
        # geometric gaps between successive successes
        expected = int(slots * p)
        margin = 4 * int(np.sqrt(expected + 1)) + 16
        gaps = rng.geometric(p, size=expected + margin)
        picks = np.cumsum(gaps) - 1
        while picks.size and picks[-1] < slots - 1 and p > 0:
            extra = rng.geometric(p, size=margin)
            picks = np.concatenate([picks, picks[-1] + np.cumsum(extra)])
        picks = picks[picks < slots]
    if directed:
        src = picks // (n - 1)
        rem = picks % (n - 1)
        dst = np.where(rem >= src, rem + 1, rem)  # skip the diagonal
    else:
        # invert the triangular index: row r starts at r*n - r(r+1)/2
        src = (
            n
            - 2
            - np.floor(
                np.sqrt(-8.0 * picks + 4.0 * n * (n - 1) - 7.0) / 2.0 - 0.5
            )
        ).astype(np.int64)
        dst = picks + src + 1 - src * n + src * (src + 1) // 2
    return CSRGraph.from_arcs(n, src, dst, directed=directed)


def gnm_random_graph(
    n: int, m: int, *, directed: bool = False, seed: Seed = None
) -> CSRGraph:
    """G(n, m): exactly ``m`` distinct arcs/edges chosen uniformly.

    ``m`` is capped at the number of available slots. Sampling is
    rejection-free via ``Generator.choice`` without replacement on the
    linearised pair index.
    """
    rng = as_rng(seed)
    slots = n * (n - 1) if directed else n * (n - 1) // 2
    m = min(int(m), slots)
    if m < 0:
        raise GraphValidationError(f"m must be >= 0, got {m}")
    if n == 0 or m == 0:
        return CSRGraph.from_arcs(n, [], [], directed=directed)
    if slots <= 16_000_000:
        picks = rng.choice(slots, size=m, replace=False).astype(np.int64)
    else:  # avoid a giant permutation buffer for huge n
        picks = np.unique(rng.integers(0, slots, size=int(m * 1.2) + 16))
        while picks.size < m:
            more = rng.integers(0, slots, size=m)
            picks = np.unique(np.concatenate([picks, more]))
        picks = rng.permutation(picks)[:m]
    if directed:
        src = picks // (n - 1)
        rem = picks % (n - 1)
        dst = np.where(rem >= src, rem + 1, rem)
    else:
        src = (
            n
            - 2
            - np.floor(
                np.sqrt(-8.0 * picks + 4.0 * n * (n - 1) - 7.0) / 2.0 - 0.5
            )
        ).astype(np.int64)
        dst = picks + src + 1 - src * n + src * (src + 1) // 2
    return CSRGraph.from_arcs(n, src, dst, directed=directed)
