"""Table 1 — the evaluation graph suite.

Benchmarks analogue-graph construction per Table-1 row and emits the
inventory table (analogue size next to the paper's original size).
"""

import pytest

from repro.bench.experiments import table1
from repro.bench.workloads import bench_graph_names, bench_scale
from repro.generators.suite import analogue_graph

from conftest import one_shot


@pytest.mark.parametrize("name", bench_graph_names())
def test_generate_graph(benchmark, name):
    graph = one_shot(benchmark, analogue_graph, name, scale=bench_scale())
    assert graph.n > 0
    benchmark.extra_info["vertices"] = graph.n
    benchmark.extra_info["arcs"] = graph.num_arcs


def test_report_table1(benchmark, report):
    result = one_shot(benchmark, table1)
    assert len(result.rows) == len(bench_graph_names())
    report(result)
