"""Tests for the parallel substrate (pools, scheduler, shared memory)."""

import numpy as np
import pytest

from repro.parallel.pool import (
    available_workers,
    fork_map,
    get_worker_state,
    map_sources_bc,
    thread_map,
)
from repro.parallel.scheduler import (
    assign_lpt,
    lpt_makespan,
    lpt_order,
    task_cost,
)
from repro.parallel.sharedmem import SharedArray
from repro.graph.traversal import bfs_sigma


def _square(x):
    return x * x


def _state_lookup(key):
    return get_worker_state()[key]


class TestForkMap:
    def test_inline_when_single_worker(self):
        assert fork_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_results_ordered(self):
        assert fork_map(_square, list(range(10)), workers=3) == [
            i * i for i in range(10)
        ]

    def test_single_payload_runs_inline(self):
        assert fork_map(_square, [7], workers=4) == [49]

    def test_state_visible_in_workers(self):
        out = fork_map(
            _state_lookup, ["a", "a"], workers=2, state={"a": 42}
        )
        assert out == [42, 42]

    def test_empty_payloads(self):
        assert fork_map(_square, [], workers=2) == []

    def test_available_workers_positive(self):
        assert available_workers() >= 1

    def test_invalid_workers_raises(self):
        with pytest.raises(ValueError, match="workers"):
            fork_map(_square, [1, 2], workers=0)
        with pytest.raises(ValueError, match="workers"):
            fork_map(_square, [1, 2], workers=-3)

    def test_state_cleared_after_map(self):
        from repro.parallel import pool as pool_mod

        fork_map(_state_lookup, ["a", "a"], workers=2, state={"a": 1})
        assert pool_mod._STATE == {}
        # inline path clears too
        fork_map(_state_lookup, ["a"], workers=1, state={"a": 2})
        assert pool_mod._STATE == {}

    def test_state_cleared_even_when_func_raises(self):
        from repro.parallel import pool as pool_mod

        with pytest.raises(KeyError):
            fork_map(_state_lookup, ["missing"], workers=1, state={"a": 3})
        assert pool_mod._STATE == {}


class TestThreadMap:
    def test_ordered(self):
        assert thread_map(_square, list(range(8)), workers=3) == [
            i * i for i in range(8)
        ]

    def test_inline_path(self):
        assert thread_map(_square, [5], workers=8) == [25]

    def test_invalid_workers_raises(self):
        with pytest.raises(ValueError, match="workers"):
            thread_map(_square, [1], workers=0)


class TestMapSourcesBC:
    def test_matches_serial(self, und_random):
        from repro.baselines.common import run_per_source

        ref = run_per_source(und_random, mode="succs")
        out = map_sources_bc(
            und_random,
            list(range(und_random.n)),
            mode="succs",
            forward=bfs_sigma,
            workers=2,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)

    def test_empty_sources(self, und_random):
        out = map_sources_bc(
            und_random, [], mode="succs", forward=bfs_sigma, workers=2
        )
        assert (out == 0).all()


class TestScheduler:
    def test_lpt_order_descending(self):
        assert lpt_order([3, 1, 4, 1, 5]) == [4, 2, 0, 1, 3]

    def test_lpt_order_stable_ties(self):
        assert lpt_order([2, 2, 2]) == [0, 1, 2]

    def test_lpt_order_empty(self):
        assert lpt_order([]) == []

    def test_lpt_order_singleton(self):
        assert lpt_order([42.0]) == [0]

    def test_lpt_order_all_equal_is_identity(self):
        # Equal weights must come back in input order — the stable
        # sort guarantee that makes scheduling deterministic.
        assert lpt_order([7.0] * 6) == list(range(6))

    def test_lpt_order_mixed_ties_deterministic(self):
        sizes = [3, 5, 3, 5, 1]
        expected = [1, 3, 0, 2, 4]
        for _ in range(3):
            assert lpt_order(sizes) == expected

    def test_lpt_order_accepts_numpy_array(self):
        assert lpt_order(np.array([1.0, 9.0, 4.0])) == [1, 2, 0]

    def test_assign_single_worker_gets_everything(self):
        sizes = [2.0, 5.0, 1.0]
        bins = assign_lpt(sizes, 1)
        assert len(bins) == 1
        assert bins[0] == lpt_order(sizes)

    def test_assign_empty_sizes(self):
        assert assign_lpt([], 3) == [[], [], []]

    def test_assign_all_tasks_once(self):
        sizes = [5, 3, 8, 1, 9, 2]
        bins = assign_lpt(sizes, 3)
        flat = sorted(t for b in bins for t in b)
        assert flat == list(range(6))

    def test_assign_balances(self):
        sizes = [4, 4, 4, 4]
        bins = assign_lpt(sizes, 2)
        loads = [sum(sizes[t] for t in b) for b in bins]
        assert loads == [8, 8]

    def test_assign_more_workers_than_tasks(self):
        bins = assign_lpt([7], 4)
        assert len(bins) == 4
        assert sorted(t for b in bins for t in b) == [0]

    def test_assign_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            assign_lpt([1], 0)

    def test_makespan_bounds(self):
        sizes = [5.0, 3.0, 3.0, 3.0]
        for k in (1, 2, 3, 4):
            ms = lpt_makespan(sizes, k)
            assert ms >= max(sizes)  # critical path
            assert ms >= sum(sizes) / k  # work bound
        assert lpt_makespan(sizes, 1) == sum(sizes)

    def test_makespan_empty(self):
        assert lpt_makespan([], 3) == 0.0


class TestTaskCost:
    def test_sqrt_scaling_in_roots(self):
        # quadrupling the roots doubles the cost — the sub-linear
        # batching effect the model encodes
        assert task_cost(1000, 400) == pytest.approx(
            2.0 * task_cost(1000, 100)
        )

    def test_linear_in_edges(self):
        assert task_cost(2000, 9) == pytest.approx(2.0 * task_cost(1000, 9))

    def test_floors_at_one(self):
        assert task_cost(0, 0) == 1.0
        assert task_cost(0, 100) == 10.0

    def test_beats_linear_weights_on_skewed_workload(self):
        """The satellite regression: on a root-heavy vs edge-heavy mix,
        LPT weighted by edges × sqrt(roots) places tasks measurably
        better than LPT weighted by the old linear edges × roots model
        (measured against the concave cost the weights stand in for)."""
        # one root-heavy task, four edge-heavy ones, a tail of smalls
        tasks = (
            [(100, 1_000_000)]
            + [(100_000, 1)] * 4
            + [(500, 16)] * 6
        )
        true = [task_cost(e, r) for e, r in tasks]
        linear = [max(e, 1) * max(r, 1) for e, r in tasks]

        def makespan(weights, workers=2):
            bins = assign_lpt(weights, workers)
            return max(sum(true[t] for t in b) for b in bins)

        modelled = makespan(true)
        naive = makespan(linear)
        assert modelled < naive
        # and the modelled placement is near the work lower bound
        assert modelled <= 1.34 * sum(true) / 2


class TestSharedArray:
    def test_create_and_mutate(self):
        with SharedArray.create((10,), np.float64) as arr:
            assert (arr.array == 0).all()
            arr.array[3] = 7.5
            assert arr.array[3] == 7.5

    def test_attach_sees_owner_writes(self):
        owner = SharedArray.create((5,), np.int64)
        try:
            owner.array[:] = [1, 2, 3, 4, 5]
            view = SharedArray.attach(owner.name, (5,), np.int64)
            assert view.array.tolist() == [1, 2, 3, 4, 5]
            view.array[0] = 99
            assert owner.array[0] == 99
            view.close()
        finally:
            owner.close()
            owner.unlink()

    def test_cross_process_visibility(self):
        owner = SharedArray.create((4,), np.float64)
        try:
            out = fork_map(
                _shared_writer,
                [0, 1, 2, 3],
                workers=2,
                state={"name": owner.name},
            )
            assert sorted(out) == [0, 1, 2, 3]
            assert owner.array.tolist() == [0.0, 10.0, 20.0, 30.0]
        finally:
            owner.close()
            owner.unlink()


def _shared_writer(i):
    state = get_worker_state()
    view = SharedArray.attach(state["name"], (4,), np.float64)
    view.array[i] = 10.0 * i
    view.close()
    return i
