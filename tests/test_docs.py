"""Documentation regression tests.

The tutorial's python blocks are executed verbatim so the docs cannot
rot; README/DESIGN/EXPERIMENTS are checked for the structural promises
they make (referenced files exist, module paths resolve).
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestTutorialExecutes:
    def test_all_python_blocks_run(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # tutorial writes /tmp files
        text = (ROOT / "docs" / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 6
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)


class TestReadmePromises:
    def test_quickstart_snippet_runs(self):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README must contain python examples"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "<readme>", "exec"), namespace)

    def test_referenced_files_exist(self):
        for rel in (
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/ALGORITHM.md",
            "docs/API.md",
            "docs/CACHING.md",
            "docs/KERNELS.md",
            "docs/PERFORMANCE.md",
            "docs/ROBUSTNESS.md",
            "docs/SERVING.md",
            "docs/SHARDING.md",
            "docs/TUTORIAL.md",
            "LICENSE",
            "CONTRIBUTING.md",
            "CHANGELOG.md",
        ):
            assert (ROOT / rel).exists(), rel

    def test_examples_listed_exist(self):
        for name in (
            "quickstart.py",
            "community_detection.py",
            "power_grid_contingency.py",
            "road_network.py",
            "compare_algorithms.py",
            "extensions_tour.py",
            "approximation_tradeoffs.py",
        ):
            assert (ROOT / "examples" / name).exists(), name


class TestRobustnessDoc:
    """ROBUSTNESS.md promises a crash-recovery contract; pin the
    structural claims so the doc cannot drift from the code."""

    def text(self):
        return (ROOT / "docs" / "ROBUSTNESS.md").read_text()

    def test_crash_recovery_matrix_present(self):
        text = self.text()
        assert "Crash-recovery matrix" in text
        for row in (
            "torn line",
            "digest mismatch",
            "ENOSPC",
            "final: interrupted",
            "commits are parent-side",
        ):
            assert row in text, row

    def test_named_surfaces_exist(self):
        """Every API surface the doc names must resolve."""
        from repro.core.config import APGREConfig
        from repro.errors import JournalError  # noqa: F401 - named
        from repro.journal import RunJournal, run_fingerprint  # noqa: F401
        from repro.parallel.faults import FaultSpec, fire_disk_faults
        from repro.parallel.sharedmem import (  # noqa: F401 - named
            collect_orphans,
            list_orphans,
        )

        config = APGREConfig()
        for field in ("journal_dir", "resume"):
            assert hasattr(config, field), field
        # the disk-fault targets the doc documents must be accepted
        for target in ("journal.payload", "journal.append",
                       "journal.committed", "cache.disk"):
            FaultSpec("enospc", task=0, target=target)
        assert fire_disk_faults("journal.append") is None  # no plan

    def test_cli_flags_exist(self):
        """--journal-dir/--resume and the gc subcommand must parse."""
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["compute", "g.txt", "--journal-dir", "d", "--resume"]
        )
        assert args.journal_dir == "d" and args.resume is True
        args = parser.parse_args(["gc", "--dry-run", "--shm-dir", "x"])
        assert args.dry_run is True and args.shm_dir == "x"

    def test_stats_identity_fields_exist(self):
        from repro.core.result import APGREStats

        stats = APGREStats()
        for field in ("edges_resumed", "subgraphs_resumed",
                      "edges_replayed", "subgraphs_replayed",
                      "edges_traversed"):
            assert hasattr(stats, field), field


class TestShardingDoc:
    """SHARDING.md promises an exact divide-and-conquer contract; pin
    the structural claims so the doc cannot drift from the code."""

    def text(self):
        return (ROOT / "docs" / "SHARDING.md").read_text()

    def test_structural_claims_present(self):
        text = self.text()
        for claim in (
            "Composition matrix",
            "arXiv:1406.4173",
            "edges_correction",
            "excluded from TEPS",
            "BFS level-set bisection",
            "sqrt(max(roots, 1))",
        ):
            assert claim in text, claim

    def test_named_surfaces_exist(self):
        """Every API surface the doc names must resolve."""
        from repro.shard import (  # noqa: F401 - named in the doc
            ShardPlan,
            bc_subgraph_sharded,
            find_shard_labels,
            shard_key,
            shard_plan,
            shard_task_scores,
        )
        from repro.core.config import APGREConfig
        from repro.metrics.stats import bcc_size_histogram  # noqa: F401
        from repro.parallel.scheduler import task_cost

        config = APGREConfig(shard=True, shard_max_size=64)
        assert config.shard_max_size == 64
        assert task_cost(100, 16) == pytest.approx(400.0)

    def test_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["compute", "g.txt", "--shard", "--shard-max-size", "128"]
        )
        assert args.shard is True and args.shard_max_size == 128

    def test_stats_shard_fields_exist(self):
        from repro.core.result import APGREStats

        stats = APGREStats()
        for field in ("shards_created", "separator_vertices",
                      "edges_correction", "largest_shard_ratio"):
            assert hasattr(stats, field), field


class TestKernelsDoc:
    """KERNELS.md promises a kernel-dispatch contract; pin the
    structural claims so the doc cannot drift from the code."""

    def text(self):
        return (ROOT / "docs" / "KERNELS.md").read_text()

    def test_structural_claims_present(self):
        text = self.text()
        for claim in (
            "Composition matrix",
            "PULL_ALPHA = 0.7",
            "frontier_arcs > PULL_ALPHA * unvisited_arcs",
            "edges_traversed + edges_pulled == examined arcs",
            "outside** TEPS",
            "REPRO_KERNEL",
            "selects an unavailable kernel",
        ):
            assert claim in text, claim

    def test_named_surfaces_exist(self):
        """Every API surface the doc names must resolve."""
        from repro.graph.kernels import (  # noqa: F401 - named in doc
            KERNEL_ENV_VAR,
            KernelFeatures,
            default_kernel_name,
            kernel_names,
            kernel_report,
            register_kernel,
            resolve_kernel_name,
            select_kernel,
        )
        from repro.graph.kernels.pull import (  # noqa: F401
            PULL_ALPHA,
            bfs_sigma_batched_pull,
            pull_contributions,
        )
        from repro.graph.kernels.nogil import numba_available  # noqa: F401
        from repro.core.config import APGREConfig

        assert KERNEL_ENV_VAR == "REPRO_KERNEL"
        assert PULL_ALPHA == 0.7
        assert set(kernel_names()) == {"arcs", "spmm", "pull", "numba"}
        assert APGREConfig(kernel="pull").kernel == "pull"

    def test_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["compute", "g.txt", "--kernel", "pull"]
        )
        assert args.kernel == "pull"

    def test_stats_split_fields_exist(self):
        from repro.baselines.common import WorkCounter
        from repro.core.result import APGREStats

        stats = APGREStats()
        for field in ("edges_pulled", "kernel_switches"):
            assert hasattr(stats, field), field
        counter = WorkCounter()
        counter.add(3)
        counter.add_pulled(2)
        counter.add_switch()
        assert counter.examined == 5
        assert counter.switches == 1

    def test_provenance_records_kernels(self):
        from repro.bench.persistence import environment_provenance

        info = environment_provenance()
        assert "arcs" in info["kernels_available"]
        assert info["kernel_default"] in info["kernels_available"]


class TestServingDoc:
    """SERVING.md promises the daemon's protocol and versioning
    contract; pin the structural claims so the doc cannot drift."""

    def text(self):
        return (ROOT / "docs" / "SERVING.md").read_text()

    def test_structural_claims_present(self):
        text = self.text()
        for claim in (
            "Composition matrix",
            "versioned immutable",
            "single\n  committed version",
            "(graph version, config fingerprint)",
            "Connection: close",
            "exits **0**",
            "bit-identical",
            "`/healthz`",
            "`/stats`",
            "`/delta`",
            "--lru-entries",
            "--lru-bytes",
        ):
            assert claim in text, claim

    def test_named_surfaces_exist(self):
        """Every API surface the doc names must resolve."""
        from repro.serve import (  # noqa: F401 - named in the doc
            RequestParams,
            ScoreLRU,
            ServeClient,
            SnapshotManager,
            build_config,
            config_fingerprint,
            make_server,
            parse_delta_body,
        )
        from repro.cache.incremental import (  # noqa: F401
            apgre_bc_delta,
            apply_edge_delta,
            parse_delta_lines,
        )
        from repro.core.config import APGREConfig

        # supervision budgets must stay outside the fingerprint
        assert config_fingerprint(
            APGREConfig(timeout=9.0, max_retries=0)
        ) == config_fingerprint(APGREConfig())

    def test_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "g.txt", "--port", "9000",
             "--lru-entries", "8", "--lru-bytes", "1000000"]
        )
        assert args.port == 9000
        assert args.lru_entries == 8 and args.lru_bytes == 1000000
        args = parser.parse_args(
            ["query", "bc", "--unix-socket", "s.sock", "--top", "5"]
        )
        assert args.unix_socket == "s.sock" and args.top == 5
        args = parser.parse_args(["info", "g.txt", "--json"])
        assert args.as_json is True

    def test_store_stats_surface_exists(self):
        from repro.cache.store import ContributionStore

        stats = ContributionStore().stats()
        for key in ("hits", "misses", "puts", "evictions",
                    "entries_in_memory", "bytes_in_memory"):
            assert key in stats, key


class TestDesignModuleMap:
    def test_module_paths_resolve(self):
        """Every `repro.x.y` module path mentioned in DESIGN.md must
        import (the design doc is the map; stale entries mislead)."""
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules
        for dotted in sorted(modules):
            # table cells sometimes reference attributes; import the
            # longest importable prefix and require depth >= 2
            parts = dotted.split(".")
            imported = None
            for k in range(len(parts), 1, -1):
                try:
                    imported = importlib.import_module(".".join(parts[:k]))
                    break
                except ImportError:
                    continue
            assert imported is not None, dotted
