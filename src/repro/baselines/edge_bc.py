"""Edge betweenness centrality (extension).

The paper motivates vertex BC with Girvan–Newman community detection
(§1), whose classic formulation actually removes high-betweenness
*edges*. Brandes' accumulation computes edge scores for free: during
the backward sweep, each shortest-path-DAG arc ``v -> w`` carries
``σ_sv/σ_sw · (1 + δ_s(w))`` — exactly the contribution added to
``δ_s(v)``, credited to the edge instead.

Scores follow the same ordered-pair convention as the vertex
algorithms; for undirected graphs each edge's score is reported once
per orientation in the returned arc order (use
:func:`undirected_edge_scores` to collapse to unordered edges, which
then equal 2× networkx's unnormalised values).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.common import WorkCounter
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE

__all__ = ["edge_betweenness_bc", "undirected_edge_scores"]


def _arc_index_map(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """(src per stored arc, lookup by position in out_indices)."""
    src = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    return src, graph.out_indices.astype(np.int64)


def edge_betweenness_bc(
    graph: CSRGraph,
    *,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact edge BC, one score per stored arc.

    Returns an array aligned with the CSR arc order
    (``graph.arcs()``): entry ``i`` is the summed dependency of arc
    ``src[i] -> dst[i]`` over all sources.
    """
    n = graph.n
    m = graph.num_arcs
    scores = np.zeros(m, dtype=SCORE_DTYPE)
    arc_src, arc_dst = _arc_index_map(graph)
    # CSR arcs are sorted by (src, dst), so a linearised key array lets
    # every DAG arc be located with one vectorised binary search
    keys = arc_src * n + arc_dst
    for s in range(n):
        res = bfs_sigma(graph, s, keep_level_arcs=True)
        if counter is not None:
            counter.add(res.edges_traversed)
        sigma = res.sigma
        delta = np.zeros(n, dtype=SCORE_DTYPE)
        for d in range(res.depth - 1, -1, -1):
            src, dst = res.level_arcs[d]
            if src.size == 0:
                continue
            contrib = sigma[src] / sigma[dst] * (1.0 + delta[dst])
            targets = src.astype(np.int64) * n + dst.astype(np.int64)
            pos = np.searchsorted(keys, targets)
            scores[pos] += contrib
            np.add.at(delta, src, contrib)
    return scores


def undirected_edge_scores(
    graph: CSRGraph, arc_scores: np.ndarray
) -> Dict[Tuple[int, int], float]:
    """Collapse per-arc scores to unordered edges ``{(u<=v): score}``.

    For an undirected graph both orientations carry identical scores
    by symmetry, so the collapsed value is their sum (= 2× the
    one-orientation value, matching the ordered-pair convention).
    """
    src, dst = graph.arcs()
    out: Dict[Tuple[int, int], float] = {}
    for u, v, score in zip(src.tolist(), dst.tolist(), arc_scores.tolist()):
        key = (u, v) if u <= v else (v, u)
        out[key] = out.get(key, 0.0) + score
    return out
