"""Tests for the supervised execution layer (no injected faults).

The failure paths live in tests/test_faults.py (marked ``faults``);
this module covers the happy path, configuration validation, the
health report plumbing and the single supervised call.
"""

import time

import numpy as np
import pytest

from repro.errors import (
    AlgorithmError,
    ExecutionError,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.parallel import pool as pool_mod
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    TaskOutcome,
    call_with_timeout,
    supervised_map,
)


def _square(x):
    return x * x


def _sleep_forever(x):
    time.sleep(3600)
    return x  # pragma: no cover


def _crash(x):
    import os

    os._exit(7)  # pragma: no cover


def _raise_algorithm_error(x):
    raise AlgorithmError("declined")


class TestErrorsHierarchy:
    def test_execution_errors_are_repro_errors(self):
        for exc in (ExecutionError, WorkerCrashError, TaskTimeoutError):
            assert issubclass(exc, ReproError)
        assert issubclass(WorkerCrashError, ExecutionError)
        assert issubclass(TaskTimeoutError, ExecutionError)


class TestSupervisorConfig:
    def test_defaults(self):
        cfg = SupervisorConfig()
        assert cfg.timeout is None
        assert cfg.max_retries == 2
        assert cfg.fallback

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_retries": -1},
            {"backoff_factor": 0.5},
            {"backoff_base": -0.1},
            {"max_pool_failures": -1},
            {"poll_interval": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_backoff_grows_exponentially(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0)
        assert cfg.backoff(1) == pytest.approx(0.1)
        assert cfg.backoff(2) == pytest.approx(0.2)
        assert cfg.backoff(3) == pytest.approx(0.4)


class TestSupervisedMapHappyPath:
    def test_matches_inline(self):
        out = supervised_map(_square, list(range(10)), workers=3)
        assert out == [i * i for i in range(10)]

    def test_order_preserved_many_tasks(self):
        out = supervised_map(_square, list(range(37)), workers=4)
        assert out == [i * i for i in range(37)]

    def test_inline_when_single_worker(self):
        health = RunHealth()
        out = supervised_map(
            _square, [1, 2, 3], workers=1, health=health
        )
        assert out == [1, 4, 9]
        assert health.inline and health.ok

    def test_single_payload_runs_inline(self):
        health = RunHealth()
        assert supervised_map(_square, [6], workers=4, health=health) == [36]
        assert health.inline

    def test_empty_payloads(self):
        assert supervised_map(_square, [], workers=2) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            supervised_map(_square, [1], workers=0)

    def test_healthy_report(self):
        health = RunHealth()
        supervised_map(_square, list(range(6)), workers=2, health=health)
        assert health.tasks == 6
        assert health.pool_ok == 6
        assert health.ok and not health.degraded
        assert health.faults == 0
        assert len(health.outcomes) == 6
        assert {o.status for o in health.outcomes} == {"ok-pool"}
        assert "ok" in health.summary()

    def test_state_visible_and_cleared(self):
        out = supervised_map(
            _lookup_state, ["k", "k"], workers=2, state={"k": 99}
        )
        assert out == [99, 99]
        assert pool_mod._STATE == {}

    def test_worker_exception_propagates_via_serial_rung(self):
        # a deterministic exception survives retries, then re-raises
        # with its original type on the serial rung
        with pytest.raises(AlgorithmError, match="declined"):
            supervised_map(
                _raise_algorithm_error,
                [1, 2],
                workers=2,
                config=SupervisorConfig(max_retries=0),
            )


def _lookup_state(key):
    return pool_mod.get_worker_state()[key]


class TestRunHealthReport:
    def test_merge_accumulates(self):
        a = RunHealth(tasks=3, pool_ok=3)
        b = RunHealth(tasks=2, retries=1, worker_crashes=1)
        a.merge(b)
        assert a.tasks == 5
        assert a.retries == 1
        assert a.worker_crashes == 1
        assert a.degraded

    def test_outcome_records(self):
        o = TaskOutcome(task=3, attempts=2, status="ok-serial",
                        events=["crash", "retry", "serial"])
        assert o.task == 3 and "crash" in o.events

    def test_summary_mentions_fallback(self):
        h = RunHealth(tasks=1, fallback_path="brandes")
        assert "brandes" in h.summary()
        assert h.degraded


class TestCallWithTimeout:
    def test_plain_result(self):
        assert call_with_timeout(_square, 9, timeout=30) == 81

    def test_none_timeout_runs_in_process(self):
        assert call_with_timeout(_square, 4, timeout=None) == 16

    def test_invalid_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            call_with_timeout(_square, 4, timeout=0)

    def test_timeout_kills_child(self):
        t0 = time.perf_counter()
        with pytest.raises(TaskTimeoutError):
            call_with_timeout(_sleep_forever, 1, timeout=0.3)
        assert time.perf_counter() - t0 < 30

    def test_crash_detected(self):
        with pytest.raises(WorkerCrashError, match="exit code 7"):
            call_with_timeout(_crash, 1, timeout=30)

    def test_exception_type_preserved(self):
        with pytest.raises(AlgorithmError, match="declined"):
            call_with_timeout(_raise_algorithm_error, 1, timeout=30)


class TestMapSourcesBCSupervised:
    def test_health_collected(self, und_random):
        from repro.baselines.common import run_per_source
        from repro.graph.traversal import bfs_sigma
        from repro.parallel.pool import map_sources_bc

        ref = run_per_source(und_random, mode="succs")
        health = RunHealth()
        out = map_sources_bc(
            und_random,
            list(range(und_random.n)),
            mode="succs",
            forward=bfs_sigma,
            workers=2,
            health=health,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)
        assert health.tasks > 0 and health.ok
