"""Immutable CSR (compressed sparse row) graph storage.

:class:`CSRGraph` is the single graph representation used by every
algorithm in this package, mirroring the paper's storage choice
("the graphs are stored in Compressed Sparse Row (CSR) format", §5.1).

Conventions
-----------
* Vertices are the integers ``0 .. n-1``.
* ``directed=True`` graphs keep two adjacency structures: the forward
  (out-) CSR and the reverse (in-) CSR; the reverse is built once at
  construction because APGRE's β counting and the successor-based
  baselines need in-neighbourhoods in O(deg) time.
* ``directed=False`` graphs store each undirected edge as two arcs
  ``u->v`` and ``v->u`` in a single symmetric CSR shared by the forward
  and reverse views. ``num_arcs`` therefore counts both orientations —
  the same convention the paper's Table 1 uses for its undirected rows
  (e.g. Email-Enron is listed with 367,662 edges, twice its 183,831
  undirected pairs).
* Adjacency lists are sorted per row, which makes traversal order
  deterministic and lets :meth:`CSRGraph.has_edge` binary-search.
* All arrays are flagged read-only; graphs are safely shareable across
  fork()ed worker processes without copies.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphValidationError
from repro.types import INDPTR_DTYPE, VERTEX_DTYPE

__all__ = ["CSRGraph"]


def _freeze(a: np.ndarray) -> np.ndarray:
    """Return ``a`` with the writeable flag cleared (shared, not copied)."""
    a.flags.writeable = False
    return a


def _build_csr(
    n: int, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Build sorted CSR arrays from parallel arc arrays.

    Arcs are grouped by source and each row's targets are sorted
    ascending. Runs in O(m log m) via a single lexsort, with no Python
    loops over the arcs.
    """
    order = np.lexsort((dst, src))
    src = src[order]
    dst = dst[order].astype(VERTEX_DTYPE, copy=False)
    counts = np.bincount(src, minlength=n).astype(INDPTR_DTYPE, copy=False)
    indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


class CSRGraph:
    """An immutable graph in CSR form.

    Build instances through :func:`CSRGraph.from_arcs` or the helpers
    in :mod:`repro.graph.build`; the raw ``__init__`` trusts its inputs
    and is intended for internal use after validation.

    Parameters
    ----------
    n:
        Number of vertices.
    out_indptr, out_indices:
        Forward CSR arrays (``out_indptr`` has ``n + 1`` entries).
    in_indptr, in_indices:
        Reverse CSR arrays. For undirected graphs pass the same objects
        as the forward arrays.
    directed:
        Whether arcs are one-way.
    """

    __slots__ = (
        "n",
        "directed",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        # weak referencability for the per-graph derived-structure
        # caches (repro.graph.ops memoizes to_undirected per instance)
        "__weakref__",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        directed: bool,
    ) -> None:
        self.n = int(n)
        self.directed = bool(directed)
        self.out_indptr = _freeze(out_indptr)
        self.out_indices = _freeze(out_indices)
        self.in_indptr = _freeze(in_indptr)
        self.in_indices = _freeze(in_indices)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls,
        n: int,
        src,
        dst,
        *,
        directed: bool,
        dedupe: bool = True,
        drop_self_loops: bool = True,
    ) -> "CSRGraph":
        """Build a graph from parallel source/target arrays.

        For ``directed=False`` each input pair is treated as one
        undirected edge and symmetrised; callers may pass either
        orientation (or both — duplicates are removed when ``dedupe``).

        Parameters
        ----------
        n:
            Vertex count; every endpoint must be in ``[0, n)``.
        src, dst:
            Arc endpoints (any integer array-likes of equal length).
        directed:
            Arc interpretation, see above.
        dedupe:
            Collapse parallel arcs (BC is defined on simple graphs;
            multiplicities would silently skew σ counts).
        drop_self_loops:
            Remove ``v->v`` arcs, which never lie on a shortest path.

        Raises
        ------
        GraphValidationError
            If endpoints fall outside ``[0, n)`` or lengths mismatch.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise GraphValidationError(
                f"src and dst lengths differ: {src.size} != {dst.size}"
            )
        if n < 0:
            raise GraphValidationError(f"vertex count must be >= 0, got {n}")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= n:
                raise GraphValidationError(
                    f"arc endpoint out of range [0, {n}): saw [{lo}, {hi}]"
                )
        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if not directed and src.size:
            # canonicalise, dedupe on unordered pairs, then symmetrise
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            if dedupe:
                pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
                lo, hi = pairs[:, 0], pairs[:, 1]
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
        elif dedupe and src.size:
            pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
            src, dst = pairs[:, 0], pairs[:, 1]

        out_indptr, out_indices = _build_csr(n, src, dst)
        if directed:
            in_indptr, in_indices = _build_csr(n, dst, src)
        else:
            in_indptr, in_indices = out_indptr, out_indices
        return cls(n, out_indptr, out_indices, in_indptr, in_indices, directed)

    # ------------------------------------------------------------------
    # size properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.n

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (both orientations for undirected)."""
        return int(self.out_indices.size)

    @property
    def num_edges(self) -> int:
        """Alias of :attr:`num_arcs` (the paper's Table-1 convention)."""
        return self.num_arcs

    @property
    def num_undirected_edges(self) -> int:
        """Number of unordered edges (``num_arcs`` for directed graphs)."""
        return self.num_arcs // 2 if not self.directed else self.num_arcs

    # ------------------------------------------------------------------
    # adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbourhood of ``v`` (a read-only view)."""
        return self.out_indices[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted in-neighbourhood of ``v`` (a read-only view)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int64 array."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an int64 array."""
        return np.diff(self.in_indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` exists (binary search, O(log deg))."""
        row = self.out_neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < row.size and row[i] == v)

    def arcs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays listing every stored arc."""
        src = np.repeat(
            np.arange(self.n, dtype=VERTEX_DTYPE), np.diff(self.out_indptr)
        )
        return src, self.out_indices.copy()

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield arcs as Python int pairs.

        For undirected graphs each unordered edge is yielded once, with
        ``u <= v``. Intended for tests and small-graph inspection, not
        hot paths.
        """
        src, dst = self.arcs()
        if self.directed:
            for u, v in zip(src.tolist(), dst.tolist()):
                yield u, v
        else:
            keep = src <= dst
            for u, v in zip(src[keep].tolist(), dst[keep].tolist()):
                yield u, v

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.directed == other.directed
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self.n, self.directed, self.num_arcs, self.out_indices.tobytes())
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, n={self.n}, arcs={self.num_arcs})"
