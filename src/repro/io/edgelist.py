"""SNAP-style whitespace edge-list files.

The Stanford Network Analysis Platform distributes its graphs (the bulk
of the paper's Table 1) as plain text: ``#``-prefixed comment lines
followed by one ``src dst`` pair per line. Vertex ids in the files are
arbitrary non-negative integers and are densified to ``0..n-1`` on
read (SNAP ids are frequently sparse, e.g. WikiTalk).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist"]

PathLike = Union[str, Path, io.TextIOBase]


def _open_text(path: PathLike, mode: str):
    if isinstance(path, io.TextIOBase):
        return path, False
    return open(path, mode, encoding="utf-8"), True


def read_edgelist(
    path: PathLike,
    *,
    directed: bool = True,
    comments: str = "#",
    densify: bool = True,
) -> Tuple[CSRGraph, Optional[np.ndarray]]:
    """Read a SNAP edge list.

    Parameters
    ----------
    path:
        File path or open text stream.
    directed:
        SNAP files do not record directedness; the caller supplies it
        (the paper's Table 1 lists it per graph).
    comments:
        Comment-line prefix.
    densify:
        Remap arbitrary ids onto ``0..n-1``. When False, ids are used
        verbatim and must already be dense.

    Returns
    -------
    graph, original_ids:
        The graph, and (when densified) the original id of each new
        vertex — ``original_ids[i]`` is the file id of vertex ``i``.
        ``None`` when ``densify=False``.

    Raises
    ------
    GraphFormatError
        On non-integer tokens or lines with fewer than two fields
        (extra fields, e.g. weights, are ignored).
    """
    fh, owned = _open_text(path, "r")
    src_list, dst_list = [], []
    try:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comments):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"line {lineno}: expected 'src dst', got {stripped!r}"
                )
            try:
                src_list.append(int(parts[0]))
                dst_list.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {lineno}: non-integer endpoint in {stripped!r}"
                ) from exc
    finally:
        if owned:
            fh.close()

    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if src.size and src.min() < 0 or dst.size and dst.min() < 0:
        raise GraphFormatError("negative vertex ids are not supported")
    original: Optional[np.ndarray] = None
    if densify and src.size:
        original = np.unique(np.concatenate([src, dst]))
        src = np.searchsorted(original, src)
        dst = np.searchsorted(original, dst)
        n = original.size
    else:
        n = int(max(src.max(), dst.max())) + 1 if src.size else 0
    return CSRGraph.from_arcs(n, src, dst, directed=directed), original


def write_edgelist(graph: CSRGraph, path: PathLike, *, header: str = "") -> None:
    """Write a graph as a SNAP edge list.

    Undirected edges are written once (``u <= v``); a comment header
    recording size and directedness is always emitted so files are
    self-describing.
    """
    fh, owned = _open_text(path, "w")
    try:
        kind = "directed" if graph.directed else "undirected"
        fh.write(f"# repro edge list ({kind})\n")
        fh.write(f"# nodes: {graph.n} arcs: {graph.num_arcs}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in graph.iter_edges():
            fh.write(f"{u}\t{v}\n")
    finally:
        if owned:
            fh.close()
