"""Versioned immutable graph snapshots for the serving daemon.

The daemon's consistency contract rests on two facts:

* :class:`~repro.graph.csr.CSRGraph` is immutable — the delta engine
  (:func:`repro.cache.incremental.apply_edge_delta`) builds a *new*
  graph, so an old snapshot's arrays can never change under a reader;
* a snapshot's decomposition artefacts (the partition with α/β filled)
  are built once per (threshold, α/β-method) pair and memoised on the
  snapshot, so repeated queries skip the partition and alphabeta
  phases entirely — the warm-path saving the paper's Figure 8 says is
  there to take (those phases are cheap relative to BC, but on a warm
  LRU they *are* the query).

:class:`SnapshotManager` hands out snapshots under a monotonic
``GraphVersion`` counter.  Readers pin the version they were routed to
(:meth:`SnapshotManager.acquire` is a context manager incrementing a
per-version refcount); ``POST /delta`` publishes a successor with
:meth:`SnapshotManager.advance`.  A superseded version stays resident
until its last reader drains, then retires — an ``on_retire`` hook
lets the score LRU drop entries that can never be requested again.

Nothing here is transactional in the database sense: a reader sees
exactly one committed version end to end, and which one is decided at
most once, at acquire time.  docs/SERVING.md states the contract.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.fingerprint import graph_fingerprint
from repro.errors import ServeError
from repro.graph.csr import CSRGraph

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """One immutable (version, graph) pair plus memoised decomposition.

    ``partition_for`` returns the graph's partition with α/β summaries
    already filled, keyed by the two config fields the decomposition
    depends on (``threshold``, ``alpha_beta_method``).  Concurrent
    requests for the same key build it once; the double-checked lock
    keeps the build itself outside no lock (partitioning a large graph
    takes real time and must not block requests for other keys — the
    per-key event makes waiters block only on *their* key).
    """

    def __init__(self, version: int, graph: CSRGraph) -> None:
        self.version = int(version)
        self.graph = graph
        self.fingerprint = graph_fingerprint(graph)
        self._partitions: Dict[Tuple[int, str], object] = {}
        self._building: Dict[Tuple[int, str], threading.Event] = {}
        self._lock = threading.Lock()

    def partition_for(self, config) -> object:
        """The memoised α/β-filled partition for one config's key."""
        key = (int(config.threshold), str(config.alpha_beta_method))
        while True:
            with self._lock:
                part = self._partitions.get(key)
                if part is not None:
                    return part
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    break  # this thread builds
            event.wait()
        try:
            from repro.decompose.alphabeta import compute_alpha_beta
            from repro.decompose.partition import graph_partition

            part = graph_partition(self.graph, threshold=key[0])
            compute_alpha_beta(self.graph, part, method=key[1])
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            event.set()  # waiters retry (and may rebuild)
            raise
        with self._lock:
            self._partitions[key] = part
            self._building.pop(key, None)
        event.set()
        return part

    def partition_keys(self) -> List[Tuple[int, str]]:
        """The (threshold, α/β-method) keys materialised so far."""
        with self._lock:
            return sorted(self._partitions)


class SnapshotManager:
    """Monotonic graph versions with reader pinning and delta advance.

    * :meth:`acquire` — context manager yielding a pinned
      :class:`Snapshot`; the pinned version cannot retire while the
      reader holds it, however many deltas land meanwhile.
    * :meth:`advance` — publish a successor graph under ``version+1``
      (callers serialise writes themselves; the daemon holds its delta
      lock across the recompute *and* the advance).
    * ``on_retire`` — called with each version number whose last
      reader drained after the version was superseded; the daemon
      purges that version's score-LRU entries there.

    Versions start at 1 for the graph the daemon booted with.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        on_retire: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._on_retire = on_retire
        first = Snapshot(1, graph)
        self._current = first
        self._live: Dict[int, Snapshot] = {1: first}
        self._readers: Dict[int, int] = {1: 0}
        self._deltas_applied = 0

    @property
    def version(self) -> int:
        """The currently published (latest committed) version."""
        with self._lock:
            return self._current.version

    def current(self) -> Snapshot:
        """The latest committed snapshot (unpinned — prefer acquire)."""
        with self._lock:
            return self._current

    def get(self, version: int) -> Snapshot:
        """A specific still-live version; :class:`ServeError` if gone."""
        with self._lock:
            snap = self._live.get(int(version))
            if snap is None:
                raise ServeError(
                    f"graph version {version} is not resident (live: "
                    f"{sorted(self._live)})",
                    http_status=409,
                )
            return snap

    @contextmanager
    def acquire(self, version: Optional[int] = None):
        """Pin one version (latest by default) for the block's duration."""
        with self._lock:
            if version is None:
                snap = self._current
            else:
                snap = self._live.get(int(version))
                if snap is None:
                    raise ServeError(
                        f"graph version {version} is not resident "
                        f"(live: {sorted(self._live)})",
                        http_status=409,
                    )
            self._readers[snap.version] += 1
        try:
            yield snap
        finally:
            self._release(snap.version)

    def _release(self, version: int) -> None:
        retired = None
        with self._lock:
            self._readers[version] -= 1
            if (
                self._readers[version] == 0
                and version != self._current.version
            ):
                del self._live[version]
                del self._readers[version]
                retired = version
        if retired is not None and self._on_retire is not None:
            self._on_retire(retired)

    def advance(self, graph: CSRGraph) -> Snapshot:
        """Publish ``graph`` as the next version; returns its snapshot.

        The superseded version retires immediately when no reader
        holds it, otherwise it stays resident until its last reader
        drains (release handles the hand-off).
        """
        retired = None
        with self._lock:
            old = self._current
            snap = Snapshot(old.version + 1, graph)
            self._current = snap
            self._live[snap.version] = snap
            self._readers[snap.version] = 0
            self._deltas_applied += 1
            if self._readers[old.version] == 0:
                del self._live[old.version]
                del self._readers[old.version]
                retired = old.version
        if retired is not None and self._on_retire is not None:
            self._on_retire(retired)
        return snap

    def report(self) -> Dict:
        """JSON-shaped residency report for ``/stats``."""
        with self._lock:
            return {
                "version": self._current.version,
                "deltas_applied": self._deltas_applied,
                "live_versions": sorted(self._live),
                "pinned_readers": {
                    str(v): n for v, n in sorted(self._readers.items()) if n
                },
                "partitions_resident": {
                    str(v): [
                        list(key) for key in snap.partition_keys()
                    ]
                    for v, snap in sorted(self._live.items())
                },
            }
