"""Tests for k-core decomposition and path-sampling approximate BC."""

import numpy as np
import networkx as nx
import pytest

from repro.baselines import brandes_bc
from repro.baselines.pathsampling import (
    path_sampling_bc,
    vertex_diameter_bound,
)
from repro.errors import AlgorithmError, GraphValidationError
from repro.generators import caterpillar_graph, complete_graph, cycle_graph
from repro.graph.build import from_edges, from_networkx
from repro.graph.kcore import core_numbers, k_core


class TestCoreNumbers:
    def test_matches_networkx(self, zoo_entry):
        _name, g, nxg = zoo_entry
        und = nxg.to_undirected() if nxg.is_directed() else nxg
        expected = nx.core_number(und) if und.number_of_nodes() else {}
        ours = core_numbers(g)
        for v in range(g.n):
            assert ours[v] == expected.get(v, 0), v

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_random(self, seed):
        nxg = nx.gnm_random_graph(50, 120, seed=seed)
        g = from_networkx(nxg, n=50)
        expected = nx.core_number(nxg)
        ours = core_numbers(g)
        assert all(ours[v] == expected[v] for v in range(50))

    def test_complete_graph(self):
        assert (core_numbers(complete_graph(6)) == 5).all()

    def test_cycle(self):
        assert (core_numbers(cycle_graph(7)) == 2).all()

    def test_caterpillar_legs_core1(self):
        g = caterpillar_graph(4, 2)
        core = core_numbers(g)
        assert (core[4:] == 1).all()  # legs
        assert (core[:4] == 1).all()  # the spine of a tree is 1-core

    def test_isolated_zero(self):
        g = from_edges([(0, 1)], n=3)
        assert core_numbers(g)[2] == 0

    def test_k_core_selection(self):
        # triangle + pendant
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert k_core(g, 2).tolist() == [0, 1, 2]
        assert k_core(g, 0).size == 4
        with pytest.raises(GraphValidationError, match=">= 0"):
            k_core(g, -1)

    def test_empty(self):
        assert core_numbers(from_edges([], n=0)).size == 0


class TestVertexDiameterBound:
    def test_at_least_true_diameter(self):
        # path: vertex diameter = n; probe-doubling must not undershoot
        g = from_edges([(i, i + 1) for i in range(20)])
        assert vertex_diameter_bound(g, probes=6, seed=1) >= 11

    def test_minimum_two(self):
        assert vertex_diameter_bound(from_edges([], n=1), seed=1) >= 2
        assert vertex_diameter_bound(from_edges([], n=0)) == 2


class TestPathSampling:
    def test_epsilon_bound_holds(self):
        nxg = nx.gnm_random_graph(50, 120, seed=4)
        g = from_networkx(nxg, n=50)
        exact = brandes_bc(g)
        res = path_sampling_bc(g, epsilon=0.05, delta=0.1, seed=3)
        norm = g.n * (g.n - 1)
        err = np.abs(res.scores - exact).max() / norm
        # the theory gives epsilon w.p. 1-delta; a fixed seed makes
        # this deterministic, and 2*epsilon leaves slack
        assert err < 2 * res.epsilon
        assert res.samples > 100

    def test_correlates_with_exact(self):
        nxg = nx.gnm_random_graph(45, 110, seed=7, directed=True)
        g = from_networkx(nxg, n=45)
        exact = brandes_bc(g)
        res = path_sampling_bc(g, epsilon=0.05, seed=5)
        assert np.corrcoef(res.scores, exact)[0, 1] > 0.9

    def test_max_samples_cap(self):
        g = cycle_graph(10)
        res = path_sampling_bc(g, epsilon=0.01, max_samples=50, seed=1)
        assert res.samples == 50

    def test_deterministic_with_seed(self):
        g = cycle_graph(12)
        a = path_sampling_bc(g, max_samples=100, seed=9)
        b = path_sampling_bc(g, max_samples=100, seed=9)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_tiny_graphs(self):
        assert path_sampling_bc(from_edges([], n=0), seed=1).samples == 0
        assert path_sampling_bc(from_edges([(0, 1)]), seed=1).samples == 0

    def test_validation(self):
        g = cycle_graph(5)
        with pytest.raises(AlgorithmError, match="epsilon"):
            path_sampling_bc(g, epsilon=0.0)
        with pytest.raises(AlgorithmError, match="delta"):
            path_sampling_bc(g, delta=1.5)

    def test_endpoints_never_credited(self):
        # on a star, every sampled path is leaf-hub-leaf or leaf-hub:
        # only the hub may accumulate score
        from repro.generators import star_graph

        g = star_graph(6)
        res = path_sampling_bc(g, max_samples=200, seed=2)
        assert (res.scores[1:] == 0).all()
