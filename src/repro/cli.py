"""Command-line interface (installed as ``repro-bc``).

Subcommands:

``repro-bc compute GRAPH``
    Exact BC of a graph file (edge list / DIMACS / MatrixMarket),
    printing the top-k vertices.
``repro-bc partition GRAPH``
    Decomposition statistics (the Table-4 view) for one graph file.
``repro-bc info GRAPH``
    Structural summary (size, articulation points, pendant fraction).
``repro-bc convert SRC DST``
    Convert between edge list / DIMACS / MatrixMarket / npz formats.
``repro-bc compare GRAPH``
    Run two algorithms and report timing + score agreement.
``repro-bc bench [EXPERIMENT ...]``
    Run paper experiments (default: all tables and figures) and print
    their tables; honours ``REPRO_SCALE``/``REPRO_GRAPHS``.
``repro-bc suite``
    List the analogue workload suite with sizes at the current scale.
``repro-bc serve GRAPH``
    Long-lived warm-path serving daemon (docs/SERVING.md): the graph,
    decomposition and caches stay resident; full/top-k/per-vertex BC
    and streamed edge deltas over HTTP (TCP or ``--unix-socket``).
``repro-bc query WHAT``
    Client for a running daemon: ``health``/``stats``/``bc``/
    ``vertex``/``delta``, printing the JSON response.
``repro-bc gc``
    List and remove shared-memory segments orphaned by ``kill -9``.

The process is signal-aware: SIGTERM is handled like SIGINT (graceful
drain — in-flight batches finish, the run journal is finalised as
resumable, shared-memory segments are unlinked) and both exit with
code 130.  ``repro-bc serve`` is the exception: a signalled daemon
drains in-flight requests and exits **0** (a clean drain is that
command's success path).  Deliberate failures
(:class:`repro.errors.ReproError`, including a journal fingerprint
mismatch) exit with code 2.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _parse_batch_size(value: str):
    """argparse type for ``--batch-size``: 'auto' or a positive int."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {parsed}"
        )
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bc`` argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="APGRE betweenness centrality (PPoPP'16 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro-bc {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compute = sub.add_parser("compute", help="exact BC of a graph file")
    p_compute.add_argument("graph", help="path to an edge list/.gr/.mtx file")
    p_compute.add_argument(
        "--directed",
        action="store_true",
        help="treat the input as directed (formats without directedness)",
    )
    p_compute.add_argument(
        "--algorithm",
        default="APGRE",
        help="algorithm name (Table-2 spelling, default APGRE)",
    )
    p_compute.add_argument(
        "--top", type=int, default=10, help="print the k highest-BC vertices"
    )
    p_compute.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (APGRE sub-graph pool, or the "
        "parallel-batched pool for serial/preds/batched with "
        "--batch-size)",
    )
    p_compute.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget for supervised workers",
    )
    p_compute.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="pool re-dispatches per failed/timed-out task (default 2)",
    )
    p_compute.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail fast instead of degrading to serial execution",
    )
    p_compute.add_argument(
        "--batch-size",
        type=_parse_batch_size,
        default=None,
        metavar="N|auto",
        help="advance N sources at once through the multi-source "
        "batched kernel ('auto' sizes batches from the graph and "
        "available memory; supported by APGRE, serial, preds and "
        "batched)",
    )
    p_compute.add_argument(
        "--backend",
        choices=("auto", "serial", "threads", "processes"),
        default=None,
        help="execution engine for batched source/root fan-out: "
        "worker threads over the shared in-process CSR, the "
        "shared-memory process pool, an inline serial loop, or "
        "'auto' (best for this host, honours REPRO_PARALLEL_BACKEND); "
        "implies --batch-size auto unless one is given",
    )
    p_compute.add_argument(
        "--kernel",
        choices=("auto", "arcs", "spmm", "pull", "numba"),
        default=None,
        help="compute kernel for the batched traversals: pure-numpy "
        "scatters, scipy sparse-matmul levels, direction-optimizing "
        "push/pull, the optional compiled numba kernel, or 'auto' "
        "(per-sub-graph structural selection, honours REPRO_KERNEL); "
        "implies --batch-size auto unless one is given; an "
        "unavailable kernel degrades to the default with a warning",
    )
    p_compute.add_argument(
        "--parallel-batched",
        action="store_true",
        help="run source batches on the persistent shared-memory "
        "worker pool (needs --workers > 1; implies --batch-size auto "
        "unless one is given)",
    )
    p_compute.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="let idle pool workers steal batches from stragglers "
        "(--no-steal keeps the static LPT placement)",
    )
    p_compute.add_argument(
        "--cache",
        action="store_true",
        help="enable the decomposition-aware contribution cache "
        "(APGRE only): unchanged sub-graphs replay their stored "
        "scores instead of recomputing",
    )
    p_compute.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist cache entries under DIR (implies --cache; "
        "separate invocations pointed at DIR share warmth)",
    )
    p_compute.add_argument(
        "--delta",
        default=None,
        metavar="FILE",
        help="apply an edge-delta file ('+ u v' / '- u v' per line) "
        "and recompute incrementally: the base graph warms the cache, "
        "then only the sub-graphs the delta dirtied are recomputed "
        "(implies --cache)",
    )
    p_compute.add_argument(
        "--compress",
        action="store_true",
        help="run each sub-graph through the structural compression "
        "ladder first (APGRE only): twin merging, chain contraction "
        "and pendant folding shrink the sweeps; scores are identical",
    )
    p_compute.add_argument(
        "--shard",
        action="store_true",
        help="split sub-graphs larger than --shard-max-size along "
        "divide-and-conquer vertex separators into independently "
        "scheduled shard tasks with exact boundary correction "
        "(APGRE only); scores are identical",
    )
    p_compute.add_argument(
        "--shard-max-size",
        type=int,
        default=None,
        metavar="N",
        help="interior size ceiling per shard, >= 16 (implies --shard; "
        "default 2048)",
    )
    p_compute.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="journal every completed sub-graph contribution to a "
        "crash-safe log under DIR (APGRE only); a killed run can be "
        "picked up with --resume",
    )
    p_compute.add_argument(
        "--resume",
        action="store_true",
        help="resume from the journal in --journal-dir: replay its "
        "valid records and recompute only the rest (fingerprint "
        "mismatch exits 2)",
    )

    p_part = sub.add_parser("partition", help="decomposition statistics")
    p_part.add_argument("graph", help="path to a graph file")
    p_part.add_argument("--directed", action="store_true")
    p_part.add_argument(
        "--threshold", type=int, default=None, help="Algorithm-1 threshold"
    )

    p_info = sub.add_parser(
        "info", help="structural statistics of a graph file"
    )
    p_info.add_argument("graph", help="path to a graph file")
    p_info.add_argument("--directed", action="store_true")
    p_info.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="machine-readable output (the same payload the serving "
        "daemon's /stats embeds under 'registries')",
    )

    p_conv = sub.add_parser(
        "convert", help="convert between graph file formats"
    )
    p_conv.add_argument("source", help="input graph file")
    p_conv.add_argument("target", help="output graph file")
    p_conv.add_argument("--directed", action="store_true")
    p_conv.add_argument(
        "--to",
        dest="target_format",
        default="",
        help="output format (default: by target extension)",
    )

    p_cmp = sub.add_parser(
        "compare", help="compare two BC algorithms on a graph file"
    )
    p_cmp.add_argument("graph", help="path to a graph file")
    p_cmp.add_argument(
        "--reference", default="serial", help="reference algorithm"
    )
    p_cmp.add_argument(
        "--candidate", default="APGRE", help="algorithm under test"
    )
    p_cmp.add_argument("--directed", action="store_true")

    p_bench = sub.add_parser("bench", help="run paper experiments")
    p_bench.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: every table and figure)",
    )
    p_bench.add_argument(
        "--scale", type=float, default=None, help="override REPRO_SCALE"
    )
    p_bench.add_argument(
        "--graphs", default=None, help="override REPRO_GRAPHS (comma list)"
    )
    p_bench.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    p_bench.add_argument(
        "--save",
        default=None,
        help="also write the results as JSON (for repro.bench.diff_results)",
    )
    p_bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run budget (sets REPRO_BENCH_TIMEOUT; slow cells "
        "degrade to '-')",
    )

    sub.add_parser("suite", help="list the analogue workload suite")
    sub.add_parser("selftest", help="quick end-to-end installation check")

    p_serve = sub.add_parser(
        "serve",
        help="warm-path BC serving daemon (graph stays resident)",
    )
    p_serve.add_argument("graph", help="path to a graph file")
    p_serve.add_argument("--directed", action="store_true")
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port (0 binds an ephemeral port)",
    )
    p_serve.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    p_serve.add_argument(
        "--threshold", type=int, default=None, help="Algorithm-1 threshold"
    )
    p_serve.add_argument(
        "--backend",
        choices=("auto", "serial", "threads", "processes"),
        default=None,
        help="default execution backend (requests may override via "
        "?backend=)",
    )
    p_serve.add_argument(
        "--kernel",
        choices=("auto", "arcs", "spmm", "pull", "numba"),
        default=None,
        help="default compute kernel (requests may override via "
        "?kernel=)",
    )
    p_serve.add_argument(
        "--batch-size",
        type=_parse_batch_size,
        default=None,
        metavar="N|auto",
        help="default batch width for the multi-source kernel",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, help="default worker count"
    )
    p_serve.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="default work-stealing policy for pooled requests",
    )
    p_serve.add_argument(
        "--compress",
        action="store_true",
        help="run requests through the compression ladder by default",
    )
    p_serve.add_argument(
        "--shard",
        action="store_true",
        help="shard over-threshold sub-graphs by default",
    )
    p_serve.add_argument(
        "--shard-max-size",
        type=int,
        default=None,
        metavar="N",
        help="interior size ceiling per shard (implies --shard)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the contribution store (the /delta endpoint "
        "then answers 409 — deltas need replay to be incremental)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist contribution-store entries under DIR",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-task budget for supervised execution",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N"
    )
    p_serve.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail requests fast instead of degrading to serial",
    )
    p_serve.add_argument(
        "--lru-entries",
        type=int,
        default=64,
        metavar="N",
        help="score-LRU entry budget (materialised final vectors)",
    )
    p_serve.add_argument(
        "--lru-bytes",
        type=int,
        default=512 * 1024 * 1024,
        metavar="BYTES",
        help="score-LRU byte budget (default 512 MiB)",
    )
    p_serve.add_argument(
        "--verbose",
        action="store_true",
        help="per-request access log on stderr",
    )

    p_query = sub.add_parser(
        "query", help="query a running repro-bc serve daemon"
    )
    p_query.add_argument(
        "what",
        choices=("health", "stats", "bc", "vertex", "delta"),
        help="endpoint: /healthz, /stats, /bc, /vertex/<id>, /delta",
    )
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, default=8321)
    p_query.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="daemon's unix socket (instead of host/port)",
    )
    p_query.add_argument(
        "--vertex", type=int, default=None, help="vertex id (what=vertex)"
    )
    p_query.add_argument(
        "--top", type=int, default=None, help="top-k ranks (what=bc)"
    )
    p_query.add_argument(
        "--full",
        action="store_true",
        help="full score vector instead of top-k (what=bc)",
    )
    p_query.add_argument(
        "--delta-file",
        default=None,
        metavar="FILE",
        help="edge-delta file to POST ('+ u v' / '- u v' per line; "
        "what=delta)",
    )
    p_query.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra query parameter (repeatable): backend=threads, "
        "kernel=pull, compress=1, fresh=1, version=3, ...",
    )
    p_query.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="client-side socket timeout",
    )

    p_gc = sub.add_parser(
        "gc",
        help="reclaim shared-memory segments orphaned by kill -9",
    )
    p_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="list orphaned segments without removing them",
    )
    p_gc.add_argument(
        "--shm-dir",
        default=None,
        metavar="DIR",
        help="shared-memory filesystem to scan (default /dev/shm)",
    )
    return parser


def _cmd_compute(args) -> int:
    import numpy as np

    from repro.baselines.registry import get_algorithm
    from repro.io.registry import load_graph

    graph = load_graph(args.graph, directed=args.directed)
    fn = get_algorithm(args.algorithm)
    batched_algos = ("APGRE", "serial", "preds", "batched")
    if args.backend is not None:
        if args.parallel_batched:
            print(
                "repro-bc: error: --backend and --parallel-batched are "
                "mutually exclusive (--parallel-batched is the legacy "
                "spelling of --backend processes)",
                file=sys.stderr,
            )
            return 2
        if args.algorithm not in batched_algos:
            print(
                f"repro-bc: error: --backend is not supported by "
                f"{args.algorithm!r} (use APGRE, serial, preds or "
                f"batched)",
                file=sys.stderr,
            )
            return 2
    if args.parallel_batched:
        if args.workers <= 1:
            print(
                "repro-bc: error: --parallel-batched needs --workers > 1",
                file=sys.stderr,
            )
            return 2
        if args.algorithm not in batched_algos:
            print(
                f"repro-bc: error: --parallel-batched is not supported "
                f"by {args.algorithm!r} (use APGRE, serial, preds or "
                f"batched)",
                file=sys.stderr,
            )
            return 2
    kwargs = {}
    if args.algorithm == "APGRE" and (
        args.workers > 1 or args.backend is not None
    ):
        kwargs = {
            "workers": args.workers,
            "timeout": args.timeout,
            "max_retries": args.max_retries,
            "fallback": not args.no_fallback,
        }
        if args.backend is not None:
            kwargs["backend"] = args.backend
            kwargs["steal"] = args.steal
        else:
            kwargs["parallel"] = "processes"
        if args.parallel_batched:
            kwargs["parallel_batched"] = True
            kwargs["steal"] = args.steal
    elif args.algorithm in ("serial", "preds", "batched") and (
        args.workers > 1 or args.backend is not None
    ):
        kwargs = {"workers": args.workers, "steal": args.steal}
        if args.backend is not None:
            kwargs["backend"] = args.backend
        if args.parallel_batched and args.batch_size is None:
            kwargs["batch_size"] = "auto"
    if args.batch_size is not None:
        if args.algorithm not in batched_algos:
            print(
                f"repro-bc: error: --batch-size is not supported by "
                f"{args.algorithm!r} (use APGRE, serial, preds or batched)",
                file=sys.stderr,
            )
            return 2
        kwargs["batch_size"] = args.batch_size
    if args.kernel is not None:
        if args.algorithm not in batched_algos:
            print(
                f"repro-bc: error: --kernel is not supported by "
                f"{args.algorithm!r} (use APGRE, serial, preds or "
                f"batched)",
                file=sys.stderr,
            )
            return 2
        kwargs["kernel"] = args.kernel
    cache_on = (
        args.cache or args.cache_dir is not None or args.delta is not None
    )
    if cache_on and args.algorithm != "APGRE":
        print(
            f"repro-bc: error: --cache/--cache-dir/--delta need the "
            f"decomposition and are not supported by "
            f"{args.algorithm!r} (use APGRE)",
            file=sys.stderr,
        )
        return 2
    if args.compress:
        if args.algorithm != "APGRE":
            print(
                f"repro-bc: error: --compress needs the decomposition "
                f"and is not supported by {args.algorithm!r} (use APGRE)",
                file=sys.stderr,
            )
            return 2
        kwargs["compress"] = True
    shard_on = args.shard or args.shard_max_size is not None
    if shard_on:
        if args.algorithm != "APGRE":
            print(
                f"repro-bc: error: --shard/--shard-max-size need the "
                f"decomposition and are not supported by "
                f"{args.algorithm!r} (use APGRE)",
                file=sys.stderr,
            )
            return 2
        kwargs["shard"] = True
        if args.shard_max_size is not None:
            kwargs["shard_max_size"] = args.shard_max_size
    journal_on = args.journal_dir is not None or args.resume
    if journal_on:
        if args.algorithm != "APGRE":
            print(
                f"repro-bc: error: --journal-dir/--resume need the "
                f"decomposition and are not supported by "
                f"{args.algorithm!r} (use APGRE)",
                file=sys.stderr,
            )
            return 2
        if args.journal_dir is None:
            print(
                "repro-bc: error: --resume requires --journal-dir "
                "(there is no journal to resume from without one)",
                file=sys.stderr,
            )
            return 2
        kwargs["journal_dir"] = args.journal_dir
        kwargs["resume"] = args.resume
    if args.delta is not None:
        return _compute_delta(args, graph, kwargs)
    if cache_on:
        kwargs["cache"] = True
        if args.cache_dir is not None:
            kwargs["cache_dir"] = args.cache_dir
    journal_note = ""
    if journal_on:
        # run through the detailed API so the resume/journal tallies
        # can be reported alongside the scores
        from repro.core.apgre import apgre_bc_detailed
        from repro.core.config import APGREConfig

        result = apgre_bc_detailed(graph, APGREConfig(**kwargs))
        scores = result.scores
        journal_note = (
            f"# journal: {result.stats.subgraphs_resumed} sub-graph(s) "
            f"resumed, {result.stats.subgraphs_recomputed} recomputed "
            f"({result.health.journal_records} record(s) in "
            f"{args.journal_dir})"
        )
    else:
        scores = fn(graph, **kwargs)
    k = min(args.top, graph.n)
    order = np.argsort(-scores)[:k]
    print(f"# {args.algorithm} BC on {args.graph} "
          f"(n={graph.n}, arcs={graph.num_arcs})")
    print(f"{'vertex':>10s} {'bc':>16s}")
    for v in order.tolist():
        print(f"{v:>10d} {scores[v]:>16.4f}")
    if journal_note:
        print(journal_note)
    return 0


def _compute_delta(args, graph, kwargs) -> int:
    """The ``compute --delta`` path: warm on the base graph, then
    recompute only what the edge delta dirtied."""
    import numpy as np

    from repro.cache.incremental import apgre_bc_delta, parse_delta_file
    from repro.cache.store import ContributionStore
    from repro.core.apgre import apgre_bc_detailed
    from repro.core.config import APGREConfig

    added, removed = parse_delta_file(args.delta)
    store = ContributionStore(cache_dir=args.cache_dir)
    config = APGREConfig(cache=store, **kwargs)
    apgre_bc_detailed(graph, config)  # warm (or verify disk warmth)
    res = apgre_bc_delta(graph, added, removed, cache=store, config=config)
    stats = res.result.stats
    scores = res.scores
    k = min(args.top, res.graph.n)
    order = np.argsort(-scores)[:k]
    print(
        f"# APGRE BC on {args.graph} + delta {args.delta} "
        f"(n={res.graph.n}, arcs={res.graph.num_arcs}, "
        f"+{len(added)}/-{len(removed)} edges)"
    )
    print(f"{'vertex':>10s} {'bc':>16s}")
    for v in order.tolist():
        print(f"{v:>10d} {scores[v]:>16.4f}")
    print(
        f"# incremental: {stats.subgraphs_replayed} sub-graph(s) "
        f"replayed, {stats.subgraphs_recomputed} recomputed "
        f"({stats.edges_replayed} edges replayed, "
        f"{stats.edges_traversed} traversed)"
    )
    return 0


def _cmd_partition(args) -> int:
    from repro.bench.report import render_table
    from repro.decompose.partition import DEFAULT_THRESHOLD, graph_partition
    from repro.io.registry import load_graph
    from repro.metrics.stats import partition_stats

    graph = load_graph(args.graph, directed=args.directed)
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    partition = graph_partition(graph, threshold=threshold)
    stats = partition_stats(partition, name=os.path.basename(args.graph))
    rows = [
        [i + 1, row.num_vertices, row.num_arcs,
         f"{row.vertex_fraction:.2%}", f"{row.arc_fraction:.2%}"]
        for i, row in enumerate(stats.rows)
    ]
    print(
        render_table(
            f"Partition of {args.graph} "
            f"(#SG={stats.num_subgraphs}, threshold={threshold})",
            ["rank", "#V", "#E", "V/G.V", "E/G.E"],
            rows,
        )
    )
    return 0


def _cmd_info(args) -> int:
    from repro.io.registry import load_graph
    from repro.metrics.stats import bcc_size_histogram, graph_stats

    graph = load_graph(args.graph, directed=args.directed)
    if args.as_json:
        import json

        from repro.introspect import info_payload

        payload = info_payload(
            graph, name=os.path.basename(args.graph), source=args.graph
        )
        print(json.dumps(payload, indent=2))
        return 0
    stats = graph_stats(graph, name=os.path.basename(args.graph))
    print(f"# {stats.name}")
    print(f"vertices             : {stats.num_vertices}")
    print(f"arcs                 : {stats.num_arcs}")
    print(f"directed             : {'yes' if stats.directed else 'no'}")
    print(f"articulation points  : {stats.num_articulation_points}")
    print(
        f"pendant vertices     : {stats.num_pendants} "
        f"({stats.pendant_fraction:.1%})"
    )
    print(f"max degree           : {stats.max_degree}")
    print(f"mean degree          : {stats.mean_degree:.2f}")
    buckets = bcc_size_histogram(graph)
    total = sum(count for _lo, _hi, count in buckets)
    print(f"biconnected components: {total}")
    for lo, hi, count in buckets:
        label = f"{lo}" if hi == lo else f"{lo}-{hi}"
        print(f"  BCC size {label:>13s} : {count}")
    _print_registries()
    return 0


def _print_registries() -> None:
    """Execution-backend and compute-kernel availability listings."""
    from repro.graph.kernels import kernel_report
    from repro.parallel.backends import backend_report

    print("execution backends:")
    for name, row in backend_report().items():
        mark = "available" if row["available"] else "unavailable"
        star = " (default)" if row["default"] else ""
        line = f"  {name:<10s}: {mark}{star}"
        if not row["available"] and row.get("reason"):
            line += f" — {row['reason']}"
        print(line)
    print("compute kernels:")
    for name, row in kernel_report().items():
        mark = "available" if row["available"] else "unavailable"
        star = " (default)" if row["default"] else ""
        line = f"  {name:<10s}: {mark}{star} — {row['description']}"
        if not row["available"] and row.get("reason"):
            line += f" ({row['reason']})"
        print(line)


def _cmd_convert(args) -> int:
    from repro.io.binary import load_npz, save_npz
    from repro.io.registry import load_graph, save_graph

    if str(args.source).endswith(".npz"):
        graph = load_npz(args.source)
    else:
        graph = load_graph(args.source, directed=args.directed)
    if args.target_format == "npz" or (
        not args.target_format and str(args.target).endswith(".npz")
    ):
        save_npz(graph, args.target)
    else:
        save_graph(graph, args.target, fmt=args.target_format)
    print(
        f"wrote {args.target} (n={graph.n}, arcs={graph.num_arcs}, "
        f"{'directed' if graph.directed else 'undirected'})"
    )
    return 0


def _cmd_compare(args) -> int:
    import time

    from repro.baselines.registry import get_algorithm
    from repro.io.registry import load_graph
    from repro.metrics.comparison import compare_scores

    graph = load_graph(args.graph, directed=args.directed)
    results = {}
    for role, name in (("reference", args.reference),
                       ("candidate", args.candidate)):
        fn = get_algorithm(name)
        t0 = time.perf_counter()
        scores = fn(graph)
        results[role] = (name, time.perf_counter() - t0, scores)
    ref_name, ref_t, ref_scores = results["reference"]
    cand_name, cand_t, cand_scores = results["candidate"]
    cmp = compare_scores(ref_scores, cand_scores)
    print(f"# {cand_name} vs {ref_name} on {args.graph}")
    print(f"{ref_name:>16s} : {ref_t:.4f}s")
    print(f"{cand_name:>16s} : {cand_t:.4f}s  (speedup {ref_t / cand_t:.2f}x)")
    print(f"max abs diff     : {cmp.max_abs_diff:.3g}")
    print(f"pearson          : {cmp.pearson:.4f}")
    print(f"kendall tau      : {cmp.kendall:.4f}")
    print(f"top-10% overlap  : {cmp.top10_overlap:.4f}")
    print(f"exact match      : {'yes' if cmp.exact_match else 'no'}")
    return 0


def _cmd_bench(args) -> int:
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.graphs is not None:
        os.environ["REPRO_GRAPHS"] = args.graphs
    if args.timeout is not None:
        os.environ["REPRO_BENCH_TIMEOUT"] = str(args.timeout)
    from repro.bench.registry import experiment_ids, get_experiment

    if args.list:
        for exp_id in experiment_ids():
            print(exp_id)
        return 0
    ids = args.experiments or experiment_ids()
    results = []
    for exp_id in ids:
        result = get_experiment(exp_id)()
        results.append(result)
        print(result.render())
        print()
    if args.save:
        from repro.bench.persistence import save_results
        from repro.bench.workloads import bench_graph_names, bench_scale

        save_results(
            results,
            args.save,
            metadata={
                "scale": bench_scale(),
                "graphs": bench_graph_names(),
            },
        )
        print(f"saved {len(results)} experiment(s) to {args.save}")
    return 0


def _cmd_gc(args) -> int:
    from repro.parallel.sharedmem import (
        DEFAULT_SHM_DIR,
        collect_orphans,
        list_orphans,
    )

    shm_dir = args.shm_dir if args.shm_dir is not None else DEFAULT_SHM_DIR
    if args.dry_run:
        orphans = list_orphans(shm_dir)
        verb = "orphaned"
    else:
        orphans = collect_orphans(shm_dir)
        verb = "removed"
    for seg in orphans:
        print(
            f"{verb}: {seg.name} ({seg.size} bytes, "
            f"dead pid {seg.pid})"
        )
    total = sum(seg.size for seg in orphans)
    print(
        f"# {len(orphans)} orphaned segment(s) {verb} "
        f"({total} bytes) under {shm_dir}"
    )
    return 0


def _cmd_selftest(_args) -> int:
    from repro.selftest import run_selftest

    print(run_selftest())
    return 0


def _cmd_suite(_args) -> int:
    from repro.bench.report import render_table
    from repro.bench.workloads import bench_scale, get_suite

    rows = [
        [name, g.n, g.num_arcs, "Y" if g.directed else "N"]
        for name, g in get_suite().items()
    ]
    print(
        render_table(
            f"Analogue suite (scale={bench_scale()})",
            ["Graph", "#V", "#arcs", "Directed"],
            rows,
        )
    )
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.cache.store import ContributionStore
    from repro.core.config import APGREConfig
    from repro.io.registry import load_graph
    from repro.serve.score_lru import ScoreLRU
    from repro.serve.server import make_server

    graph = load_graph(args.graph, directed=args.directed)
    store = None
    if args.no_cache:
        if args.cache_dir is not None:
            print(
                "repro-bc: error: --no-cache and --cache-dir are "
                "mutually exclusive",
                file=sys.stderr,
            )
            return 2
    else:
        store = ContributionStore(cache_dir=args.cache_dir)
    cfg_kwargs = {
        "workers": args.workers,
        "steal": args.steal,
        "max_retries": args.max_retries,
        "fallback": not args.no_fallback,
        "cache": store,
    }
    if args.threshold is not None:
        cfg_kwargs["threshold"] = args.threshold
    if args.backend is not None:
        cfg_kwargs["backend"] = args.backend
    if args.kernel is not None:
        cfg_kwargs["kernel"] = args.kernel
    if args.batch_size is not None:
        cfg_kwargs["batch_size"] = args.batch_size
    if args.compress:
        cfg_kwargs["compress"] = True
    if args.shard or args.shard_max_size is not None:
        cfg_kwargs["shard"] = True
        if args.shard_max_size is not None:
            cfg_kwargs["shard_max_size"] = args.shard_max_size
    if args.timeout is not None:
        cfg_kwargs["timeout"] = args.timeout
    base = APGREConfig(**cfg_kwargs)
    lru = ScoreLRU(max_entries=args.lru_entries, max_bytes=args.lru_bytes)
    server = make_server(
        graph,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        base_config=base,
        store=store,
        lru=lru,
        name=os.path.basename(args.graph),
        source=args.graph,
        verbose=args.verbose,
    )
    state = server.state
    if args.unix_socket is not None:
        address = f"unix:{args.unix_socket}"
    else:
        address = f"http://{server.server_address[0]}:{server.server_address[1]}"
    print(
        f"repro-bc serve: {args.graph} resident "
        f"(n={graph.n}, arcs={graph.num_arcs}), version 1",
        flush=True,
    )
    print(f"repro-bc serve: listening on {address}", flush=True)

    def _drain(signum, frame):  # pragma: no cover - signal path
        state.draining = True
        # shutdown() blocks until the accept loop notices; it must not
        # run on the thread that is *inside* serve_forever
        threading.Thread(target=server.shutdown, daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        try:
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
        except (ValueError, OSError):  # pragma: no cover - platforms
            pass
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    served = sum(state.requests.values())
    print(
        f"repro-bc serve: drained cleanly ({served} request(s) served, "
        f"final version {state.manager.version})",
        flush=True,
    )
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.serve.client import ServeClient

    if args.unix_socket is not None:
        client = ServeClient(
            unix_socket=args.unix_socket, timeout=args.timeout
        )
    else:
        client = ServeClient(
            host=args.host, port=args.port, timeout=args.timeout
        )
    params = {}
    for item in args.param:
        if "=" not in item:
            print(
                f"repro-bc: error: --param expects KEY=VALUE, got "
                f"{item!r}",
                file=sys.stderr,
            )
            return 2
        key, value = item.split("=", 1)
        params[key] = value
    if args.top is not None:
        params["top"] = args.top
    if args.full:
        params["full"] = True
    if args.what == "health":
        payload = client.healthz()
    elif args.what == "stats":
        payload = client.stats()
    elif args.what == "bc":
        payload = client.bc(**params)
    elif args.what == "vertex":
        if args.vertex is None:
            print(
                "repro-bc: error: query vertex needs --vertex ID",
                file=sys.stderr,
            )
            return 2
        payload = client.vertex(args.vertex, **params)
    else:  # delta
        if args.delta_file is None:
            print(
                "repro-bc: error: query delta needs --delta-file FILE",
                file=sys.stderr,
            )
            return 2
        from pathlib import Path

        payload = client.delta(text=Path(args.delta_file).read_text())
    print(json.dumps(payload, indent=2))
    return 0


def _sigterm_to_interrupt(signum, frame):  # pragma: no cover - signal
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Deliberate failures (:class:`repro.errors.ReproError` — bad graph
    files, unknown algorithms, unhealthy execution with fallback
    disabled, a journal that cannot honour ``--resume``) and
    file-system errors exit with code 2 and a one-line message on
    stderr instead of a traceback.  SIGTERM is remapped to
    :class:`KeyboardInterrupt` for the whole invocation, so both
    Ctrl-C and ``kill`` drain gracefully — in-flight work finishes,
    journals finalise as resumable, shared memory is unlinked — and
    exit with the conventional code 130.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "compute": _cmd_compute,
        "partition": _cmd_partition,
        "info": _cmd_info,
        "convert": _cmd_convert,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
        "suite": _cmd_suite,
        "selftest": _cmd_selftest,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "gc": _cmd_gc,
    }
    from repro.errors import ReproError

    import signal
    import threading

    previous_term = None
    if threading.current_thread() is threading.main_thread():
        try:
            previous_term = signal.signal(
                signal.SIGTERM, _sigterm_to_interrupt
            )
        except (ValueError, OSError):  # pragma: no cover - platforms
            previous_term = None
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"repro-bc: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro-bc: interrupted (work journaled so far is "
              "resumable with --resume)", file=sys.stderr)
        return 130
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
