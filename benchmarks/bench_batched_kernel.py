"""Batched-kernel smoke bench: serial vs batched wall-clock + MTEPS.

A small deterministic perf artifact for the batched multi-source BC
kernel (:mod:`repro.graph.batched`): two suite graphs, a fixed sorted
source sample, serial per-source (``mode="arcs"``) against
``batch_size="auto"``, recorded as wall-clock seconds, examined-edge
MTEPS and the speedup ratio.  Results land in
``benchmarks/results/bench_batched_kernel.json`` each run; the first
recorded numbers are committed as ``benchmarks/BENCH_baseline.json``
so later PRs have a perf trajectory to compare against.

Wall-clock is measured on uncounted runs (instrumented runs pay for
the tally); the MTEPS denominator comes from one counted serial run,
whose tally the batched path reproduces exactly (see
``tests/test_batched.py``).

Honest numbers note: the PR targeted a 3x speedup at ``auto`` on a
>= 50k-vertex suite graph.  On a single core the measured ceiling is
~1.5-1.9x (per-source numpy BFS is dispatch-bound, but the batched
kernel's per-arc gathers land in L3 instead of L2); the baseline
records what the kernel actually delivers, and the assertion below
guards the achieved level, not the aspiration.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.common import WorkCounter, run_per_source
from repro.bench.workloads import get_graph
from repro.metrics.teps import examined_mteps

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

#: (suite graph, scale, sources) — both >= 50k vertices so the numbers
#: speak to the acceptance workload, one deep grid + one shallow
#: social analogue to cover both frontier regimes.
WORKLOADS = [
    ("USA-roadBAY", 10.5, 128),
    ("WikiTalk", 49.0, 128),
]
#: shrunken workloads for ``--quick`` (the CI smoke job): same two
#: frontier regimes, sizes that keep the job under a minute
QUICK_WORKLOADS = [
    ("USA-roadBAY", 2.0, 32),
    ("WikiTalk", 8.0, 32),
]
SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_workload(name, scale, n_sources):
    """One graph's serial-vs-batched measurement row."""
    graph = get_graph(name, scale=scale)
    rng = np.random.default_rng(SEED)
    sources = np.sort(
        rng.choice(graph.n, size=min(n_sources, graph.n), replace=False)
    ).tolist()
    counter = WorkCounter()
    run_per_source(graph, sources=sources, mode="arcs", counter=counter)
    edges = counter.edges
    serial, t_serial = _best_of(
        lambda: run_per_source(graph, sources=sources, mode="arcs")
    )
    batched, t_batched = _best_of(
        lambda: run_per_source(
            graph, sources=sources, mode="arcs", batch_size="auto"
        )
    )
    np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-9)
    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "sources": len(sources),
        "edges_examined": edges,
        "serial_seconds": round(t_serial, 4),
        "batched_seconds": round(t_batched, 4),
        "serial_mteps": round(examined_mteps(edges, t_serial), 2),
        "batched_mteps": round(examined_mteps(edges, t_batched), 2),
        "speedup": round(t_serial / t_batched, 3),
    }


def test_batched_kernel_smoke(results_dir):
    rows = [measure_workload(*w) for w in WORKLOADS]
    payload = {
        "bench": "bench_batched_kernel",
        "seed": SEED,
        "repeat": REPEAT,
        "workloads": rows,
    }
    out = results_dir / "bench_batched_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    for row in rows:
        # regression guard at the achieved level: the batched kernel
        # must keep beating per-source on every recorded workload
        assert row["speedup"] >= 1.2, (
            f"batched kernel regressed on {row['graph']}: "
            f"{row['speedup']}x (baseline ~1.5-1.9x)"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_rows = {r["graph"]: r for r in baseline["workloads"]}
        for row in rows:
            base = base_rows.get(row["graph"])
            if base is None:
                continue
            assert row["speedup"] >= 0.5 * base["speedup"], (
                f"{row['graph']}: speedup {row['speedup']}x fell to less "
                f"than half the committed baseline {base['speedup']}x"
            )


def main(argv=None):
    """CLI entry point for the CI smoke job.

    ``--quick`` runs the shrunken workloads with a correctness check
    and a lenient >= 1.0x floor (small graphs are dispatch-bound, so
    the full-size 1.2x guard would be noise there); without it, the
    full pytest-equivalent measurement runs and writes results.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke workloads"
    )
    args = parser.parse_args(argv)
    workloads = QUICK_WORKLOADS if args.quick else WORKLOADS
    rows = [measure_workload(*w) for w in workloads]
    print(json.dumps({"bench": "bench_batched_kernel", "quick": args.quick,
                      "workloads": rows}, indent=2))
    floor = 1.0 if args.quick else 1.2
    for row in rows:
        assert row["speedup"] >= floor, (
            f"batched kernel regressed on {row['graph']}: "
            f"{row['speedup']}x (floor {floor}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
