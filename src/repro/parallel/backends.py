"""Execution-backend registry: ``serial | threads | processes``.

The batched BC kernel can run its source batches on three engines —
inline (serial), on worker threads over the shared in-process CSR
(:mod:`repro.parallel.threaded`), or on the fork-based shared-memory
process pool (:mod:`repro.parallel.batched_pool`).  This module puts
them behind one dispatcher so every composing layer (``run_per_source``,
the APGRE driver, the cache/journal passes, the CLI and the benches)
selects an engine by *name* instead of hard-coding a pool:

* each backend carries a capability **probe** (evaluated lazily, so a
  capability appearing or vanishing — scipy missing, a platform
  without ``fork`` — is always reflected);
* :func:`default_backend_name` picks the best engine for this host:
  ``threads`` when scipy's GIL-releasing SpMM kernel is importable
  (true multicore with zero fork/pickle/commit overhead), else
  ``processes`` where ``fork`` exists, else ``serial``;
* the ``REPRO_PARALLEL_BACKEND`` environment variable overrides the
  default for any run that did not pin a backend explicitly;
* requesting an unavailable backend degrades gracefully to the best
  available one with a visible :class:`RuntimeWarning`; an *unknown*
  name is a hard :class:`~repro.errors.AlgorithmError`.

Every backend exposes the same two call surfaces:

``contributions(compute, weights, *, n, workers, steal, config, health)``
    The engine contract shared with the process pool's
    ``_pooled_contributions``: fold ``compute(batch_id) -> (verts,
    delta, edges)`` over all batches, returning ``(scores,
    edge_total, batch_edges)`` with exact per-batch edge tallies.

``scores(graph, sources, *, batch, workers, steal, kernel, counter,
config, health)``
    The graph-level composition used by ``run_per_source``.

New engines (the multi-GPU route the ROADMAP names) register through
:func:`register_backend` without touching any dispatch site.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import AlgorithmError
from repro.graph.batched import spmm_available
from repro.parallel import pool as _pool
from repro.parallel.batched_pool import (
    _pooled_contributions,
    batched_pool_bc_scores,
)
from repro.parallel.threaded import (
    threaded_bc_scores,
    threaded_contributions,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "register_backend",
    "backend_names",
    "backend_report",
    "get_backend",
    "default_backend_name",
    "resolve_backend",
]

#: Environment variable overriding the default backend selection.
BACKEND_ENV_VAR = "REPRO_PARALLEL_BACKEND"


@dataclass(frozen=True)
class ExecutionBackend:
    """One registered execution engine.

    ``probe`` is re-evaluated on every availability check (cheap —
    the underlying capability flags are import-time constants) so
    tests can monkeypatch capabilities and the registry reflects it.
    ``shared_csr`` feeds the ``auto_batch_size`` RAM model: engines
    whose workers share one address space charge the CSR once instead
    of per worker.
    """

    name: str
    probe: Callable[[], bool]
    unavailable_reason: str
    contributions: Callable
    scores: Callable
    shared_csr: bool = False

    def available(self) -> bool:
        return bool(self.probe())


def _serial_contributions(
    compute,
    weights,
    *,
    n: int,
    workers: int = 1,
    steal: bool = True,
    config=None,
    health=None,
):
    # the threaded engine's inline rung IS the serial engine: the
    # bit-identical chunk loop with full health bookkeeping
    return threaded_contributions(
        compute, weights, n=n, workers=1, config=config, health=health
    )


def _serial_scores(
    graph,
    sources,
    *,
    batch: int,
    workers: int = 1,
    steal: bool = True,
    kernel: Optional[str] = None,
    counter=None,
    config=None,
    health=None,
):
    return threaded_bc_scores(
        graph, sources, batch=batch, workers=1, kernel=kernel,
        counter=counter, config=config, health=health,
    )


_REGISTRY: Dict[str, ExecutionBackend] = {}

#: Preference order for default selection and graceful degradation.
_PREFERENCE: Tuple[str, ...] = ("threads", "processes", "serial")


def register_backend(backend: ExecutionBackend) -> None:
    """Add (or replace) an engine in the registry."""
    _REGISTRY[backend.name] = backend


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> ExecutionBackend:
    """The registered backend called ``name`` (no availability check)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown parallel backend {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


register_backend(
    ExecutionBackend(
        name="serial",
        probe=lambda: True,
        unavailable_reason="",
        contributions=_serial_contributions,
        scores=_serial_scores,
        shared_csr=True,
    )
)
register_backend(
    ExecutionBackend(
        name="threads",
        probe=spmm_available,
        unavailable_reason=(
            "scipy's GIL-releasing SpMM kernel is not importable; "
            "GIL-bound threads cannot scale the pure-numpy kernel"
        ),
        contributions=threaded_contributions,
        scores=threaded_bc_scores,
        shared_csr=True,
    )
)
register_backend(
    ExecutionBackend(
        name="processes",
        probe=_pool._supports_fork,
        unavailable_reason="this platform does not support fork",
        contributions=_pooled_contributions,
        scores=batched_pool_bc_scores,
    )
)


def default_backend_name() -> str:
    """Best engine for this host, by capability probe.

    ``threads`` when the SpMM kernel can release the GIL, else
    ``processes`` where ``fork`` exists, else ``serial``.
    """
    for name in _PREFERENCE:
        backend = _REGISTRY.get(name)
        if backend is not None and backend.available():
            return name
    return "serial"


def backend_report() -> Dict[str, Dict[str, object]]:
    """Probe results for every registered engine (CLI / provenance)."""
    report: Dict[str, Dict[str, object]] = {}
    default = default_backend_name()
    for name, backend in _REGISTRY.items():
        ok = backend.available()
        report[name] = {
            "available": ok,
            "default": name == default,
            "reason": None if ok else backend.unavailable_reason,
        }
    return report


def resolve_backend(name: Optional[str] = None) -> ExecutionBackend:
    """Resolve a backend request to a usable engine.

    ``None`` defers to the ``REPRO_PARALLEL_BACKEND`` environment
    variable and then to :func:`default_backend_name`; the explicit
    name ``"auto"`` skips the environment and takes the host default.
    Unknown names (from either source) raise
    :class:`~repro.errors.AlgorithmError`.  A known but unavailable
    backend falls back to the best available engine with a
    :class:`RuntimeWarning` naming the reason.
    """
    if name is None:
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        name = env or "auto"
    if name == "auto":
        name = default_backend_name()
    backend = get_backend(name)
    if backend.available():
        return backend
    fallback = get_backend(default_backend_name())
    warnings.warn(
        f"parallel backend {name!r} is unavailable "
        f"({backend.unavailable_reason}); falling back to "
        f"{fallback.name!r}",
        RuntimeWarning,
        stacklevel=2,
    )
    return fallback
