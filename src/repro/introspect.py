"""Machine-readable provenance: graph, registry and version payloads.

One JSON-shaped vocabulary shared by every surface that reports what
this build can do and what it is looking at:

* ``repro-bc info --json`` prints :func:`info_payload` — the structural
  statistics of a graph file plus :func:`registry_payload`;
* the serving daemon's ``/stats`` endpoint (:mod:`repro.serve`) embeds
  :func:`registry_payload` verbatim, so a client can discover which
  execution backends and compute kernels a request may ask for;
* benchmarks embed the sibling
  :func:`repro.bench.persistence.environment_provenance` block, which
  reports the same registries in summary form.

Everything here is plain dict/list/str/int/float/bool/None, so
``json.dumps`` always succeeds without a custom encoder.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._version import __version__
from repro.graph.csr import CSRGraph

__all__ = ["registry_payload", "info_payload"]


def registry_payload() -> Dict:
    """Availability report of the execution-backend and kernel registries.

    The exact payload ``repro-bc info --json`` prints under
    ``"registries"`` and the daemon's ``/stats`` returns under the same
    key: per-backend and per-kernel availability with the reason for
    any capability miss, plus which name ``"auto"`` resolves to.
    """
    from repro.graph.kernels import default_kernel_name, kernel_report
    from repro.parallel.backends import backend_report, default_backend_name

    return {
        "backends": backend_report(),
        "backend_default": default_backend_name(),
        "kernels": kernel_report(),
        "kernel_default": default_kernel_name(),
    }


def info_payload(
    graph: CSRGraph, *, name: str = "", source: Optional[str] = None
) -> Dict:
    """The ``repro-bc info`` view of one graph, as a JSON-shaped dict.

    Structural statistics (size, articulation points, pendant fraction,
    the power-of-two BCC size histogram that motivates sharding) plus
    :func:`registry_payload` and the package version — everything the
    human-readable listing prints, machine-readable.
    """
    from repro.metrics.stats import bcc_size_histogram, graph_stats

    stats = graph_stats(graph, name=name)
    buckets = bcc_size_histogram(graph)
    payload: Dict = {
        "name": stats.name,
        "vertices": int(stats.num_vertices),
        "arcs": int(stats.num_arcs),
        "directed": bool(stats.directed),
        "articulation_points": int(stats.num_articulation_points),
        "pendant_vertices": int(stats.num_pendants),
        "pendant_fraction": float(stats.pendant_fraction),
        "max_degree": int(stats.max_degree),
        "mean_degree": float(stats.mean_degree),
        "bcc_count": int(sum(count for _lo, _hi, count in buckets)),
        "bcc_size_histogram": [
            {"lo": int(lo), "hi": int(hi), "count": int(count)}
            for lo, hi, count in buckets
        ],
        "registries": registry_payload(),
        "repro_version": __version__,
    }
    if source is not None:
        payload["source"] = str(source)
    return payload
