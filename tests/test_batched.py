"""Tests for the batched multi-source kernels.

The contract under test: batching only regroups work.  Per-row
``dist``/``sigma`` are *bit-identical* to :func:`bfs_sigma`, BC scores
match the per-source path within float64 summation tolerance, and the
examined-edge tally (the MTEPS denominator) is exactly the serial one.
"""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc, brandes_python_bc
from repro.baselines.common import WorkCounter, run_per_source
from repro.baselines.registry import get_algorithm
from repro.core.apgre import apgre_bc
from repro.core.batched_subgraph import bc_subgraph_batched
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import AlgorithmError
from repro.generators.suite import paper_suite
from repro.graph.batched import (
    DEFAULT_MAX_BATCH,
    auto_batch_size,
    batched_contributions,
    bfs_sigma_batched,
    resolve_batch_size,
)
from repro.graph.traversal import bfs_sigma

from tests.conftest import nx_betweenness


class TestBfsSigmaBatched:
    def test_rows_match_serial_bfs(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        sources = sorted({0, g.n // 3, g.n // 2, g.n - 1})
        res = bfs_sigma_batched(g, sources, keep_level_arcs=True)
        serial_edges = 0
        for row, s in enumerate(sources):
            ref = bfs_sigma(g, s, keep_level_arcs=True)
            serial_edges += ref.edges_traversed
            assert np.array_equal(res.dist[row], ref.dist)
            assert np.array_equal(res.sigma[row], ref.sigma)
        assert res.edges_traversed == serial_edges

    def test_level_arcs_match_serial(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        n = g.n
        sources = sorted({0, n - 1})
        res = bfs_sigma_batched(g, sources, keep_level_arcs=True)
        for row, s in enumerate(sources):
            ref = bfs_sigma(g, s, keep_level_arcs=True)
            for d, (ref_src, ref_dst) in enumerate(ref.level_arcs or []):
                if d < len(res.level_arcs):
                    b_src, b_dst = res.level_arcs[d]
                    mask = b_src // n == row
                    got = set(
                        zip(
                            (b_src[mask] % n).tolist(),
                            (b_dst[mask] % n).tolist(),
                        )
                    )
                else:
                    got = set()
                assert got == set(zip(ref_src.tolist(), ref_dst.tolist()))

    def test_single_source_batch(self, und_random):
        res = bfs_sigma_batched(und_random, [5])
        ref = bfs_sigma(und_random, 5)
        assert np.array_equal(res.dist[0], ref.dist)
        assert np.array_equal(res.sigma[0], ref.sigma)
        assert res.edges_traversed == ref.edges_traversed
        assert res.batch == 1
        assert res.depth == ref.depth

    def test_empty_batch_rejected(self, und_random):
        with pytest.raises(AlgorithmError):
            bfs_sigma_batched(und_random, [])


class TestBatchSizing:
    def test_auto_respects_memory_budget(self):
        # per row: 44n + 20m bytes; a quarter of available_bytes is
        # budgeted, so 8 rows need 32x the per-row estimate
        n, m = 1000, 4000
        per_row = 44 * n + 20 * m
        assert auto_batch_size(n, m, available_bytes=per_row * 32) == 8

    def test_auto_bounds(self):
        assert auto_batch_size(10, 10, available_bytes=0) == 1
        assert (
            auto_batch_size(10, 10, available_bytes=1 << 60)
            == DEFAULT_MAX_BATCH
        )
        assert auto_batch_size(0, 0) == 1

    def test_resolve(self):
        assert resolve_batch_size(None, 10, 10) is None
        assert resolve_batch_size(7, 10, 10) == 7
        auto = resolve_batch_size("auto", 10, 10)
        assert 1 <= auto <= DEFAULT_MAX_BATCH
        with pytest.raises(AlgorithmError):
            resolve_batch_size(0, 10, 10)
        with pytest.raises(AlgorithmError):
            resolve_batch_size(-3, 10, 10)
        with pytest.raises(AlgorithmError):
            resolve_batch_size("large", 10, 10)

    def test_config_validation(self):
        APGREConfig(batch_size=None)
        APGREConfig(batch_size="auto")
        APGREConfig(batch_size=16)
        for bad in (0, -1, "big", 2.5):
            with pytest.raises(AlgorithmError):
                APGREConfig(batch_size=bad)


class TestBatchedBrandes:
    def test_matches_oracle(self, zoo_entry):
        _name, g, nxg = zoo_entry
        if g.n == 0:
            return
        ref = nx_betweenness(nxg)
        got = brandes_bc(g, batch_size=5)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)

    def test_batch_size_invariance(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        base = brandes_bc(g)
        for bs in (1, 3, g.n, "auto"):
            got = brandes_bc(g, batch_size=bs)
            np.testing.assert_allclose(got, base, rtol=1e-9, atol=1e-9)

    def test_edge_tally_identical_to_serial(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        serial, batched = WorkCounter(), WorkCounter()
        brandes_bc(g, counter=serial)
        brandes_bc(g, counter=batched, batch_size=7)
        assert batched.edges == serial.edges

    def test_contributions_match_per_source_sum(self, und_random):
        g = und_random
        sources = [0, 3, 9, 20]
        expected = run_per_source(g, sources=sources, mode="arcs")
        got = batched_contributions(g, sources)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_requires_arcs_mode(self, und_random):
        with pytest.raises(AlgorithmError):
            run_per_source(und_random, mode="succs", batch_size=4)
        with pytest.raises(AlgorithmError):
            run_per_source(
                und_random,
                mode="arcs",
                forward=lambda *a, **k: None,
                batch_size=4,
            )

    def test_registry_entry(self, und_random):
        fn = get_algorithm("batched")
        np.testing.assert_allclose(
            fn(und_random), brandes_bc(und_random), rtol=1e-9, atol=1e-9
        )

    def test_workers_compose_with_batching(self, und_random):
        got = brandes_python_bc(und_random)
        batched = run_per_source(
            und_random, mode="arcs", workers=2, batch_size=4
        )
        np.testing.assert_allclose(batched, got, rtol=1e-9, atol=1e-9)


class TestBatchedSubgraph:
    @pytest.mark.parametrize("eliminate", [True, False])
    def test_matches_per_source_subgraph(self, zoo_entry, eliminate):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        partition = graph_partition(g)
        compute_alpha_beta(g, partition)
        for sg in partition.subgraphs:
            serial_c, batched_c = WorkCounter(), WorkCounter()
            ref = bc_subgraph(
                sg, eliminate_pendants=eliminate, counter=serial_c
            )
            for bs in (1, 3, "auto"):
                got = bc_subgraph_batched(
                    sg,
                    eliminate_pendants=eliminate,
                    batch_size=bs,
                    counter=batched_c if bs == 3 else None,
                )
                np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)
            assert batched_c.edges == serial_c.edges

    def test_root_subsets_sum(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        partition = graph_partition(g)
        compute_alpha_beta(g, partition)
        sg = partition.subgraphs[0]
        roots = sg.roots
        if roots.size < 2:
            return
        whole = bc_subgraph_batched(sg, batch_size=2)
        half = roots.size // 2
        split = bc_subgraph_batched(
            sg, roots=roots[:half], batch_size=2
        ) + bc_subgraph_batched(sg, roots=roots[half:], batch_size=2)
        np.testing.assert_allclose(split, whole, rtol=1e-9, atol=1e-9)


class TestAPGREBatched:
    def test_matches_oracle(self, zoo_entry):
        _name, g, nxg = zoo_entry
        if g.n == 0:
            return
        ref = nx_betweenness(nxg)
        for bs in (4, "auto"):
            got = apgre_bc(g, batch_size=bs)
            np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)

    def test_processes_mode(self, und_random):
        ref = apgre_bc(und_random)
        got = apgre_bc(
            und_random, parallel="processes", workers=2, batch_size=3
        )
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)

    def test_no_elimination_ablation(self, und_random):
        ref = apgre_bc(und_random, eliminate_pendants=False)
        got = apgre_bc(
            und_random, eliminate_pendants=False, batch_size="auto"
        )
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)


class TestGeneratorSuite:
    """Acceptance sweep: batched vs the pure-Python oracle, all 12
    Table-1 analogues (reduced scale keeps the oracle affordable)."""

    @pytest.mark.timeout(300)
    def test_full_suite_matches_python_oracle(self):
        for name, g in paper_suite(scale=0.2).items():
            ref = brandes_python_bc(g)
            got = brandes_bc(g, batch_size="auto")
            np.testing.assert_allclose(
                got, ref, rtol=1e-9, atol=1e-9,
                err_msg=f"batched kernel diverged on {name}",
            )
