"""Graph substrate: CSR storage, builders, conversions, traversals.

The whole package operates on :class:`repro.graph.csr.CSRGraph`, an
immutable compressed-sparse-row adjacency structure mirroring the
storage used by the paper's C++ implementation (§5.1: "the graphs are
stored in Compressed Sparse Row (CSR) format").
"""

from repro.graph.csr import CSRGraph
from repro.graph.build import (
    from_edges,
    from_adjacency,
    from_networkx,
    empty_graph,
)
from repro.graph.ops import (
    connected_components,
    degrees,
    induced_subgraph,
    reachable_from,
    reverse_graph,
    to_undirected,
)
from repro.graph.kcore import core_numbers, k_core
from repro.graph.ordering import (
    apply_ordering,
    bfs_order,
    degree_order,
    random_order,
)
from repro.graph.scc import (
    SCCResult,
    condensation,
    strongly_connected_components,
)
from repro.graph.traversal import (
    BFSResult,
    bfs,
    bfs_blocked,
    bfs_levels,
    bfs_sigma,
    reverse_bfs_blocked,
)
from repro.graph.batched import (
    BatchedBFSResult,
    auto_batch_size,
    batched_bc_scores,
    batched_contributions,
    bfs_sigma_batched,
    resolve_batch_size,
    spmm_available,
    spmm_contributions,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "empty_graph",
    "connected_components",
    "degrees",
    "induced_subgraph",
    "reachable_from",
    "reverse_graph",
    "to_undirected",
    "core_numbers",
    "k_core",
    "apply_ordering",
    "bfs_order",
    "degree_order",
    "random_order",
    "SCCResult",
    "condensation",
    "strongly_connected_components",
    "BFSResult",
    "bfs",
    "bfs_blocked",
    "bfs_levels",
    "bfs_sigma",
    "reverse_bfs_blocked",
    "BatchedBFSResult",
    "auto_batch_size",
    "batched_bc_scores",
    "batched_contributions",
    "bfs_sigma_batched",
    "resolve_batch_size",
    "spmm_available",
    "spmm_contributions",
]
