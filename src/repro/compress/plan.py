"""The compression plan: what was eliminated, and how to invert it.

A :class:`SubgraphPlan` is the record the reduction ladder
(:mod:`repro.compress.ladder`) leaves behind for one sub-graph.  It
keeps every array in the sub-graph's *local* id space — eliminated
vertices simply become isolated in the compressed CSR, so no remapping
layer sits between the compressed kernel and the driver's merge, and
the kernel accumulates scores at their final local positions directly.

Three elimination rules, each tagged in ``status``:

``PEELED``
    Single-level pendant sources (the partition's ``removed`` set)
    folded into their parents as extra endpoint mass ``pfold``.
``TWIN``
    Members of a type-I (same open neighbourhood, non-adjacent) or
    type-II (same closed neighbourhood, adjacent) twin class collapsed
    into the class representative, which carries the multiplicity
    ``mult``.
``CHAIN``
    Interior vertices of a maximal degree-2 path contracted into one
    weighted super-edge of the recorded integer length.

The exact-inversion identity every plan satisfies (and the tests
assert)::

    vertices_peeled + vertices_merged + chain_interiors
        == n - n_core
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "STATUS_CORE",
    "STATUS_PEELED",
    "STATUS_TWIN",
    "STATUS_CHAIN",
    "TWIN_OPEN",
    "TWIN_CLOSED",
    "TwinClass",
    "Chain",
    "SubgraphPlan",
    "compression_plan",
]

STATUS_CORE = 0
STATUS_PEELED = 1
STATUS_TWIN = 2
STATUS_CHAIN = 3

TWIN_OPEN = 1  # type-I: same open neighbourhood, members non-adjacent
TWIN_CLOSED = 2  # type-II: same closed neighbourhood, members adjacent


@dataclass
class TwinClass:
    """One merged twin class (local ids).

    ``members`` includes the representative; ``neighbors`` are the
    representative's neighbours in the *expanded* graph (original
    neighbourhood of every member, one entry per neighbour class) and
    ``sigma_within`` is their multiplicity total — the σ of the
    distance-2 paths between two type-I members, used by the kernel's
    within-class analytic credit.  Type-II members are adjacent
    (distance 1, no intermediates), so their credit is zero and
    ``sigma_within`` is unused.
    """

    rep: int
    members: np.ndarray
    kind: int
    neighbors: np.ndarray
    sigma_within: float


@dataclass
class Chain:
    """One contracted degree-2 chain (local ids).

    ``interiors`` lists the eliminated interior vertices in path order
    from ``u`` to ``v``; the super-edge has integer length
    ``len(interiors) + 1``.  ``arc_uv``/``arc_vu`` index the two
    orientations of the super-edge in the compressed CSR's arc order,
    where the kernel accumulates the pair-mass flow that credits every
    interior.
    """

    u: int
    v: int
    interiors: np.ndarray
    arc_uv: int
    arc_vu: int

    @property
    def length(self) -> int:
        return int(self.interiors.size) + 1


@dataclass
class SubgraphPlan:
    """Everything needed to run (and invert) one sub-graph compressed.

    Attributes
    ----------
    n:
        Local vertex count of the original sub-graph.
    eliminate_pendants:
        The R/γ switch the plan was built under (it decides whether
        the pendant fold runs, so plans are memoized per flag).
    status:
        Per-vertex elimination tag (``STATUS_*``).
    rep:
        Twin members point at their class representative; every other
        vertex points at itself.  Indexing ``bc[rep]`` and dividing by
        ``mult[rep]`` inverts the merge exactly (members of one class
        are interchangeable under the class automorphism).
    mult:
        μ(v): twin-class size at representatives, 1 elsewhere — the
        σ-multiplicity a compressed vertex carries as an intermediate.
    pfold:
        Pendants folded into v (``w(v) − μ(v)``): endpoint mass that
        is *not* path multiplicity.
    core_graph:
        The compressed CSR over the full local id space (eliminated
        vertices isolated).  May contain super-edges.
    arc_lengths:
        Integer length per arc of ``core_graph`` (both orientations,
        aligned with ``core_graph.arcs()`` order).
    has_lengths:
        True iff any super-edge exists (selects the weighted sweep).
    expanded_graph:
        ``core_graph`` with every chain re-expanded to unit edges —
        the all-unit graph interior-endpoint sweeps run on.  Twin
        merges and pendant folds stay applied.
    twin_classes, chains:
        The per-rule records (see :class:`TwinClass` /
        :class:`Chain`).
    """

    n: int
    eliminate_pendants: bool
    status: np.ndarray
    rep: np.ndarray
    mult: np.ndarray
    pfold: np.ndarray
    core_graph: CSRGraph
    arc_lengths: np.ndarray
    has_lengths: bool
    expanded_graph: CSRGraph
    twin_classes: List[TwinClass] = field(default_factory=list)
    chains: List[Chain] = field(default_factory=list)
    # lazily built scipy CSR of (core_graph, arc_lengths) for dijkstra
    _sssp_matrix: Optional[object] = None

    @property
    def vertices_peeled(self) -> int:
        return int((self.status == STATUS_PEELED).sum())

    @property
    def vertices_merged(self) -> int:
        return int((self.status == STATUS_TWIN).sum())

    @property
    def chain_interiors(self) -> int:
        return int((self.status == STATUS_CHAIN).sum())

    @property
    def n_core(self) -> int:
        return int((self.status == STATUS_CORE).sum())

    @property
    def nontrivial(self) -> bool:
        """Whether any rule fired (trivial plans route to the plain
        kernels, keeping the batched SpMM path intact)."""
        return self.n_core < self.n

    def class_count(self, roots: np.ndarray) -> np.ndarray:
        """Per-vertex count of ``roots`` members mapping to each rep.

        Root subsets stay linear through compression: a chunk that
        contains ``cnt`` members of one twin class contributes exactly
        ``cnt`` of that class's ``mult`` member-sweeps, so chunked
        calls still sum to the full sub-graph scores.
        """
        counts = np.zeros(self.n, dtype=np.int64)
        np.add.at(counts, self.rep[roots], 1)
        return counts


def compression_plan(sg, *, eliminate_pendants: bool = True) -> SubgraphPlan:
    """The (memoized) compression plan of one partition sub-graph.

    Plans are deterministic functions of the sub-graph content, so
    they are cached on the ``Subgraph`` object per
    ``eliminate_pendants`` flag; fork-based workers inherit plans the
    parent already built, and any worker that lacks one rebuilds the
    identical plan locally.
    """
    from repro.compress.ladder import build_plan

    cache = getattr(sg, "_compress_plans", None)
    if cache is None:
        cache = {}
        sg._compress_plans = cache
    plan = cache.get(bool(eliminate_pendants))
    if plan is None:
        plan = build_plan(sg, eliminate_pendants=eliminate_pendants)
        cache[bool(eliminate_pendants)] = plan
    return plan
