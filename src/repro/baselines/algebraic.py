"""Algebraic (linear-algebra) betweenness centrality (extension).

The paper's related work cites Buluç & Gilbert's Combinatorial BLAS:
"use algebraic computation to compute BC and use MPI to exploit
coarse-grained parallelism" (§6, [23]). This module implements that
formulation on scipy.sparse: Brandes' two phases become sequences of
sparse matrix × dense matrix products over a *batch* of sources, so
one level step advances every source in the batch simultaneously.

With σ as an ``n × b`` dense matrix (one column per source):

* forward, level ``t``:  ``T = Aᵀ · (σ ⊙ [dist == t])`` and the new
  level is ``T ≠ 0`` among unvisited vertices;
* backward, level ``t``: ``δ += σ ⊙ (A · ((1 + δ)/σ ⊙ [dist == t+1]))
  ⊙ [dist == t]``.

Batching amortises the per-level interpreter overhead across ``b``
sources — the same motivation as the GPU/CombBLAS implementations —
at the cost of touching all ``nnz`` arcs every level, like the
``lockSyncFree`` baseline. scipy is imported lazily: the core package
stays numpy-only and this baseline simply raises if scipy is missing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

__all__ = ["algebraic_bc"]


def algebraic_bc(
    graph: CSRGraph,
    *,
    batch: int = 128,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC via batched sparse-matrix products (CombBLAS style).

    Parameters
    ----------
    graph:
        Any graph.
    batch:
        Sources processed per matrix sweep. Larger batches amortise
        level overhead but cost ``O(n · batch)`` dense memory.
    counter:
        Examined-edge tally; the algebraic method touches every arc
        once per level per batch, which is what gets counted.
    """
    try:
        from scipy.sparse import csr_matrix
    except ImportError as exc:  # pragma: no cover - scipy is installed in CI
        raise AlgorithmError(
            "algebraic_bc requires scipy (pip install scipy)"
        ) from exc
    if batch < 1:
        raise AlgorithmError(f"batch must be >= 1, got {batch}")

    n = graph.n
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    if n == 0:
        return bc
    data = np.ones(graph.num_arcs, dtype=SCORE_DTYPE)
    adj = csr_matrix(
        (data, graph.out_indices, graph.out_indptr), shape=(n, n)
    )
    adj_t = adj.T.tocsr()
    nnz = graph.num_arcs

    for start in range(0, n, batch):
        sources = np.arange(start, min(start + batch, n))
        b = sources.size
        dist = np.full((n, b), -1, dtype=np.int32)
        sigma = np.zeros((n, b), dtype=SCORE_DTYPE)
        cols = np.arange(b)
        dist[sources, cols] = 0
        sigma[sources, cols] = 1.0

        # ---- forward: batched level-synchronous σ counting ----
        frontier_sigma = np.zeros((n, b), dtype=SCORE_DTYPE)
        frontier_sigma[sources, cols] = 1.0
        level = 0
        depth = 0
        while frontier_sigma.any():
            t_matrix = adj_t @ frontier_sigma
            if counter is not None:
                counter.add(nnz)
            fresh = (t_matrix != 0) & (dist < 0)
            dist[fresh] = level + 1
            next_mask = dist == level + 1
            contrib = np.where(next_mask, t_matrix, 0.0)
            sigma += contrib
            frontier_sigma = contrib
            level += 1
            depth = level
            if not next_mask.any():
                break

        # ---- backward: batched dependency accumulation ----
        delta = np.zeros((n, b), dtype=SCORE_DTYPE)
        safe_sigma = np.where(sigma > 0, sigma, 1.0)
        for t in range(depth - 1, -1, -1):
            up_mask = dist == t + 1
            if not up_mask.any():
                continue
            u_matrix = np.where(up_mask, (1.0 + delta) / safe_sigma, 0.0)
            s_matrix = adj @ u_matrix
            if counter is not None:
                counter.add(nnz)
            here = dist == t
            delta += np.where(here, sigma * s_matrix, 0.0)
        delta[sources, cols] = 0.0
        bc += delta.sum(axis=1)
    return bc
