"""Direction-optimising BC (the paper's ``hybrid``).

Shun & Blelloch's Ligra BC uses Beamer's direction-optimising BFS
("combine a top-down BFS algorithm and a bottom-up BFS algorithm to
reduce the number of edges examined"): the forward phase switches to
bottom-up scans when the frontier grows dense. σ counting forbids
bottom-up early exit, so the win is smaller than for plain BFS —
consistent with the paper's Table 2, where hybrid loses badly on
high-diameter road graphs (bottom-up never pays off and the switch
heuristic only adds overhead).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma_hybrid

__all__ = ["hybrid_bc"]


def hybrid_bc(
    graph: CSRGraph,
    *,
    workers: int = 1,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC with a direction-optimising forward phase."""
    return run_per_source(
        graph,
        mode="succs",
        forward=bfs_sigma_hybrid,
        workers=workers,
        counter=counter,
    )
