"""Brandes' sequential algorithm (the paper's ``serial`` baseline).

Two implementations:

* :func:`brandes_bc` — the array implementation used as the timed
  ``serial`` row in the benchmark tables (single-threaded, one source
  at a time, vectorised per level — equivalent in structure to the
  paper's ``preds-serial`` SSCA baseline);
* :func:`brandes_python_bc` — a straightforward pure-Python transcription
  of Brandes (2001), optionally with exact :class:`fractions.Fraction`
  arithmetic. Slow; exists as the precision/correctness oracle the
  whole package is tested against.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

__all__ = ["brandes_bc", "brandes_python_bc"]


def brandes_bc(
    graph: CSRGraph,
    *,
    counter: Optional[WorkCounter] = None,
    batch_size=None,
    workers: int = 1,
    steal: bool = True,
    backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Exact BC via Brandes' algorithm (float64, unnormalised).

    Ordered-pair convention: for undirected graphs every unordered
    pair (s, t) contributes twice, matching the paper's definition
    BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st over a directed view of the graph.

    ``batch_size`` (positive int or ``"auto"``) advances that many
    sources simultaneously through the multi-source kernel
    (:mod:`repro.graph.batched`) — same scores within float64
    tolerance, same edge tally, far fewer per-level kernel launches.
    ``workers > 1`` composes with it: source batches fan out across
    the execution backend named by ``backend`` (``"threads"`` /
    ``"processes"`` / ``"serial"`` / ``"auto"``, default per host —
    see :mod:`repro.parallel.backends`; ``steal`` toggles work
    stealing between workers).  ``kernel`` names the compute kernel
    for the batched traversals (:mod:`repro.graph.kernels`) and
    implies ``batch_size="auto"`` when none is set.
    """
    return run_per_source(
        graph,
        mode="arcs",
        counter=counter,
        batch_size=batch_size,
        workers=workers,
        steal=steal,
        backend=backend,
        kernel=kernel,
    )


def brandes_python_bc(graph: CSRGraph, *, exact: bool = False) -> np.ndarray:
    """Pure-Python Brandes, the package's correctness oracle.

    Parameters
    ----------
    graph:
        Any graph; O(|V||E|) in Python bytecode, so keep |V| small
        (tests use n <= ~200).
    exact:
        Use :class:`fractions.Fraction` for σ and δ — no floating
        point anywhere. Used by the precision tests that bound the
        float64 implementations' error.
    """
    n = graph.n
    zero = Fraction(0) if exact else 0.0
    one = Fraction(1) if exact else 1.0
    bc = [zero] * n
    for s in range(n):
        # forward: BFS with path counting and predecessor lists
        dist = [-1] * n
        sigma = [zero] * n
        preds: list[list[int]] = [[] for _ in range(n)]
        dist[s] = 0
        sigma[s] = one
        order = []
        queue = deque([s])
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in graph.out_neighbors(v).tolist():
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] = sigma[w] + sigma[v]
                    preds[w].append(v)
        # backward: dependency accumulation in reverse BFS order
        delta = [zero] * n
        for w in reversed(order):
            for v in preds[w]:
                delta[v] = delta[v] + sigma[v] / sigma[w] * (one + delta[w])
            if w != s:
                bc[w] = bc[w] + delta[w]
    if exact:
        return np.asarray([float(x) for x in bc], dtype=SCORE_DTYPE)
    return np.asarray(bc, dtype=SCORE_DTYPE)
