"""Installation self-test.

``repro.selftest.run_selftest()`` (or ``repro-bc selftest``) exercises
one representative path through every layer — generators, partition,
α/β, APGRE, baselines, metrics, I/O — in a couple of seconds, and
raises :class:`~repro.errors.ReproError` on the first disagreement.
Meant for users verifying an install or a port, not as a substitute
for the test suite.
"""

from __future__ import annotations

import io
import tempfile
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ReproError

__all__ = ["SelfTestReport", "run_selftest"]


@dataclass
class SelfTestReport:
    """Outcome of :func:`run_selftest`."""

    checks: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.checks.append(message)

    def __str__(self) -> str:
        lines = [f"repro self-test: {len(self.checks)} checks passed"]
        lines += [f"  [ok] {c}" for c in self.checks]
        return "\n".join(lines)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(f"self-test failed: {message}")


def run_selftest(*, seed: int = 12345) -> SelfTestReport:
    """Run the end-to-end sanity checks; returns the passing report.

    Raises
    ------
    ReproError
        On the first failed check, with a pointer to what broke.
    """
    from repro.baselines import (
        brandes_bc,
        brandes_python_bc,
        hybrid_bc,
        sampling_bc,
        succs_bc,
    )
    from repro.core.apgre import apgre_bc_detailed
    from repro.core.treefold import treefold_bc
    from repro.decompose import graph_partition
    from repro.generators import analogue_graph, paper_example_graph
    from repro.io import read_edgelist, write_edgelist
    from repro.metrics import measure_redundancy

    report = SelfTestReport()

    # 1. generators + decomposition
    g = analogue_graph("Email-Enron", scale=0.25)
    partition = graph_partition(g)
    partition.validate()
    _require(partition.num_subgraphs > 1, "partition found no decomposition")
    report.note(
        f"generated Email-Enron analogue (n={g.n}) and decomposed it "
        f"into {partition.num_subgraphs} sub-graphs"
    )

    # 2. APGRE == Brandes == the other exact baselines
    reference = brandes_bc(g)
    result = apgre_bc_detailed(g)
    _require(
        bool(np.allclose(result.scores, reference, rtol=1e-8, atol=1e-8)),
        "APGRE disagrees with Brandes",
    )
    for name, fn in (("succs", succs_bc), ("hybrid", hybrid_bc),
                     ("treefold", treefold_bc)):
        _require(
            bool(np.allclose(fn(g), reference, rtol=1e-8, atol=1e-8)),
            f"{name} disagrees with Brandes",
        )
    report.note(
        "APGRE, succs, hybrid and treefold agree with Brandes "
        f"(max score {reference.max():.1f})"
    )
    _require(
        result.stats.num_removed_pendants > 0,
        "no pendant sources eliminated on a pendant-heavy analogue",
    )
    report.note(
        f"{result.stats.num_removed_pendants} pendant sources eliminated, "
        f"{result.stats.num_sources} BFS sources run (vs {g.n} for Brandes)"
    )

    # 3. exact-arithmetic oracle on the paper's worked example
    pe = paper_example_graph()
    _require(
        bool(
            np.allclose(
                brandes_python_bc(pe, exact=True), brandes_bc(pe), rtol=1e-12
            )
        ),
        "float64 Brandes drifts from exact arithmetic on the paper example",
    )
    report.note("float64 scores match exact-Fraction arithmetic")

    # 4. redundancy accounting is a valid partition of work
    rb = measure_redundancy(g)
    total = rb.partial_fraction + rb.total_fraction + rb.essential_fraction
    _require(abs(total - 1.0) < 1e-9, "redundancy fractions do not sum to 1")
    report.note(
        f"redundancy breakdown: {rb.partial_fraction:.0%} partial, "
        f"{rb.total_fraction:.0%} total, {rb.essential_fraction:.0%} essential"
    )

    # 5. approximation sanity
    est = sampling_bc(g, k=max(g.n // 5, 1), seed=seed)
    corr = float(np.corrcoef(est, reference)[0, 1])
    _require(corr > 0.5, f"sampling decorrelated from exact ({corr:.2f})")
    report.note(f"sampling estimate correlates at {corr:.2f}")

    # 6. I/O round trip
    buffer = io.StringIO()
    write_edgelist(g, buffer)
    buffer.seek(0)
    back, _ids = read_edgelist(buffer, directed=g.directed, densify=False)
    _require(back == g, "edge-list round trip changed the graph")
    report.note("edge-list I/O round trip is lossless")

    return report
