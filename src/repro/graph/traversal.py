"""Vectorised breadth-first traversal kernels.

These kernels realise the paper's *fine-grained level-synchronous
parallelism* ("for all v ∈ Levels[currLevel] in parallel", Algorithm 2)
as numpy data parallelism: each BFS level is processed by one
gather/scatter pipeline over the CSR arrays instead of a parallel-for.
The per-level work, visitation order and produced quantities (``dist``,
``σ``, level buckets) are exactly those of the paper's Algorithm 2
Phase 1.

The module also provides the *blocked* BFS variants used for the
paper's α/β counting (§3.1: "α_SGi(a) is the number of vertices which a
can reach without passing through SGi in G, and it can be obtained by
BFS; β_SGi(a) ... can be obtained by reverse BFS") and the
direction-optimising BFS used by the ``hybrid`` comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = [
    "BFSResult",
    "expand_frontier",
    "bfs",
    "bfs_levels",
    "bfs_sigma",
    "bfs_sigma_hybrid",
    "bfs_blocked",
    "reverse_bfs_blocked",
]


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather all arcs leaving ``frontier``.

    Returns ``(dst, src)`` arrays listing every arc ``src -> dst`` with
    ``src`` in the frontier, duplicates included. This is the single
    hot primitive of the package; it contains no Python-level loop.
    """
    ends = indptr[frontier + 1]
    starts = indptr[frontier]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty
    # arange in the narrow vertex dtype while the arc block fits (per-
    # vertex offsets are bounded by the max degree); int64 otherwise
    offset_dtype = (
        VERTEX_DTYPE if total <= np.iinfo(VERTEX_DTYPE).max else np.int64
    )
    cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=offset_dtype) - np.repeat(
        cum - counts, counts
    )
    dst = indices[np.repeat(starts, counts) + offsets]
    src = np.repeat(frontier, counts).astype(VERTEX_DTYPE, copy=False)
    return dst, src


@dataclass
class BFSResult:
    """Everything Phase 1 of Algorithm 2 produces for one source.

    Attributes
    ----------
    source:
        The BFS root ``s``.
    dist:
        int32 distances from the root; ``-1`` marks unreachable
        vertices.
    sigma:
        float64 shortest-path counts σ_sv.
    levels:
        ``levels[d]`` is the array of vertices at distance ``d``
        (the paper's ``Levels[]`` buckets).
    level_arcs:
        When requested, ``level_arcs[d]`` holds the DAG arcs
        ``(src, dst)`` from distance ``d`` to ``d + 1`` — the
        shortest-path DAG sliced by level, reused verbatim by the
        backward (dependency) phase.
    edges_traversed:
        Number of arcs examined; feeds the TEPS metrics.
    """

    source: int
    dist: np.ndarray
    sigma: np.ndarray
    levels: List[np.ndarray]
    level_arcs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
    edges_traversed: int = 0

    @property
    def depth(self) -> int:
        """Eccentricity of the source within its reachable set."""
        return len(self.levels) - 1

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices reachable from the source."""
        return self.dist >= 0


def bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Plain BFS distances from ``source`` (``-1`` = unreachable)."""
    return bfs_sigma(graph, source).dist


def bfs_levels(graph: CSRGraph, source: int) -> List[np.ndarray]:
    """The level buckets of a BFS from ``source``."""
    return bfs_sigma(graph, source).levels


def bfs_sigma(
    graph: CSRGraph,
    source: int,
    *,
    keep_level_arcs: bool = False,
) -> BFSResult:
    """Forward BFS computing distances, σ counts and level buckets.

    This is Algorithm 2 Phase 1. With ``keep_level_arcs=True`` the
    shortest-path-DAG arcs crossing each level boundary are retained so
    the backward phase can replay them without re-expanding
    neighbourhoods (trading O(m) memory for a second traversal).
    """
    n = graph.n
    dist = np.full(n, -1, dtype=np.int32)
    sigma = np.zeros(n, dtype=SCORE_DTYPE)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    levels = [frontier]
    level_arcs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = (
        [] if keep_level_arcs else None
    )
    edges = 0
    level = 0
    indptr, indices = graph.out_indptr, graph.out_indices
    while frontier.size:
        dst, src = expand_frontier(indptr, indices, frontier)
        edges += dst.size
        if dst.size == 0:
            if level_arcs is not None:
                level_arcs.append(
                    (np.empty(0, VERTEX_DTYPE), np.empty(0, VERTEX_DTYPE))
                )
            break
        fresh = dst[dist[dst] < 0]
        nxt = np.unique(fresh)
        dist[nxt] = level + 1
        tree = dist[dst] == level + 1
        np.add.at(sigma, dst[tree], sigma[src[tree]])
        if level_arcs is not None:
            level_arcs.append((src[tree], dst[tree]))
        if nxt.size == 0:
            break
        levels.append(nxt)
        frontier = nxt
        level += 1
    return BFSResult(
        source=source,
        dist=dist,
        sigma=sigma,
        levels=levels,
        level_arcs=level_arcs,
        edges_traversed=edges,
    )


def bfs_sigma_hybrid(
    graph: CSRGraph,
    source: int,
    *,
    alpha: float = 4.0,
    keep_level_arcs: bool = False,
) -> BFSResult:
    """Direction-optimising BFS with σ counting (the ``hybrid`` idea).

    Expands top-down while the frontier's outgoing-arc volume is small
    and switches to bottom-up (scan unvisited vertices' in-arcs) once
    the frontier covers more than ``1/alpha`` of the remaining arcs —
    Beamer's direction-optimising heuristic as used by Ligra's BC.
    Unlike plain BFS, σ counting forbids the classic bottom-up early
    exit (every parent must be counted), so bottom-up steps always scan
    all in-arcs of the candidates; this is why hybrid helps BC less
    than it helps reachability, which the paper's Table 2 reflects.

    The produced ``dist``/``sigma``/``levels`` are identical to
    :func:`bfs_sigma`; only the work performed differs.
    """
    n = graph.n
    dist = np.full(n, -1, dtype=np.int32)
    sigma = np.zeros(n, dtype=SCORE_DTYPE)
    dist[source] = 0
    sigma[source] = 1.0
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    levels = [frontier]
    level_arcs: Optional[List[Tuple[np.ndarray, np.ndarray]]] = (
        [] if keep_level_arcs else None
    )
    edges = 0
    level = 0
    out_ip, out_ix = graph.out_indptr, graph.out_indices
    in_ip, in_ix = graph.in_indptr, graph.in_indices
    unvisited = np.flatnonzero(dist < 0).astype(VERTEX_DTYPE)
    while frontier.size:
        frontier_arcs = int(
            (out_ip[frontier + 1] - out_ip[frontier]).sum()
        )
        unvisited_arcs = int((in_ip[unvisited + 1] - in_ip[unvisited]).sum())
        bottom_up = frontier_arcs * alpha > unvisited_arcs and unvisited.size
        if bottom_up:
            # scan candidates' in-arcs for parents at the current level
            parents, cand = expand_frontier(in_ip, in_ix, unvisited)
            edges += parents.size
            hit = dist[parents] == level
            np.add.at(sigma, cand[hit], sigma[parents[hit]])
            nxt = np.unique(cand[hit])
            dist[nxt] = level + 1
            if level_arcs is not None:
                level_arcs.append((parents[hit], cand[hit]))
        else:
            dst, src = expand_frontier(out_ip, out_ix, frontier)
            edges += dst.size
            fresh = dst[dist[dst] < 0]
            nxt = np.unique(fresh)
            dist[nxt] = level + 1  # set before masking tree arcs
            tree = dist[dst] == level + 1
            np.add.at(sigma, dst[tree], sigma[src[tree]])
            if level_arcs is not None:
                level_arcs.append((src[tree], dst[tree]))
        if nxt.size == 0:
            break
        levels.append(nxt)
        frontier = nxt
        unvisited = unvisited[dist[unvisited] < 0]
        level += 1
    return BFSResult(
        source=source,
        dist=dist,
        sigma=sigma,
        levels=levels,
        level_arcs=level_arcs,
        edges_traversed=edges,
    )


def _blocked_reach_count(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    source: int,
    blocked: np.ndarray,
) -> int:
    """Count vertices reachable from ``source`` avoiding ``blocked``.

    The source is always expanded even if flagged blocked (it is the
    articulation point itself); blocked vertices are never entered and
    never counted.
    """
    seen = blocked.copy()
    seen[source] = True
    frontier = np.asarray([source], dtype=VERTEX_DTYPE)
    reached = 0
    while frontier.size:
        dst, _src = expand_frontier(indptr, indices, frontier)
        if dst.size == 0:
            break
        nxt = np.unique(dst[~seen[dst]])
        if nxt.size == 0:
            break
        seen[nxt] = True
        reached += int(nxt.size)
        frontier = nxt
    return reached


def bfs_blocked(graph: CSRGraph, source: int, blocked: np.ndarray) -> int:
    """Vertices reachable from ``source`` without entering ``blocked``.

    Implements the paper's α count: with ``blocked = SGi \\ {a}`` this
    is "the number of vertices which a can reach without passing
    through SGi in G", excluding ``a`` itself.
    """
    return _blocked_reach_count(
        graph.out_indptr, graph.out_indices, graph.n, source, blocked
    )


def reverse_bfs_blocked(
    graph: CSRGraph, source: int, blocked: np.ndarray
) -> int:
    """Vertices that reach ``source`` without entering ``blocked``.

    Implements the paper's β count via reverse BFS. For undirected
    graphs this coincides with :func:`bfs_blocked`.
    """
    return _blocked_reach_count(
        graph.in_indptr, graph.in_indices, graph.n, source, blocked
    )
