"""The paper-analogue workload suite (stand-ins for Table 1).

The paper evaluates on 12 real graphs (SNAP, DIMACS, web crawls) of
37k–2.4M vertices. Exact BC is O(|V||E|), so at paper scale a pure
Python run is infeasible and the raw datasets are not redistributable
here; instead each Table-1 graph gets a deterministic scaled-down
*analogue* matched on the structural features that drive APGRE's
behaviour (see DESIGN.md §1):

* directedness (Table 1 column),
* the dominance of the top biconnected component (Table 4 top
  sub-graph V/E fractions),
* the pendant-vertex fraction (Figure 7 "total redundancy"),
* the number and size of articulation-separated satellites
  (Figure 7 "partial redundancy", Table 4 #SG),
* degree-distribution family (power-law vs road lattice).

Each spec records the paper's original |V|/|E| so Table-1 output can
show both columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import BenchmarkError
from repro.graph.csr import CSRGraph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.generators.road import grid_road_graph
from repro.types import Seed, as_rng

__all__ = [
    "GraphSpec",
    "SUITE_SPECS",
    "suite_names",
    "analogue_graph",
    "paper_suite",
]


@dataclass(frozen=True)
class GraphSpec:
    """Recipe for one Table-1 analogue graph.

    Attributes
    ----------
    name:
        Paper's graph name (Table 1 spelling).
    description:
        Paper's description column.
    directed:
        Table 1 directedness.
    core:
        ``("powerlaw", n, attach_m)`` or ``("grid", rows, cols)`` —
        the top biconnected component.
    pendants:
        Number of degree-1 / source-pendant vertices (total
        redundancy).
    satellites:
        ``(count, min_size, max_size)`` small articulation-separated
        communities (partial redundancy).
    chain_frac:
        Fraction of satellites anchored on earlier satellites instead
        of the core (deepens the block-cut tree).
    big_satellite:
        Optional size of one large secondary community (dblp-2010's
        30%-of-V second sub-graph in Table 4).
    reciprocity:
        For directed graphs, probability an underlying edge is kept in
        both directions.
    seed:
        Deterministic RNG seed for this analogue.
    paper_vertices, paper_edges:
        The original graph's size, for side-by-side reporting.
    """

    name: str
    description: str
    directed: bool
    core: Tuple
    pendants: int
    satellites: Tuple[int, int, int]
    chain_frac: float = 0.25
    big_satellite: int = 0
    reciprocity: float = 0.5
    seed: int = 0
    paper_vertices: int = 0
    paper_edges: int = 0


SUITE_SPECS: Dict[str, GraphSpec] = {
    spec.name: spec
    for spec in [
        GraphSpec(
            name="Email-Enron",
            description="Enron email network",
            directed=False,
            core=("powerlaw", 350, 6),
            pendants=160,
            satellites=(24, 3, 9),
            seed=101,
            paper_vertices=36_692,
            paper_edges=367_662,
        ),
        GraphSpec(
            name="Email-EuAll",
            description="Email network of a large European Research Institution",
            directed=True,
            core=("powerlaw", 120, 3),
            pendants=600,
            satellites=(36, 2, 7),
            reciprocity=0.25,
            seed=102,
            paper_vertices=265_214,
            paper_edges=420_045,
        ),
        GraphSpec(
            name="Slashdot0811",
            description="Slashdot Zoo social network",
            directed=True,
            core=("powerlaw", 600, 6),
            pendants=0,
            satellites=(48, 2, 6),
            reciprocity=0.8,
            seed=103,
            paper_vertices=77_360,
            paper_edges=905_468,
        ),
        GraphSpec(
            name="soc-DouBan",
            description="DouBan Chinese social network",
            directed=True,
            core=("powerlaw", 250, 4),
            pendants=420,
            satellites=(28, 2, 6),
            reciprocity=0.4,
            seed=104,
            paper_vertices=154_908,
            paper_edges=654_188,
        ),
        GraphSpec(
            name="WikiTalk",
            description="Communication network of Wikipedia",
            directed=True,
            core=("powerlaw", 280, 5),
            pendants=350,
            satellites=(60, 3, 10),
            chain_frac=0.45,
            reciprocity=0.3,
            seed=105,
            paper_vertices=2_394_385,
            paper_edges=5_021_410,
        ),
        GraphSpec(
            name="dblp-2010",
            description="DBLP collaboration network",
            directed=True,
            core=("powerlaw", 350, 5),
            pendants=260,
            satellites=(30, 2, 8),
            big_satellite=260,
            reciprocity=0.7,
            seed=106,
            paper_vertices=326_186,
            paper_edges=1_615_400,
        ),
        GraphSpec(
            name="com-youtube",
            description="Youtube online social network",
            directed=False,
            core=("powerlaw", 450, 5),
            pendants=380,
            satellites=(50, 2, 7),
            seed=107,
            paper_vertices=1_134_890,
            paper_edges=5_975_248,
        ),
        GraphSpec(
            name="NotroDame",
            description="University of Notre Dame web graph",
            directed=True,
            core=("powerlaw", 300, 6),
            pendants=180,
            satellites=(40, 2, 8),
            chain_frac=0.4,
            reciprocity=0.5,
            seed=108,
            paper_vertices=325_729,
            paper_edges=1_497_134,
        ),
        GraphSpec(
            name="web-BerkStan",
            description="Berkely-Stanford web graph from 2002",
            directed=True,
            core=("powerlaw", 550, 8),
            pendants=90,
            satellites=(22, 3, 12),
            reciprocity=0.5,
            seed=109,
            paper_vertices=685_230,
            paper_edges=7_600_595,
        ),
        GraphSpec(
            name="web-Google",
            description="Webgraph from the Google programming contest",
            directed=True,
            core=("powerlaw", 600, 6),
            pendants=120,
            satellites=(30, 2, 8),
            reciprocity=0.5,
            seed=110,
            paper_vertices=875_713,
            paper_edges=5_105_039,
        ),
        GraphSpec(
            name="USA-roadNY",
            description="Road network",
            directed=False,
            core=("grid", 24, 24),
            pendants=70,
            satellites=(8, 4, 10),
            seed=111,
            paper_vertices=264_346,
            paper_edges=733_846,
        ),
        GraphSpec(
            name="USA-roadBAY",
            description="Road network",
            directed=False,
            core=("grid", 22, 22),
            pendants=110,
            satellites=(12, 4, 10),
            seed=112,
            paper_vertices=321_270,
            paper_edges=800_172,
        ),
    ]
}


def suite_names() -> List[str]:
    """Table-1 graph names in the paper's row order."""
    return list(SUITE_SPECS)


def _satellite_edges(
    rng: np.random.Generator, size: int, first_id: int
) -> Tuple[np.ndarray, np.ndarray]:
    """A connected random community on ``size`` fresh vertices.

    A spanning path guarantees connectivity; ``size // 2`` random
    chords make most satellites biconnected-ish so they survive the
    partitioner's small-BCC merging as recognisable blocks.
    """
    ids = np.arange(first_id, first_id + size, dtype=np.int64)
    src = [ids[:-1]]
    dst = [ids[1:]]
    extra = size // 2
    if extra and size > 2:
        a = rng.integers(0, size, size=extra)
        b = rng.integers(0, size, size=extra)
        keep = a != b
        src.append(ids[a[keep]])
        dst.append(ids[b[keep]])
    return np.concatenate(src), np.concatenate(dst)


def _orient(
    rng: np.random.Generator,
    src: np.ndarray,
    dst: np.ndarray,
    reciprocity: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Turn undirected pairs into arcs with the given reciprocity."""
    both = rng.random(src.size) < reciprocity
    flip = rng.random(src.size) < 0.5
    one_src = np.where(flip, dst, src)
    one_dst = np.where(flip, src, dst)
    out_src = np.concatenate([one_src[~both], src[both], dst[both]])
    out_dst = np.concatenate([one_dst[~both], dst[both], src[both]])
    return out_src, out_dst


def analogue_graph(
    name: str, *, scale: float = 1.0, seed: Seed = None
) -> CSRGraph:
    """Build the analogue for one Table-1 graph.

    Parameters
    ----------
    name:
        A Table-1 graph name (see :func:`suite_names`).
    scale:
        Multiplies every size knob; ``scale=1`` keeps full exact BC
        runs in the low seconds on one core, larger values stress-test.
    seed:
        Overrides the spec's deterministic seed (rarely wanted).
    """
    if name not in SUITE_SPECS:
        raise BenchmarkError(
            f"unknown suite graph {name!r}; known: {', '.join(SUITE_SPECS)}"
        )
    spec = SUITE_SPECS[name]
    rng = as_rng(spec.seed if seed is None else seed)

    def scaled(x: int) -> int:
        return max(int(round(x * scale)), 1) if x else 0

    # --- core (top biconnected component) ---
    if spec.core[0] == "powerlaw":
        _kind, n_core, attach = spec.core
        core = barabasi_albert_graph(
            scaled(n_core), attach, directed=False, seed=rng
        )
    elif spec.core[0] == "grid":
        _kind, rows, cols = spec.core
        core = grid_road_graph(
            scaled(rows), scaled(cols), dead_end_frac=0.0, seed=rng
        )
    else:  # pragma: no cover - specs are static
        raise BenchmarkError(f"unknown core kind {spec.core[0]!r}")

    src, dst = core.arcs()
    keep = src <= dst
    src_parts = [src[keep].astype(np.int64)]
    dst_parts = [dst[keep].astype(np.int64)]
    next_id = core.n
    core_ids = np.arange(core.n)

    # --- big secondary community (dblp-like second sub-graph) ---
    anchor_pool = [core_ids]
    if spec.big_satellite:
        size = scaled(spec.big_satellite)
        big = barabasi_albert_graph(size, 3, directed=False, seed=rng)
        bsrc, bdst = big.arcs()
        bkeep = bsrc <= bdst
        src_parts.append(bsrc[bkeep].astype(np.int64) + next_id)
        dst_parts.append(bdst[bkeep].astype(np.int64) + next_id)
        anchor = int(rng.integers(0, core.n))
        src_parts.append(np.asarray([anchor]))
        dst_parts.append(np.asarray([next_id]))
        anchor_pool.append(np.arange(next_id, next_id + size))
        next_id += size

    # --- satellites (partial redundancy) ---
    count, lo, hi = spec.satellites
    satellite_ids: List[np.ndarray] = []
    for _i in range(scaled(count)):
        size = int(rng.integers(lo, hi + 1))
        s, d = _satellite_edges(rng, size, next_id)
        src_parts.append(s)
        dst_parts.append(d)
        ids = np.arange(next_id, next_id + size)
        # chain some satellites off earlier satellites
        if satellite_ids and rng.random() < spec.chain_frac:
            pool = satellite_ids[int(rng.integers(0, len(satellite_ids)))]
        else:
            pool = anchor_pool[int(rng.integers(0, len(anchor_pool)))]
        anchor = int(pool[rng.integers(0, pool.size)])
        src_parts.append(np.asarray([anchor]))
        dst_parts.append(np.asarray([next_id]))
        satellite_ids.append(ids)
        next_id += size

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)

    # --- orientation (directed analogues) ---
    if spec.directed:
        src, dst = _orient(rng, src, dst, spec.reciprocity)

    # --- pendants (total redundancy) ---
    n_pend = scaled(spec.pendants)
    if n_pend:
        anchors = rng.integers(0, next_id, size=n_pend)
        leaves = np.arange(next_id, next_id + n_pend, dtype=np.int64)
        # directed pendants point INTO the graph: no in-edges, one
        # out-edge — the paper's removable-source pattern
        src = np.concatenate([src, leaves])
        dst = np.concatenate([dst, anchors])
        next_id += n_pend

    return CSRGraph.from_arcs(next_id, src, dst, directed=spec.directed)


def paper_suite(
    *, scale: float = 1.0, names: Optional[List[str]] = None
) -> Dict[str, CSRGraph]:
    """Build (a subset of) the full analogue suite.

    Returns an ordered mapping ``name -> graph`` following Table 1's
    row order.
    """
    chosen = names if names is not None else suite_names()
    unknown = [n for n in chosen if n not in SUITE_SPECS]
    if unknown:
        raise BenchmarkError(f"unknown suite graphs: {', '.join(unknown)}")
    return {name: analogue_graph(name, scale=scale) for name in chosen}
