"""Property-based round-trip tests for every on-disk graph format."""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.io.binary import load_npz, save_npz
from repro.io.dimacs import read_dimacs, write_dimacs
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.matrixmarket import read_matrix_market, write_matrix_market

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def arbitrary_graphs(draw):
    """Random small graphs, directed or not, possibly with isolates."""
    n = draw(st.integers(min_value=0, max_value=25))
    directed = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=5000))
    rng = np.random.default_rng(seed)
    max_m = n * (n - 1) // (1 if directed else 2)
    m = draw(st.integers(min_value=0, max_value=min(max_m, 3 * n)))
    edges = set()
    while len(edges) < m:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        if not directed:
            u, v = min(u, v), max(u, v)
        edges.add((u, v))
    return from_edges(sorted(edges), n=n, directed=directed)


@given(arbitrary_graphs())
@settings(**SETTINGS)
def test_edgelist_roundtrip(g):
    buffer = io.StringIO()
    write_edgelist(g, buffer)
    buffer.seek(0)
    back, _ids = read_edgelist(buffer, directed=g.directed, densify=False)
    # densify=False keeps ids, but trailing isolated vertices are not
    # representable in an edge list — compare on the padded graph
    if back.n < g.n:
        src, dst = back.arcs()
        if not back.directed:
            keep = src <= dst
            src, dst = src[keep], dst[keep]
        back = from_edges(
            np.stack([src, dst], axis=1) if src.size else [],
            n=g.n,
            directed=g.directed,
        )
    assert back == g


@given(arbitrary_graphs())
@settings(**SETTINGS)
def test_dimacs_roundtrip(g):
    buffer = io.StringIO()
    write_dimacs(g, buffer)
    buffer.seek(0)
    assert read_dimacs(buffer, directed=g.directed) == g


@given(arbitrary_graphs())
@settings(**SETTINGS)
def test_matrix_market_roundtrip(g):
    if g.n == 0:
        return  # a 0x0 matrix is not valid MatrixMarket
    buffer = io.StringIO()
    write_matrix_market(g, buffer)
    buffer.seek(0)
    back = read_matrix_market(buffer)
    # MM infers directedness from symmetry; an empty directed graph
    # reads back as its (equal) undirected form
    if g.directed and back.n == g.n and not back.directed:
        assert g.num_arcs == 0
        return
    assert back == g


@given(arbitrary_graphs())
@settings(**SETTINGS)
def test_npz_roundtrip(g):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g
