"""Stable content fingerprints for graphs and sub-graph contributions.

A cache entry is valid iff the sub-graph's edges *and* the cross-
articulation summaries feeding it are byte-identical, so the key hashes
exactly the inputs :func:`repro.core.bc_subgraph.bc_subgraph` reads:

* the sub-graph's local CSR arrays and directedness;
* the root set ``R_sgi`` and pendant multiplicities ``γ_sgi``;
* the boundary mask ``A_sgi`` and the ``α_sgi``/``β_sgi`` summaries;
* the ``eliminate_pendants`` switch (it changes the source set).

Global vertex ids are deliberately **excluded**: local coordinates are
assigned deterministically (sorted global ids → ``arange``), and the
local score vector of two sub-graphs that agree on everything above is
identical regardless of where they sit in the host graph.  Structurally
repeated components (bridge chains, identical satellites) therefore
share one entry — content addressing, not location addressing.

Hashes are BLAKE2b-128 over dtype/shape/bytes of each array, with
domain separation between fields; arrays are made C-contiguous before
hashing (CSR arrays already are).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["array_digest", "graph_fingerprint", "subgraph_key"]

#: bytes of BLAKE2b digest — 128 bits, collision-safe at any realistic
#: cache population and half the key-string length of sha256
_DIGEST_SIZE = 16


def _feed(h, label: str, arr: np.ndarray) -> None:
    """Hash one array with a field label for domain separation."""
    arr = np.ascontiguousarray(arr)
    h.update(label.encode())
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def array_digest(arr: np.ndarray) -> str:
    """Hex digest of one array's dtype, shape and bytes."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    _feed(h, "array", arr)
    return h.hexdigest()


def graph_fingerprint(graph: CSRGraph) -> str:
    """Canonical hex fingerprint of a CSR graph's structure.

    Two graphs fingerprint equal iff they have the same vertex count,
    directedness and byte-identical CSR arrays (the reverse CSR is
    derived from the forward one, so hashing the forward arrays
    suffices for both orientations).
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"csr-graph")
    h.update(str(int(graph.n)).encode())
    h.update(b"d" if graph.directed else b"u")
    _feed(h, "indptr", graph.out_indptr)
    _feed(h, "indices", graph.out_indices)
    return h.hexdigest()


def subgraph_key(
    sg, *, eliminate_pendants: bool = True, compress: bool = False
) -> str:
    """Cache key of one sub-graph's local contribution vector.

    ``sg`` is a :class:`repro.decompose.partition.Subgraph` whose
    ``alpha``/``beta`` arrays are already filled (the key *must* see
    the summaries — a sub-graph with unchanged edges but a changed α
    on a boundary articulation point produces different scores).

    With ``compress=True`` the key of a sub-graph whose compression
    plan is non-trivial hashes the *plan* — the compressed local CSR
    with its super-edge lengths plus the per-vertex elimination record
    — instead of the raw CSR, under a separate domain prefix.  The
    plan is a deterministic function of the sub-graph, so twin-heavy
    identical components keep sharing one entry; sub-graphs where no
    rule fires fall back to the uncompressed key, because they run
    the plain kernels and their entries stay interchangeable with
    uncompressed runs.
    """
    if compress:
        from repro.compress import compression_plan

        plan = compression_plan(sg, eliminate_pendants=eliminate_pendants)
        if plan.nontrivial:
            return _compressed_key(sg, plan, eliminate_pendants)
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"bc-contribution-v1")
    h.update(b"ep" if eliminate_pendants else b"all")
    h.update(graph_fingerprint(sg.graph).encode())
    _feed(h, "roots", sg.roots)
    _feed(h, "gamma", sg.gamma)
    _feed(h, "boundary", sg.is_boundary_art)
    _feed(h, "alpha", sg.alpha)
    _feed(h, "beta", sg.beta)
    return h.hexdigest()


def _compressed_key(sg, plan, eliminate_pendants: bool) -> str:
    """Key a non-trivial plan: compressed CSR + inversion record.

    Everything the compressed kernel reads goes in: the core CSR and
    arc lengths, the per-vertex status/rep/mult/pfold arrays (they
    invert the merge), the chain records (interior ids decide where
    flow credit lands) and twin-class kinds, plus the same root/γ/
    boundary/α/β summaries as the base key.  All arrays are in local
    id space, so two identically-shaped components hash equal wherever
    they sit in the host graph.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"bc-contribution-compressed-v1")
    h.update(b"ep" if eliminate_pendants else b"all")
    h.update(graph_fingerprint(plan.core_graph).encode())
    _feed(h, "lengths", plan.arc_lengths)
    _feed(h, "status", plan.status)
    _feed(h, "rep", plan.rep)
    _feed(h, "mult", plan.mult)
    _feed(h, "pfold", plan.pfold)
    for ch in plan.chains:
        h.update(f"chain:{ch.u}:{ch.v}".encode())
        _feed(h, "interiors", ch.interiors)
    for tc in plan.twin_classes:
        h.update(f"class:{tc.rep}:{tc.kind}".encode())
    _feed(h, "roots", sg.roots)
    _feed(h, "gamma", sg.gamma)
    _feed(h, "boundary", sg.is_boundary_art)
    _feed(h, "alpha", sg.alpha)
    _feed(h, "beta", sg.beta)
    return h.hexdigest()
