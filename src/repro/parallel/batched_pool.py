"""Persistent shared-memory worker pool for batched BC.

This is the coarse level of the paper's two-level parallel model wired
to PR 2's batched kernel, in the shape the multi-GPU BC literature uses
(McLaughlin & Bader; Bernaschi et al.): partition the sources across
*persistent* executors, let each run the level-synchronous multi-source
kernel locally, and reduce partial score vectors once at the end.  The
existing ``map_sources_bc`` ships a pickled ``(n,)`` float64 vector
back per task; here the only per-task traffic is a tiny ack tuple —

* the parent publishes the CSR arrays once into
  :class:`~repro.parallel.sharedmem.SharedArray` segments (zero-copy
  for every attacher; under ``fork`` the mapping is simply inherited),
* each worker pulls LPT-ordered source batches from the supervised
  work queue (idle workers *steal* the heaviest remaining batch of the
  most-loaded peer, so a straggler cannot serialise the tail), and
* every worker accumulates its batches' score deltas into its own row
  of a shared ``(S, n)`` float64 buffer that the parent tree-reduces.

Fault tolerance rides on PR 1's supervisor unchanged (crash detection,
timeouts, retry/backoff, serial rung, pool abandonment) plus a small
*commit protocol* that keeps the shared score rows trustworthy when a
worker dies mid-accumulation: a batch moves ``PENDING →
COMMITTING → COMMITTED``, and a retry that finds its batch stuck in
``COMMITTING`` poisons the dead owner's score row; the parent
recomputes the poisoned row's committed batches inline and excludes
the row from the reduction.  A batch found already ``COMMITTED`` on
retry (the worker died after committing, before its ack arrived) is
acked without recomputation, so WorkCounter tallies stay exact.

See docs/PERFORMANCE.md for the full model and how to read the
benchmark JSONs this path produces.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel import pool as _pool
from repro.parallel.scheduler import assign_lpt, lpt_order
from repro.parallel.sharedmem import SharedArray
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    TaskOutcome,
    _PoolSupervisor,
    _Task,
)
from repro.types import SCORE_DTYPE

__all__ = [
    "batched_pool_bc_scores",
    "tree_reduce",
    "EngineTotals",
    "merge_examined",
]

# commit-protocol states for one batch (int8 in the shared state array)
_PENDING = 0
_COMMITTING = 1
_COMMITTED = 2


class _EdgeTally:
    """Minimal WorkCounter stand-in (avoids a baselines import cycle).

    Mirrors :class:`repro.baselines.common.WorkCounter`'s split
    protocol: ``edges`` counts top-down probes and DAG replays,
    ``pulled`` the pull kernel's bottom-up probes (both are examined
    arcs), ``switches`` its direction flips (bookkeeping only).
    """

    __slots__ = ("edges", "pulled", "switches")

    def __init__(self) -> None:
        self.edges = 0
        self.pulled = 0
        self.switches = 0

    def add(self, count: int) -> None:
        self.edges += int(count)

    def add_pulled(self, count: int) -> None:
        self.pulled += int(count)

    def add_switch(self, count: int = 1) -> None:
        self.switches += int(count)

    @property
    def triple(self) -> Tuple[int, int, int]:
        """The per-batch ``(edges, pulled, switches)`` commit row."""
        return (self.edges, self.pulled, self.switches)


class EngineTotals(int):
    """An engine run's examined-arc total carrying its push/pull split.

    Subclasses :class:`int` (the value is the *total* examined arcs,
    pushed + pulled) so every existing consumer that treats the edge
    total as a plain number keeps working; kernel-aware consumers read
    ``pulled``/``switches`` and split their stats accordingly (see
    :func:`merge_examined`).  (``int`` subclasses cannot declare
    nonempty ``__slots__``, so the split rides in the instance dict.)
    """

    def __new__(cls, total, pulled: int = 0, switches: int = 0):
        self = super().__new__(cls, int(total))
        self.pulled = int(pulled)
        self.switches = int(switches)
        return self


def _tally3(edges) -> Tuple[int, int, int]:
    """Normalise a compute tally to ``(edges, pulled, switches)``.

    ``compute`` callbacks may return a plain examined-arc int (every
    push-only kernel) or the 3-tuple split; both commit idempotently
    into the per-batch tally rows.
    """
    if isinstance(edges, (tuple, list)):
        a, b, c = edges
        return (int(a), int(b), int(c))
    return (int(edges), 0, 0)


def merge_examined(counter, total) -> None:
    """Fold an engine edge total (plain int or EngineTotals) into a
    counter, keeping ``counter.edges`` the true examined total when the
    counter lacks the split protocol."""
    if counter is None:
        return
    pulled = int(getattr(total, "pulled", 0))
    switches = int(getattr(total, "switches", 0))
    add_pulled = getattr(counter, "add_pulled", None)
    if pulled and add_pulled is not None:
        counter.add(int(total) - pulled)
        add_pulled(pulled)
    else:
        counter.add(int(total))
    if switches:
        add_switch = getattr(counter, "add_switch", None)
        if add_switch is not None:
            add_switch(switches)


def tree_reduce(rows: Sequence[np.ndarray]) -> np.ndarray:
    """Pairwise (tree-shaped) sum of equal-shaped float rows.

    Pairwise association keeps the float64 error growth logarithmic in
    the number of partial score vectors instead of linear, which is
    what lets the pooled path hold the 1e-9 agreement bound against
    serial at any worker count.
    """
    work = list(rows)
    if not work:
        raise ValueError("tree_reduce needs at least one row")
    if len(work) == 1:
        return np.array(work[0], dtype=SCORE_DTYPE, copy=True)
    while len(work) > 1:
        nxt = [work[i] + work[i + 1] for i in range(0, len(work) - 1, 2)]
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return np.asarray(work[0], dtype=SCORE_DTYPE)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
# score-row claims, keyed (run token, pid): a forked child inherits the
# parent's entries but its own pid misses, so every process that ever
# touches the run claims a fresh row — two processes can never share one
_SLOT_CACHE: Dict[Tuple[str, int], int] = {}

# per-process SpMM operand cache keyed the same way (forked children
# inherit the parent's operands only for the parent pid, so each worker
# materialises its own once and reuses it across all its batches)
_OPS_CACHE: Dict[Tuple[str, int], Any] = {}


def _claim_slot(state: dict) -> int:
    """This process's private score row (claimed once per run)."""
    key = (state["token"], os.getpid())
    slot = _SLOT_CACHE.get(key)
    if slot is None:
        counter = state["next_slot"]
        with counter.get_lock():
            slot = counter.value
            counter.value = slot + 1
        if slot >= state["scores"].array.shape[0]:
            raise RuntimeError(
                f"score slots exhausted ({slot} claims for "
                f"{state['scores'].array.shape[0]} rows)"
            )
        _SLOT_CACHE[key] = slot
    return slot


def _drop_run_caches(token: str) -> None:
    for cache in (_SLOT_CACHE, _OPS_CACHE):
        for key in [k for k in cache if k[0] == token]:
            del cache[key]


def _pool_batch_task(batch_id: int):
    """Run one source batch and commit its delta into this worker's row.

    Executed in a pool worker (state through fork inheritance) *and* on
    the supervisor's serial rungs in the parent — both see the same
    shared arrays, so the commit protocol below is identical for every
    rung of the degradation ladder.
    """
    state = _pool.get_worker_state()
    batch_state = state["batch_state"].array
    if batch_state[batch_id] == _COMMITTED:
        # a previous attempt died after committing, before its ack got
        # out: the delta and edge tally are already in place
        return ("cached", int(batch_id))
    slot = _claim_slot(state)
    owners = state["owners"].array
    prev = int(owners[batch_id])
    if batch_state[batch_id] == _COMMITTING and prev >= 0 and prev != slot:
        # the previous owner died mid-accumulation: its whole score row
        # may hold a partial sum, so mark it for parent-side recovery
        state["poisoned"].array[prev] = 1
    verts, delta, edge_count = state["compute"](int(batch_id))
    state["edges"].array[batch_id] = _tally3(edge_count)
    owners[batch_id] = slot
    batch_state[batch_id] = _COMMITTING
    row = state["scores"].array[slot]
    if verts is None:
        row += delta
    else:
        row[verts] += delta
    batch_state[batch_id] = _COMMITTED
    return ("ok", int(batch_id), int(slot))


# ----------------------------------------------------------------------
# scheduling: LPT affinity + work stealing
# ----------------------------------------------------------------------
class _StealSupervisor(_PoolSupervisor):
    """Supervisor whose scheduler follows an LPT plan and steals.

    Each task starts with an *affinity* to the worker slot the greedy
    LPT assignment gave it.  A free slot first runs its own ready
    tasks; once it has none, it steals the heaviest ready task from the
    peer with the most remaining planned work (``steal=False`` makes it
    wait instead — the pure static-LPT schedule, kept for measurement).
    Stolen and retried batches keep full supervision semantics; steals
    are tallied in ``RunHealth.steals``.
    """

    def __init__(
        self, func, payloads, workers, config, health,
        affinity: Dict[int, int], weights: Dict[int, float],
        steal: bool,
    ) -> None:
        super().__init__(func, payloads, workers, config, health)
        self._affinity = dict(affinity)
        self._task_weight = dict(weights)
        self._steal = steal

    def _match(self, ready: List[_Task]) -> Optional[tuple]:
        if not ready:
            return None
        # candidate slots, idle workers before cold (spawn-needed) slots
        wids = [w.wid for w in self.idle]
        wids += sorted(w for w in self._free_wids if w not in wids)
        if not wids:
            return None
        available = set(wids)
        for wid in wids:  # own work first (ready is in LPT order)
            for task in ready:
                if self._affinity.get(task.index) == wid:
                    return wid, task
        if not self._steal:
            return None
        # steal: victim is the busy peer with the most remaining
        # planned work; take its heaviest ready task (the LPT payload
        # order makes that its first ready one)
        loads: Dict[int, float] = {}
        first: Dict[int, _Task] = {}
        for task in ready:
            owner = self._affinity[task.index]
            if owner in available:  # pragma: no cover - caught above
                continue
            loads[owner] = loads.get(owner, 0.0) + self._task_weight.get(
                task.index, 1.0
            )
            first.setdefault(owner, task)
        if not loads:
            return None
        victim = max(loads, key=lambda w: (loads[w], -w))
        wid = wids[0]
        task = first[victim]
        self._affinity[task.index] = wid
        task.events.append(f"steal:{victim}->{wid}")
        self.health.steals += 1
        return wid, task


# ----------------------------------------------------------------------
# parent-side driver
# ----------------------------------------------------------------------
def _raise_keyboard_interrupt(signum, frame):  # pragma: no cover - signal
    raise KeyboardInterrupt


@contextlib.contextmanager
def _graceful_sigterm():
    """Translate SIGTERM into :class:`KeyboardInterrupt` while active.

    SIGTERM's default action kills the process with no unwinding — no
    supervisor drain, no ``ExitStack`` unlink of the shared segments,
    no journal finalisation.  Remapping it to the same exception
    SIGINT raises routes both through the one graceful-shutdown path
    (:meth:`_PoolSupervisor._drain_interrupted` → segment cleanup →
    journal ``finalize("interrupted")``).  Restores the previous
    handler on exit; a no-op off the main thread, where Python forbids
    installing handlers.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    try:
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _pooled_contributions(
    compute: Callable[[int], Tuple[Optional[np.ndarray], np.ndarray, int]],
    weights: Sequence[float],
    *,
    n: int,
    workers: int,
    steal: bool = True,
    config: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Accumulate ``compute(batch_id)`` deltas across a supervised pool.

    ``compute`` maps a batch id to ``(verts, delta, edges)`` — ``delta``
    is added to the score vector (at ``verts`` when given, densely when
    ``None``) and ``edges`` is the batch's examined-edge tally: a plain
    int, or an ``(edges, pulled, switches)`` split from a
    direction-optimizing kernel (see :func:`_tally3`).  It must be
    deterministic and safe to re-run (retries and poisoned-row
    recovery recompute batches).  Returns ``(scores, edge_total,
    batch_edges)``; the edge total is an :class:`EngineTotals` — the
    exact sum of the per-batch examined totals in ``batch_edges``,
    independent of which worker ran what (the contribution cache needs
    the per-batch breakdown to store exact per-sub-graph tallies) —
    carrying the summed pulled/switch split.
    """
    num = len(weights)
    config = config or SupervisorConfig()
    health = health if health is not None else RunHealth()
    health.tasks += num
    total = np.zeros(n, dtype=SCORE_DTYPE)
    if num == 0:
        return total, EngineTotals(0), np.zeros(0, dtype=np.int64)
    if workers <= 1 or num == 1 or not _pool._supports_fork():
        # inline contract, mirroring supervised_map: bit-identical to
        # the serial chunk loop, no supervision (nothing can crash)
        health.inline = True
        split = np.zeros((num, 3), dtype=np.int64)
        for batch_id in range(num):
            verts, delta, edges = compute(batch_id)
            if verts is None:
                total += delta
            else:
                total[verts] += delta
            split[batch_id] = _tally3(edges)
            health.outcomes.append(
                TaskOutcome(task=batch_id, attempts=1, status="ok-pool",
                            events=["inline"])
            )
        batch_edges = split[:, 0] + split[:, 1]
        edge_total = EngineTotals(
            batch_edges.sum(dtype=np.int64),
            pulled=split[:, 1].sum(dtype=np.int64),
            switches=split[:, 2].sum(dtype=np.int64),
        )
        return total, edge_total, batch_edges

    workers = min(workers, num)
    order = lpt_order(weights)          # payload p runs batch order[p]
    bins = assign_lpt(weights, workers)
    wid_of_batch = {
        batch: wid for wid, tasks in enumerate(bins) for batch in tasks
    }
    affinity = {p: wid_of_batch[batch] for p, batch in enumerate(order)}
    task_weights = {
        p: float(weights[batch]) for p, batch in enumerate(order)
    }
    # score rows: one per process that can ever claim one — the initial
    # workers, every respawn the failure budget allows, the parent's
    # serial rung, and slack for close-out races
    budget = config.max_pool_failures
    if budget is None:
        budget = max(2 * workers, 4)
    slots = workers + budget + 4
    with contextlib.ExitStack() as stack:
        # first in, last out: the SIGTERM remap outlives the segments,
        # so a termination any time in this block still unlinks them
        stack.enter_context(_graceful_sigterm())
        scores = stack.enter_context(
            SharedArray.create((slots, n), SCORE_DTYPE)
        )
        batch_state = stack.enter_context(
            SharedArray.create((num,), np.int8)
        )
        owners = stack.enter_context(SharedArray.create((num,), np.int64))
        # per-batch (edges, pulled, switches) tally rows — committed by
        # idempotent assignment, so retries and recovery stay exact
        edges = stack.enter_context(SharedArray.create((num, 3), np.int64))
        poisoned = stack.enter_context(SharedArray.create((slots,), np.int8))
        owners.array.fill(-1)
        next_slot = mp.get_context("fork").Value("i", 0)
        token = scores.name
        state = {
            "compute": compute,
            "scores": scores,
            "batch_state": batch_state,
            "owners": owners,
            "edges": edges,
            "poisoned": poisoned,
            "next_slot": next_slot,
            "token": token,
        }
        _pool._install_state(state)
        try:
            supervisor = _StealSupervisor(
                _pool_batch_task, order, workers, config, health,
                affinity, task_weights, steal,
            )
            supervisor.run()
        finally:
            _pool._STATE.clear()
            _drop_run_caches(token)
        # recovery: recompute every batch whose committed delta is not
        # trustworthy — owner row poisoned by a mid-commit death, or
        # (defensively) a batch that somehow never reached COMMITTED
        state_arr = batch_state.array
        owner_arr = owners.array
        poison_arr = poisoned.array
        extra = np.zeros(n, dtype=SCORE_DTYPE)
        recomputed = 0
        for batch_id in range(num):
            owner = int(owner_arr[batch_id])
            trusted = (
                state_arr[batch_id] == _COMMITTED
                and 0 <= owner < slots
                and not poison_arr[owner]
            )
            if trusted:
                continue
            verts, delta, edge_count = compute(batch_id)
            if verts is None:
                extra += delta
            else:
                extra[verts] += delta
            edges.array[batch_id] = _tally3(edge_count)
            recomputed += 1
        if recomputed:
            health.serial_retries += recomputed
        used = min(int(next_slot.value), slots)
        rows = [
            scores.array[s] for s in range(used) if not poison_arr[s]
        ]
        total = tree_reduce(rows + [extra]) if rows else extra
        split = edges.array.copy()
        batch_edges = split[:, 0] + split[:, 1]
        edge_total = EngineTotals(
            batch_edges.sum(dtype=np.int64),
            pulled=split[:, 1].sum(dtype=np.int64),
            switches=split[:, 2].sum(dtype=np.int64),
        )
    return total, edge_total, batch_edges


def batched_pool_bc_scores(
    graph: CSRGraph,
    sources,
    *,
    batch: int,
    workers: int,
    steal: bool = True,
    kernel: Optional[str] = None,
    counter=None,
    config: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
) -> np.ndarray:
    """BC contribution sum over ``sources`` on the persistent pool.

    The parallel composition of
    :func:`repro.graph.batched.batched_bc_scores`: the same
    ``batch``-sized source chunks, fanned out across ``workers``
    supervised processes with LPT placement and work stealing
    (``steal=False`` pins each chunk to its planned worker).  Scores
    agree with the serial batched path within float64 reduction
    tolerance (≤1e-9 in practice) and the examined-edge tally added to
    ``counter`` is *exactly* the serial one — per-chunk tallies are
    independent of placement, and the pool sums the same chunks.

    Degrades inline (bit-identical to serial batched) for
    ``workers <= 1``, a single chunk, or platforms without ``fork``;
    otherwise runs under the PR 1 supervisor with ``config`` policy and
    events tallied into ``health``.
    """
    from repro.graph import kernels as _kernels
    from repro.graph.batched import batched_bc_scores

    srcs = np.asarray(list(sources), dtype=np.int64).ravel()
    if srcs.size == 0:
        return np.zeros(graph.n, dtype=SCORE_DTYPE)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    kernel = _kernels.resolve_kernel_name(
        kernel, graph=graph, batch=min(batch, srcs.size)
    )
    kern = _kernels.get_kernel(kernel)
    bounds = [
        (lo, min(lo + batch, srcs.size))
        for lo in range(0, srcs.size, batch)
    ]
    if workers <= 1 or len(bounds) == 1 or not _pool._supports_fork():
        # keep the exact serial code path (shared operands, same chunk
        # loop) so the inline contract is bit-identical, with health
        # bookkeeping consistent with the pooled path
        if health is not None:
            health.tasks += len(bounds)
            health.inline = True
            for i in range(len(bounds)):
                health.outcomes.append(
                    TaskOutcome(task=i, attempts=1, status="ok-pool",
                                events=["inline"])
                )
        return batched_bc_scores(
            graph, srcs, batch=batch, counter=counter, kernel=kernel
        )

    # publish the CSR arrays once; workers see the same physical pages
    with contextlib.ExitStack() as stack:
        stack.enter_context(_graceful_sigterm())

        def publish(arr: np.ndarray) -> np.ndarray:
            shared = stack.enter_context(
                SharedArray.create(arr.shape, arr.dtype)
            )
            shared.array[:] = arr
            return shared.array

        out_indptr = publish(graph.out_indptr)
        out_indices = publish(graph.out_indices)
        if graph.directed:
            in_indptr = publish(graph.in_indptr)
            in_indices = publish(graph.in_indices)
        else:
            in_indptr, in_indices = out_indptr, out_indices
        shared_graph = CSRGraph(
            graph.n, out_indptr, out_indices, in_indptr, in_indices,
            graph.directed,
        )
        ops_token = f"ops-{id(shared_graph)}-{out_indices.size}"

        def compute(batch_id: int):
            lo, hi = bounds[batch_id]
            chunk = srcs[lo:hi]
            tally = _EdgeTally()
            ctx = None
            if kern.prepare is not None:
                # per-process context (operands, compiled functions):
                # forked children inherit only the parent pid's entry,
                # so each worker materialises its own once
                key = (ops_token, os.getpid())
                ctx = _OPS_CACHE.get(key)
                if ctx is None:
                    ctx = kern.prepare(shared_graph, batch)
                    _OPS_CACHE[key] = ctx
            delta = kern.contributions(
                shared_graph, chunk, counter=tally, context=ctx
            )
            return None, delta, tally.triple

        weights = [float(hi - lo) for lo, hi in bounds]
        try:
            total, edge_total, _ = _pooled_contributions(
                compute,
                weights,
                n=graph.n,
                workers=workers,
                steal=steal,
                config=config,
                health=health,
            )
        finally:
            _drop_run_caches(ops_token)
    merge_examined(counter, edge_total)
    return total
