"""Figure 7 — breakdown of Brandes BC work into redundancy classes.

Benchmarks the redundancy measurement per graph and emits the
partial/total/essential shares. Shape expectations from the paper:
pendant-heavy email/social graphs show large *total* redundancy
(Email-EuAll 71%, soc-DouBan 67% in the paper), web graphs large
*partial* redundancy, road graphs modest amounts of both.
"""

import pytest

from repro.bench.experiments import fig7
from repro.bench.workloads import bench_graph_names, get_graph
from repro.metrics.redundancy import measure_redundancy

from conftest import one_shot


@pytest.mark.parametrize("name", bench_graph_names())
def test_measure_redundancy(benchmark, name):
    from repro.bench.workloads import get_redundancy

    graph = get_graph(name)
    rb = one_shot(benchmark, measure_redundancy, graph, name=name)
    # park the measured breakdown in the cache so the fig7 report
    # (same process) does not redo the two-sweep measurement
    from repro.bench import workloads as _w

    _w._REDUNDANCY_CACHE[(name, _w.bench_scale())] = rb
    total = rb.partial_fraction + rb.total_fraction + rb.essential_fraction
    assert abs(total - 1.0) < 1e-12
    benchmark.extra_info["partial"] = round(rb.partial_fraction, 4)
    benchmark.extra_info["total"] = round(rb.total_fraction, 4)


def test_report_fig7(benchmark, report):
    result = one_shot(benchmark, fig7)
    rows = {row[0]: row for row in result.rows}
    # paper-shape assertions (loose: analogues, not the real graphs)
    if "Email-EuAll" in rows:
        assert float(rows["Email-EuAll"][2].rstrip("%")) > 40.0
    if "Slashdot0811" in rows:
        assert float(rows["Slashdot0811"][2].rstrip("%")) < 10.0
    report(result)
