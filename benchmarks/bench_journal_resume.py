"""Run-journal bench: journaling overhead and kill-at-half resume.

Three measurements per workload, all through the crash-safe run
journal (:mod:`repro.journal`, docs/ROBUSTNESS.md):

``plain``
    Serial APGRE with no journal — the time baseline.
``journaled``
    The identical run with ``journal_dir`` set: every sub-graph
    contribution is durably committed (payload ``.npy`` + group-committed log
    record). The acceptance bar is **< 5% overhead** over ``plain``.
``resume``
    The journal is cut back to its first ``ceil(S/2)`` contribution
    records — byte-identical to what a ``SIGKILL`` mid-run leaves
    behind (``tests/test_journal.py`` proves the equivalence with real
    ``SIGKILL`` subprocesses; here the cut is deterministic so the
    bench is reproducible) — and the run resumes.  The bar is
    recomputing **strictly fewer than 50%** of the sub-graphs, with
    scores matching the cold run to 1e-9 and the exact edge-tally
    identity ``edges_resumed + edges_traversed == cold traversal``.

The committed ``BENCH_journal.json`` records all three on the two
workloads below; ``check_rows`` holds future runs to the acceptance
bars and to no worse than twice the committed overhead.
"""

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.journal.format import decode_line, scan_log

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_journal.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"
SCHEMA_VERSION = 1  # of this payload; bumped when row keys change

#: (suite graph, scale) — one bridge-heavy road graph (many journal
#: records relative to BC work: the overhead-unfriendly case), one
#: social graph whose top BCC dominates (few large records).
WORKLOADS = [
    ("USA-roadBAY", 2.0),
    ("Email-Enron", 2.0),
]
QUICK_WORKLOADS = [
    ("Email-Enron", 1.0),
]
REPEAT = 2  # best-of absorbs scheduler noise on both sides


def _truncate_to_half(journal_dir):
    """Keep the header + the first ceil(k/2) contribution records.

    The bytes left on disk are exactly a mid-run crash: no final
    record, later payload files present but unreferenced (a resume
    ignores them, just as it ignores the stale payloads a killed run
    leaves).  Returns (kept, total) contribution counts.
    """
    log = Path(journal_dir) / "journal.log"
    records, _ = scan_log(log)
    total = sum(r["type"] == "contribution" for r in records)
    keep = total // 2 + 1  # strictly under half left to recompute
    kept_lines, kept = [], 0
    for line in log.read_bytes().splitlines(keepends=True):
        body = decode_line(line)
        if body is None:
            break
        if body.get("type") == "header":
            kept_lines.append(line)
        elif body.get("type") == "contribution" and kept < keep:
            kept_lines.append(line)
            kept += 1
    log.write_bytes(b"".join(kept_lines))
    return kept, total


def _best_of(fn, repeat=REPEAT):
    best_t, out = None, None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best_t is None or elapsed < best_t:
            best_t, out = elapsed, result
    return best_t, out


def measure_workload(name, scale):
    """plain/journaled/resume measurement row for one suite graph."""
    graph = get_graph(name, scale=scale)

    t_plain, plain = _best_of(
        lambda: apgre_bc_detailed(graph, APGREConfig())
    )

    workdir = Path(tempfile.mkdtemp(prefix="bench-journal-"))
    try:
        jdir = workdir / "journal"
        t_journaled, journaled = _best_of(
            lambda: apgre_bc_detailed(
                graph, APGREConfig(journal_dir=str(jdir))
            )
        )
        np.testing.assert_allclose(
            journaled.scores, plain.scores, rtol=1e-9, atol=1e-9
        )
        total = journaled.stats.num_subgraphs
        assert journaled.health.journal_records == total, (
            f"{name}: journaled run committed "
            f"{journaled.health.journal_records}/{total} records"
        )

        kept, logged = _truncate_to_half(jdir)
        assert logged == total
        t_resume = time.perf_counter()
        resumed = apgre_bc_detailed(
            graph, APGREConfig(journal_dir=str(jdir), resume=True)
        )
        t_resume = time.perf_counter() - t_resume
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    np.testing.assert_allclose(
        resumed.scores, plain.scores, rtol=1e-9, atol=1e-9
    )
    rs = resumed.stats
    assert rs.subgraphs_resumed == kept, (
        f"{name}: resumed {rs.subgraphs_resumed} != {kept} journaled"
    )
    assert rs.subgraphs_resumed + rs.subgraphs_recomputed == total
    assert rs.edges_resumed + rs.edges_traversed == (
        plain.stats.edges_traversed
    ), (
        f"{name}: resume tallies {rs.edges_resumed}+{rs.edges_traversed}"
        f" != from-scratch {plain.stats.edges_traversed}"
    )

    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "subgraphs": total,
        "plain_seconds": round(t_plain, 4),
        "journaled_seconds": round(t_journaled, 4),
        "journal_overhead_pct": round(
            100.0 * (t_journaled / t_plain - 1.0), 2
        ),
        "resume_seconds": round(t_resume, 4),
        "resume_speedup_vs_cold": round(t_plain / t_resume, 2),
        "subgraphs_resumed": rs.subgraphs_resumed,
        "subgraphs_recomputed": rs.subgraphs_recomputed,
        "recompute_fraction": round(rs.subgraphs_recomputed / total, 3),
        "edges_traversed_cold": plain.stats.edges_traversed,
        "edges_resumed": rs.edges_resumed,
        "edges_traversed_resume": rs.edges_traversed,
    }


def run_bench(quick=False, out_path=None):
    """Measure every workload; returns (payload, path written)."""
    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    rows = [measure_workload(*w) for w in workloads]
    payload = {
        "bench": "bench_journal_resume",
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "environment": environment_provenance(),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_journal_resume.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False):
    """Perf guards (the correctness guards run inside measure)."""
    for row in rows:
        assert row["journal_overhead_pct"] < 5.0, (
            f"{row['graph']}: journaling cost "
            f"{row['journal_overhead_pct']}% over plain (bar is 5%)"
        )
        assert row["recompute_fraction"] < 0.5, (
            f"{row['graph']}: resume recomputed "
            f"{row['recompute_fraction']:.0%} of sub-graphs (bar is "
            f"strictly under half)"
        )
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {r["graph"]: r for r in baseline["workloads"]}
    for row in rows:
        base = base_rows.get(row["graph"])
        if base is None:
            continue
        # overhead can honestly be ~0; guard against a regression to
        # twice the committed percentage or the 5% bar, whichever is
        # looser on noise
        ceiling = max(2.0 * base["journal_overhead_pct"], 5.0)
        assert row["journal_overhead_pct"] <= ceiling, (
            f"{row['graph']}: journal overhead "
            f"{row['journal_overhead_pct']}% regressed past "
            f"{ceiling}% (committed: {base['journal_overhead_pct']}%)"
        )


def test_journal_resume_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small graph — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=args.quick)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
