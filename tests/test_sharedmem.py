"""Direct lifecycle tests for :mod:`repro.parallel.sharedmem`.

The batched pool leans on SharedArray for everything crash-safety
related (per-worker score slots survive a dead worker), so the segment
lifecycle — create / attach / close / unlink, the finalizer backstop,
and the fork PID guard that stops a child from unlinking the parent's
segment — gets its own unit suite here, exercised under both the
``fork`` and ``spawn`` start methods.
"""

import gc
import multiprocessing
import os

import numpy as np
import pytest

from repro.parallel import sharedmem
from repro.parallel.sharedmem import SharedArray


def _segment_exists(name):
    try:
        view = SharedArray.attach(name, (1,), np.uint8)
    except FileNotFoundError:
        return False
    view.close()
    return True


def _child_writer(name, shape):
    """Attach by name, write a recognisable pattern, detach."""
    view = SharedArray.attach(name, tuple(shape), np.float64)
    view.array[:] = np.arange(view.array.size, dtype=np.float64) + 1.0
    view.close()


def _child_noop():
    """Fork child that merely exits; inherited finalizers must not
    unlink the parent's segments on the way out."""


class TestCreateAttach:
    def test_create_zero_filled(self):
        with SharedArray.create((7, 3), np.float64) as arr:
            assert arr.array.shape == (7, 3)
            assert arr.array.dtype == np.float64
            assert not arr.array.any()
            assert arr.owner

    def test_zero_size_segment(self):
        # max(nbytes, 1): a zero-length array still maps a valid page
        with SharedArray.create((0,), np.int64) as arr:
            assert arr.array.size == 0

    def test_attach_shares_storage(self):
        owner = SharedArray.create((5,), np.int32)
        try:
            owner.array[:] = [9, 8, 7, 6, 5]
            view = SharedArray.attach(owner.name, (5,), np.int32)
            assert not view.owner
            assert view.array.tolist() == [9, 8, 7, 6, 5]
            view.array[4] = -1
            assert owner.array[4] == -1
            view.close()
        finally:
            owner.close()
            owner.unlink()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedArray.attach("repro-no-such-segment", (1,), np.uint8)


class TestCloseUnlink:
    def test_close_idempotent_and_drops_view(self):
        arr = SharedArray.create((3,), np.float64)
        name = arr.name
        arr.close()
        assert arr.array is None
        arr.close()  # second close is a no-op, not an error
        assert _segment_exists(name)  # close does not destroy
        arr.unlink()
        assert not _segment_exists(name)

    def test_unlink_idempotent(self):
        arr = SharedArray.create((3,), np.float64)
        arr.close()
        arr.unlink()
        arr.unlink()  # no FileNotFoundError on the second call

    def test_non_owner_unlink_is_noop(self):
        owner = SharedArray.create((2,), np.float64)
        try:
            view = SharedArray.attach(owner.name, (2,), np.float64)
            view.close()
            view.unlink()  # non-owner: must NOT destroy the segment
            assert _segment_exists(owner.name)
        finally:
            owner.close()
            owner.unlink()

    def test_context_manager_owner_unlinks(self):
        with SharedArray.create((4,), np.float64) as arr:
            name = arr.name
            assert _segment_exists(name)
        assert not _segment_exists(name)

    def test_context_manager_attacher_only_closes(self):
        owner = SharedArray.create((4,), np.float64)
        try:
            with SharedArray.attach(owner.name, (4,), np.float64):
                pass
            assert _segment_exists(owner.name)
        finally:
            owner.close()
            owner.unlink()


class TestFinalizer:
    def test_leaked_owner_is_unlinked_by_finalizer(self):
        arr = SharedArray.create((6,), np.float64)
        name = arr.name
        del arr
        gc.collect()
        assert not _segment_exists(name)

    def test_explicit_unlink_detaches_finalizer(self):
        arr = SharedArray.create((6,), np.float64)
        arr.close()
        arr.unlink()
        assert not arr._finalizer.alive
        del arr
        gc.collect()  # nothing left to double-unlink

    def test_cleanup_pid_guard_blocks_foreign_unlink(self):
        # simulate the finalizer firing in a forked child: same shm
        # object, owner=True, but a pid that is not this process
        arr = SharedArray.create((2,), np.float64)
        name = arr.name
        sharedmem._cleanup(arr._shm, True, os.getpid() + 1)
        assert _segment_exists(name), "child finalizer unlinked the segment"
        # reattach for real cleanup (the guard closed our mapping)
        survivor = SharedArray.attach(name, (2,), np.float64)
        survivor.close()
        arr._finalizer.detach()
        arr._shm.unlink()


@pytest.mark.parametrize("method", ["fork", "spawn"])
class TestStartMethods:
    def test_child_writes_visible(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} start method unavailable")
        ctx = multiprocessing.get_context(method)
        owner = SharedArray.create((6,), np.float64)
        try:
            proc = ctx.Process(
                target=_child_writer, args=(owner.name, (6,))
            )
            proc.start()
            proc.join(timeout=60)
            assert proc.exitcode == 0
            assert owner.array.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        finally:
            owner.close()
            owner.unlink()

    def test_child_exit_does_not_unlink(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} start method unavailable")
        ctx = multiprocessing.get_context(method)
        owner = SharedArray.create((3,), np.float64)
        try:
            # fork: the child inherits the owning SharedArray object
            # and runs its finalizer at exit — the PID guard must stop
            # it from unlinking.  spawn: nothing inherited; still must
            # survive a child lifecycle.
            proc = ctx.Process(target=_child_noop)
            proc.start()
            proc.join(timeout=60)
            assert proc.exitcode == 0
            assert _segment_exists(owner.name)
        finally:
            owner.close()
            owner.unlink()
