"""repro — APGRE betweenness centrality (PPoPP 2016 reproduction).

Articulation-points-guided redundancy elimination for exact betweenness
centrality, plus the full substrate it needs: CSR graphs, vectorised
traversals, biconnected decomposition, baselines, metrics and a
benchmark harness regenerating every table and figure of the paper's
evaluation.

Quickstart::

    from repro import from_edges, apgre_bc

    g = from_edges([(0, 1), (1, 2), (2, 3), (1, 3)], directed=False)
    scores = apgre_bc(g)

See README.md for the architecture overview, DESIGN.md for the paper
mapping and EXPERIMENTS.md for reproduction results.
"""

from repro._version import __version__
from repro.errors import (
    AlgorithmError,
    BenchmarkError,
    ExecutionError,
    GraphFormatError,
    GraphValidationError,
    PartitionError,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.graph import (
    CSRGraph,
    from_adjacency,
    from_edges,
    from_networkx,
    empty_graph,
)
from repro.core import APGREConfig, BCResult, apgre_bc, apgre_bc_detailed
from repro.baselines import (
    async_bc,
    brandes_bc,
    brandes_python_bc,
    hybrid_bc,
    lockfree_bc,
    preds_bc,
    sampling_bc,
    succs_bc,
)
from repro.decompose import (
    articulation_points,
    biconnected_components,
    graph_partition,
)
from repro.io import load_graph, save_graph

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "PartitionError",
    "AlgorithmError",
    "BenchmarkError",
    "ExecutionError",
    "WorkerCrashError",
    "TaskTimeoutError",
    # graph
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "from_networkx",
    "empty_graph",
    # core
    "APGREConfig",
    "BCResult",
    "apgre_bc",
    "apgre_bc_detailed",
    # baselines
    "brandes_bc",
    "brandes_python_bc",
    "preds_bc",
    "succs_bc",
    "lockfree_bc",
    "async_bc",
    "hybrid_bc",
    "sampling_bc",
    # decomposition
    "articulation_points",
    "biconnected_components",
    "graph_partition",
    # io
    "load_graph",
    "save_graph",
]
