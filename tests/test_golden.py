"""Golden-value regression tests.

Exact BC scores for small canonical graphs, computed once with the
pure-Python exact-``Fraction`` Brandes and frozen here as literals.
Unlike the networkx-oracle tests these cannot drift with a dependency
upgrade, and they pin the *convention* (unnormalised, ordered pairs)
byte-for-byte. Every exact algorithm in the package must reproduce
each value.
"""

import numpy as np
import pytest

from repro.baselines import (
    algebraic_bc,
    async_bc,
    brandes_bc,
    hybrid_bc,
    lockfree_bc,
    preds_bc,
    succs_bc,
    weighted_brandes_bc,
)
from repro.core.apgre import apgre_bc
from repro.core.treefold import treefold_bc
from repro.core.weighted_apgre import weighted_apgre_bc
from repro.generators import paper_example_graph
from repro.graph.build import from_edges

# graph-name -> (edges, directed, expected scores)
GOLDEN = {
    # path 0-1-2-3-4: interior vertices split 2*(left*right) pairs
    "path5": (
        [(0, 1), (1, 2), (2, 3), (3, 4)],
        False,
        [0.0, 6.0, 8.0, 6.0, 0.0],
    ),
    # star: hub mediates all k(k-1) leaf pairs
    "star4": (
        [(0, 1), (0, 2), (0, 3), (0, 4)],
        False,
        [12.0, 0.0, 0.0, 0.0, 0.0],
    ),
    # cycle of 5: each vertex lies on one shortest path per opposite
    # pair: BC = 2 ordered pairs each ... frozen from Fraction Brandes
    "cycle5": (
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        False,
        [2.0, 2.0, 2.0, 2.0, 2.0],
    ),
    # diamond with tail: 0-1, 0-2, 1-3, 2-3, 3-4
    "diamond_tail": (
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
        False,
        [1.0, 2.0, 2.0, 7.0, 0.0],
    ),
    # directed triangle with source pendant 3->0
    "dir_triangle_pendant": (
        [(0, 1), (1, 2), (2, 0), (3, 0)],
        True,
        [3.0, 2.0, 1.0, 0.0],
    ),
    # two triangles sharing articulation vertex 2
    "bowtie": (
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        False,
        [0.0, 0.0, 8.0, 0.0, 0.0],
    ),
    # the paper's Figure-3 reconstruction (13 vertices, directed) —
    # frozen from the exact-Fraction oracle
    "paper_example": (
        None,  # built by fixture
        True,
        [0.0, 0.0, 50.0, 48.0, 12.0, 24.0, 66.0, 21.0, 18.0, 15.0,
         16.0, 0.0, 10.0],
    ),
}

EXACT_ALGOS = {
    "brandes": brandes_bc,
    "apgre": apgre_bc,
    "preds": preds_bc,
    "succs": succs_bc,
    "lockfree": lockfree_bc,
    "hybrid": hybrid_bc,
    "algebraic": algebraic_bc,
}


def build(name):
    edges, directed, expected = GOLDEN[name]
    if name == "paper_example":
        return paper_example_graph(), np.asarray(expected)
    return from_edges(edges, directed=directed), np.asarray(expected)


@pytest.mark.parametrize("name", list(GOLDEN))
@pytest.mark.parametrize("algo", list(EXACT_ALGOS))
def test_golden_values(name, algo):
    g, expected = build(name)
    fn = EXACT_ALGOS[algo]
    np.testing.assert_allclose(
        fn(g), expected, rtol=1e-12, atol=1e-12,
        err_msg=f"{algo} on {name}",
    )


@pytest.mark.parametrize("name", [n for n in GOLDEN if not GOLDEN[n][1]])
def test_golden_undirected_extras(name):
    """Undirected-only algorithms against the same frozen values."""
    g, expected = build(name)
    np.testing.assert_allclose(async_bc(g), expected, rtol=1e-12)
    np.testing.assert_allclose(treefold_bc(g), expected, rtol=1e-12)
    np.testing.assert_allclose(
        weighted_brandes_bc(g), expected, rtol=1e-12
    )
    np.testing.assert_allclose(weighted_apgre_bc(g), expected, rtol=1e-12)


def test_golden_values_came_from_exact_arithmetic():
    """The frozen literals must equal the Fraction oracle's output."""
    from repro.baselines import brandes_python_bc

    for name in GOLDEN:
        g, expected = build(name)
        np.testing.assert_array_equal(
            brandes_python_bc(g, exact=True), expected, err_msg=name
        )
