"""Unit tests for whole-graph operations."""

import numpy as np
import networkx as nx
import pytest

from repro.graph.build import from_edges, from_networkx
from repro.graph.ops import (
    component_sizes,
    connected_components,
    degrees,
    edge_subgraph,
    induced_subgraph,
    largest_component,
    reachable_from,
    relabel_sorted,
    reverse_graph,
    to_undirected,
)
from repro.graph.validate import validate_graph


class TestDegrees:
    def test_undirected(self):
        g = from_edges([(0, 1), (1, 2)])
        assert degrees(g).tolist() == [1, 2, 1]

    def test_directed_in_plus_out(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        assert degrees(g).tolist() == [2, 2, 2]


class TestReverse:
    def test_reverse_directed(self):
        g = from_edges([(0, 1), (1, 2)], directed=True)
        r = reverse_graph(g)
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        validate_graph(r)

    def test_reverse_twice_is_identity(self):
        g = from_edges([(0, 1), (2, 1)], directed=True)
        assert reverse_graph(reverse_graph(g)) == g

    def test_reverse_undirected_is_identity_object(self):
        g = from_edges([(0, 1)])
        assert reverse_graph(g) is g


class TestToUndirected:
    def test_directed_shadow(self):
        g = from_edges([(0, 1), (1, 0), (1, 2)], directed=True)
        u = to_undirected(g)
        assert not u.directed
        assert u.num_undirected_edges == 2  # (0,1) collapses
        validate_graph(u)

    def test_undirected_identity(self):
        g = from_edges([(0, 1)])
        assert to_undirected(g) is g


class TestComponents:
    def test_matches_networkx(self, zoo_entry):
        _name, g, nxg = zoo_entry
        labels, k = connected_components(g)
        und = nxg.to_undirected() if nxg.is_directed() else nxg
        expected = list(nx.connected_components(und))
        assert k == len(expected)
        # same partition of vertices
        ours = {}
        for v in range(g.n):
            ours.setdefault(labels[v], set()).add(v)
        assert set(map(frozenset, ours.values())) == set(
            map(frozenset, expected)
        )

    def test_component_sizes_sorted(self):
        g = from_edges([(0, 1), (2, 3), (3, 4)], n=6)
        sizes = component_sizes(g)
        assert sizes.tolist() == [3, 2, 1]

    def test_largest_component(self):
        g = from_edges([(0, 1), (2, 3), (3, 4)], n=6)
        sub, verts = largest_component(g)
        assert sub.n == 3
        assert sorted(verts.tolist()) == [2, 3, 4]
        validate_graph(sub)


class TestReachability:
    def test_reachable_directed(self):
        g = from_edges([(0, 1), (1, 2), (3, 0)], directed=True)
        mask = reachable_from(g, 0)
        assert mask.tolist() == [True, True, True, False]

    def test_reachable_blocked(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)], directed=True)
        blocked = np.zeros(4, dtype=bool)
        blocked[1] = True
        mask = reachable_from(g, 0, blocked)
        assert mask.tolist() == [True, False, False, False]

    def test_blocked_source_still_expands(self):
        g = from_edges([(0, 1)], directed=True)
        blocked = np.asarray([True, False])
        mask = reachable_from(g, 0, blocked)
        assert mask.tolist() == [True, True]

    def test_matches_networkx_descendants(self):
        nxg = nx.gnm_random_graph(25, 50, seed=3, directed=True)
        g = from_networkx(nxg, n=25)
        for s in (0, 5, 12):
            mask = reachable_from(g, s)
            expected = nx.descendants(nxg, s) | {s}
            assert set(np.flatnonzero(mask).tolist()) == expected


class TestSubgraphs:
    def test_induced_undirected(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = induced_subgraph(g, np.asarray([0, 1, 2]))
        assert sub.n == 3
        assert sub.num_undirected_edges == 2  # 0-1, 1-2
        validate_graph(sub)

    def test_induced_directed(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        sub = induced_subgraph(g, np.asarray([0, 1]))
        assert sub.has_edge(0, 1) and not sub.has_edge(1, 0)

    def test_induced_relabels_in_input_order(self):
        g = from_edges([(0, 1), (1, 2)])
        sub = induced_subgraph(g, np.asarray([2, 1]))
        # local 0 = global 2, local 1 = global 1; edge 2-1 => 0-1
        assert sub.has_edge(0, 1)

    def test_edge_subgraph_excludes_unlisted_edges(self):
        # triangle, but only take two of its edges
        g = from_edges([(0, 1), (1, 2), (2, 0)])
        sub = edge_subgraph(
            g,
            np.asarray([0, 1, 2]),
            np.asarray([0, 1]),
            np.asarray([1, 2]),
        )
        assert sub.num_undirected_edges == 2
        assert not sub.has_edge(0, 2)

    def test_relabel_sorted(self):
        verts = np.asarray([30, 10, 20])
        sorted_v, inverse = relabel_sorted(verts)
        assert sorted_v.tolist() == [10, 20, 30]
        assert inverse.tolist() == [2, 0, 1]
