"""Tests for every baseline BC algorithm."""

import numpy as np
import networkx as nx
import pytest

from repro.baselines import (
    ALGORITHMS,
    async_bc,
    brandes_bc,
    brandes_python_bc,
    get_algorithm,
    hybrid_bc,
    lockfree_bc,
    preds_bc,
    sampling_bc,
    succs_bc,
)
from repro.baselines.common import (
    WorkCounter,
    accumulate_dependencies,
    per_source_delta,
    run_per_source,
)
from repro.errors import AlgorithmError
from repro.graph.build import from_edges, from_networkx
from repro.graph.traversal import bfs_sigma

from tests.conftest import nx_betweenness

EXACT_UNDIRECTED = [brandes_bc, preds_bc, succs_bc, lockfree_bc, hybrid_bc, async_bc]
EXACT_DIRECTED = [brandes_bc, preds_bc, succs_bc, lockfree_bc, hybrid_bc]


class TestExactBaselines:
    def test_all_match_networkx_on_zoo(self, zoo_entry):
        name, g, nxg = zoo_entry
        ref = nx_betweenness(nxg)
        algos = EXACT_DIRECTED if g.directed else EXACT_UNDIRECTED
        for fn in algos:
            scores = fn(g)
            np.testing.assert_allclose(
                scores, ref, rtol=1e-9, atol=1e-8,
                err_msg=f"{fn.__name__} on {name}",
            )

    def test_python_oracle_matches_networkx(self, zoo_entry):
        name, g, nxg = zoo_entry
        if g.n > 30:
            return  # the pure-Python oracle is slow; small graphs only
        ref = nx_betweenness(nxg)
        np.testing.assert_allclose(
            brandes_python_bc(g), ref, rtol=1e-9, atol=1e-8, err_msg=name
        )

    def test_exact_fraction_mode(self):
        nxg = nx.gnm_random_graph(18, 30, seed=4)
        g = from_networkx(nxg, n=18)
        float_scores = brandes_python_bc(g, exact=False)
        frac_scores = brandes_python_bc(g, exact=True)
        np.testing.assert_allclose(float_scores, frac_scores, rtol=1e-9)

    def test_empty_graph(self):
        g = from_edges([], n=3)
        for fn in EXACT_UNDIRECTED:
            assert fn(g).tolist() == [0, 0, 0]

    def test_async_rejects_directed(self):
        g = from_edges([(0, 1)], directed=True)
        with pytest.raises(AlgorithmError, match="undirected"):
            async_bc(g)

    def test_complete_graph_all_zero(self):
        g = from_edges(
            [(i, j) for i in range(6) for j in range(i + 1, 6)]
        )
        for fn in EXACT_UNDIRECTED:
            assert np.allclose(fn(g), 0.0)

    def test_path_graph_closed_form(self):
        # path 0-1-2-3-4: BC(v) = 2 * (#pairs split by v)
        g = from_edges([(i, i + 1) for i in range(4)])
        expected = [0.0, 2 * 3, 2 * 4, 2 * 3, 0.0]
        for fn in EXACT_UNDIRECTED:
            np.testing.assert_allclose(fn(g), expected)

    def test_workers_param(self, und_random):
        ref = brandes_bc(und_random)
        for fn in (preds_bc, succs_bc, lockfree_bc, hybrid_bc):
            np.testing.assert_allclose(
                fn(und_random, workers=2), ref, rtol=1e-9, atol=1e-8
            )


class TestSampling:
    def test_full_sample_is_exact(self, und_random):
        est = sampling_bc(und_random, k=und_random.n, seed=1)
        np.testing.assert_allclose(
            est, brandes_bc(und_random), rtol=1e-9, atol=1e-8
        )

    def test_estimator_is_unbiased_on_average(self):
        g = from_edges([(i, i + 1) for i in range(9)])  # path
        exact = brandes_bc(g)
        rng = np.random.default_rng(0)
        est = np.zeros(g.n)
        trials = 200
        for _ in range(trials):
            est += sampling_bc(g, k=3, seed=rng)
        est /= trials
        # middle vertex: generous tolerance, it's a statistical test
        mid = g.n // 2
        assert abs(est[mid] - exact[mid]) < 0.2 * exact[mid]

    def test_correlates_with_exact(self):
        nxg = nx.gnm_random_graph(60, 120, seed=6)
        g = from_networkx(nxg, n=60)
        exact = brandes_bc(g)
        est = sampling_bc(g, k=20, seed=3)
        assert np.corrcoef(exact, est)[0, 1] > 0.8

    def test_k_validation(self, und_random):
        with pytest.raises(AlgorithmError, match="positive"):
            sampling_bc(und_random, k=0)

    def test_empty_graph(self):
        assert sampling_bc(from_edges([], n=0), k=5).size == 0

    def test_deterministic_with_seed(self, und_random):
        a = sampling_bc(und_random, k=5, seed=9)
        b = sampling_bc(und_random, k=5, seed=9)
        np.testing.assert_array_equal(a, b)


class TestAccumulationModes:
    @pytest.mark.parametrize("mode", ["arcs", "succs", "edge"])
    def test_modes_agree(self, zoo_entry, mode):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        ref = per_source_delta(g, 0, mode="arcs")
        out = per_source_delta(g, 0, mode=mode)
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)

    def test_unknown_mode(self, und_random):
        res = bfs_sigma(und_random, 0)
        with pytest.raises(AlgorithmError, match="unknown accumulation"):
            accumulate_dependencies(und_random, res, mode="bogus")

    def test_arcs_mode_needs_level_arcs(self, und_random):
        res = bfs_sigma(und_random, 0)  # not kept
        with pytest.raises(AlgorithmError, match="keep_level_arcs"):
            accumulate_dependencies(und_random, res, mode="arcs")

    def test_counters_ordered_by_traversal_cost(self, und_random):
        """succs re-examines more arcs than stored preds; edge mode
        scans everything every level."""
        counts = {}
        for mode in ("arcs", "succs", "edge"):
            counter = WorkCounter()
            run_per_source(
                und_random, sources=[0, 1, 2], mode=mode, counter=counter
            )
            counts[mode] = counter.edges
        assert counts["arcs"] <= counts["succs"] <= counts["edge"]

    def test_sources_subset(self, und_random):
        ref = np.zeros(und_random.n)
        for s in (0, 3):
            d = per_source_delta(und_random, s)
            d[s] = 0
            ref += d
        out = run_per_source(und_random, sources=[0, 3])
        np.testing.assert_allclose(out, ref, rtol=1e-12)


class TestRegistry:
    def test_known_names(self):
        assert set(ALGORITHMS) == {
            "serial",
            "APGRE",
            "preds",
            "succs",
            "lockSyncFree",
            "async",
            "hybrid",
            "algebraic",
            "treefold",
            "batched",
        }

    def test_get_algorithm(self):
        assert get_algorithm("serial") is brandes_bc

    def test_apgre_dispatch(self, und_random):
        scores = get_algorithm("APGRE")(und_random)
        np.testing.assert_allclose(
            scores, brandes_bc(und_random), rtol=1e-9, atol=1e-8
        )

    def test_unknown_name(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            get_algorithm("dijkstra")
