"""Exact BC via pendant-*tree* contraction (extension).

APGRE's total-redundancy elimination (γ/R) removes one layer of pendant
sources. The natural generalisation — due to the BADIOS framework of
Sariyüce et al., whose JPDC'14 paper the APGRE paper cites for its TEPS
metric [35] — contracts *entire pendant trees*: iteratively peel
degree-1 vertices, fold each peeled vertex's weight into its remaining
neighbour, then run a **weighted Brandes** on the surviving 2-core and
add the folded trees' contributions analytically.

For an undirected graph, with every core vertex ``v`` carrying weight
``w(v)`` = 1 + (peeled vertices folded into it):

* core sweep — per core source ``s`` the dependency recursion becomes
  ``δ(v) = Σ_w (σ_v/σ_w)(w(w) + δ(w))`` and the merges are::

      bc[v] += w(s) · δ(v) + w(s) · (w(v) − 1)      (v ≠ s, reached)
      bc[s] += (w(s) − 1) · δ(s)                     (tree sources)

  The ``w(s)·δ(v)`` term counts every (source-side, target-side) pair
  through core intermediates; ``w(s)·(w(v)−1)`` credits ``v`` for
  paths ending inside *its own* folded tree; ``(w(s)−1)·δ(s)``
  credits the anchor for its tree's outbound paths (``δ(s)``
  evaluated at the source equals the weighted reachable mass —
  Brandes' self-dependency identity).

* tree contributions — inside a folded tree paths are unique, so for
  a tree vertex ``x`` with subtree weight ``w(x)`` (descendants
  ``w(x) − 1``) and anchor ``a``::

      bc[x] += (N−1)² − Σ_c size_c²                 (within-tree pairs)
      bc[x] += 2 · (w(x) − 1) · D(a)                (tree ↔ outside)
      bc[a] += (N−1)² − Σ_branches w(branch)²       (within-tree at a)

  where ``N = w(a)`` is the tree size including the anchor, the
  ``size_c`` are the components of (tree − x) — the folded children's
  subtree weights plus the remainder toward the anchor — and
  ``D(a) = δ(a)`` from ``a``'s own core sweep (the weighted mass
  outside the tree; zero when the component *is* the tree).

Every formula is verified against the exact-Brandes oracle on the test
zoo and by hypothesis sweeps. Directed graphs are rejected — directed
pendant trees need asymmetric reach bookkeeping that APGRE's γ already
covers one level of; use :func:`repro.core.apgre.apgre_bc` there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.common import WorkCounter
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = ["FoldResult", "peel_pendant_trees", "treefold_bc"]


class FoldResult:
    """Outcome of the degree-1 peeling pass.

    Attributes
    ----------
    peel_order:
        Peeled vertices in removal order (leaves of the current graph
        first). A vertex appears here iff it belongs to a pendant tree
        (for an entirely tree-shaped component, all but one vertex).
    fold_parent:
        ``fold_parent[v]`` is the neighbour ``v``'s weight folded
        into (-1 for unpeeled vertices).
    weight:
        ``weight[v]`` = 1 + total vertices folded (transitively) into
        ``v``. For core vertices this is the Brandes vertex weight;
        for peeled vertices it is their subtree size within the tree.
    core_mask:
        Boolean mask of surviving (unpeeled) vertices.
    children:
        ``children[v]`` lists the vertices folded *directly* into
        ``v`` (its tree children), for the within-tree size products.
    """

    def __init__(self, n: int) -> None:
        self.peel_order: List[int] = []
        self.fold_parent = np.full(n, -1, dtype=np.int64)
        self.weight = np.ones(n, dtype=np.int64)
        self.core_mask = np.ones(n, dtype=bool)
        self.children: List[List[int]] = [[] for _ in range(n)]

    def anchor_of(self, v: int) -> int:
        """The core vertex a peeled vertex's chain folds into."""
        while self.fold_parent[v] >= 0:
            v = int(self.fold_parent[v])
        return v


def peel_pendant_trees(graph: CSRGraph) -> FoldResult:
    """Iteratively remove degree-1 vertices, folding weights upward.

    The peel itself is the shared :func:`repro.graph.kcore.two_core`
    primitive (O(|V| + |E|) queue peel); this wrapper accumulates the
    subtree weights and child lists the treefold formulas need. A
    two-vertex component peels one endpoint (arbitrarily, the smaller
    id) and keeps the other as a weight-2 core singleton; a pure tree
    component collapses to one core vertex carrying the whole tree.
    """
    if graph.directed:
        raise AlgorithmError(
            "tree folding requires an undirected graph "
            "(see repro.core.apgre for directed pendant handling)"
        )
    from repro.graph.kcore import two_core

    n = graph.n
    result = FoldResult(n)
    peel = two_core(graph)
    result.core_mask = peel.core_mask
    result.fold_parent = peel.peel_parent
    result.peel_order = peel.peel_order.tolist()
    # peel_order lists each vertex after everything folded into it,
    # so one forward pass accumulates subtree weights exactly as the
    # incremental queue did
    for v in result.peel_order:
        parent = int(peel.peel_parent[v])
        result.children[parent].append(v)
        result.weight[parent] += result.weight[v]
    return result


def _within_tree_pairs(total: int, component_sizes: List[int]) -> int:
    """Ordered pairs of tree vertices whose path crosses the pivot.

    With ``total`` tree vertices overall, removing the pivot leaves
    components of the given sizes (summing to ``total − 1``); the
    ordered pairs separated by the pivot number
    ``(total−1)² − Σ size²``.
    """
    rest = total - 1
    return rest * rest - sum(c * c for c in component_sizes)


def treefold_bc(
    graph: CSRGraph,
    *,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC with pendant-tree contraction (undirected graphs).

    Equivalent to Brandes on any undirected graph; asymptotically
    removes all tree-shaped work (road networks with cul-de-sac
    hierarchies, collaboration networks with chains of one-paper
    authors). See the module docstring for the derivation.
    """
    fold = peel_pendant_trees(graph)
    n = graph.n
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    weight = fold.weight.astype(SCORE_DTYPE)
    core = np.flatnonzero(fold.core_mask)

    # ---- build the core graph (local ids) ----
    local = np.full(n, -1, dtype=np.int64)
    local[core] = np.arange(core.size)
    src, dst = graph.arcs()
    keep = fold.core_mask[src] & fold.core_mask[dst] & (src <= dst)
    core_graph = CSRGraph.from_arcs(
        core.size, local[src[keep]], local[dst[keep]], directed=False
    )
    w_local = weight[core]

    # ---- weighted Brandes over the core ----
    anchor_mass = np.zeros(core.size, dtype=SCORE_DTYPE)  # D(a) per core
    for s_local in range(core.size):
        res = bfs_sigma(core_graph, s_local, keep_level_arcs=True)
        if counter is not None:
            counter.add(res.edges_traversed)
        sigma = res.sigma
        delta = np.zeros(core.size, dtype=SCORE_DTYPE)
        for d in range(res.depth - 1, -1, -1):
            lsrc, ldst = res.level_arcs[d]
            if lsrc.size == 0:
                continue
            contrib = sigma[lsrc] / sigma[ldst] * (w_local[ldst] + delta[ldst])
            np.add.at(delta, lsrc, contrib)
        ws = float(w_local[s_local])
        if len(res.levels) > 1:
            reached = np.concatenate(res.levels[1:])
            bc[core[reached]] += ws * delta[reached]
            # paths from s's side ending inside v's own folded tree
            bc[core[reached]] += ws * (w_local[reached] - 1.0)
        # the anchor's own folded-tree sources reaching the rest
        anchor_mass[s_local] = delta[s_local]
        if w_local[s_local] > 1:
            bc[core[s_local]] += (ws - 1.0) * delta[s_local]

    # ---- analytic tree contributions ----
    # within-tree separated pairs at each peeled vertex and anchor,
    # and tree<->outside traffic through peeled vertices
    for v in fold.peel_order:
        a = fold.anchor_of(v)
        total = int(fold.weight[a])
        child_sizes = [int(fold.weight[c]) for c in fold.children[v]]
        comp_sizes = child_sizes + [total - int(fold.weight[v])]
        bc[v] += _within_tree_pairs(total, comp_sizes)
        # tree <-> outside through v: descendants times outside mass
        d_a = float(anchor_mass[local[a]])
        bc[v] += 2.0 * (fold.weight[v] - 1.0) * d_a
    for a_local, a in enumerate(core.tolist()):
        if fold.weight[a] <= 1:
            continue
        total = int(fold.weight[a])
        branch_sizes = [int(fold.weight[c]) for c in fold.children[a]]
        bc[a] += _within_tree_pairs(total, branch_sizes)
    return bc
