"""Tests for the persistent shared-memory batched pool.

Covers the PR's contract surface: pooled scores match serial batched
within 1e-9 with *exactly* the serial examined-edge tally, the inline
degradation is bit-identical, work stealing can be disabled, the
tree reduction is order-robust, the memory budget divides by worker
count, and every BENCH_*.json records its environment.
"""

import json

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.baselines.common import WorkCounter, run_per_source
from repro.baselines.preds import preds_bc
from repro.bench.persistence import environment_provenance, save_results
from repro.bench.runner import ExperimentResult
from repro.core.config import APGREConfig
from repro.errors import AlgorithmError
from repro.graph.batched import (
    auto_batch_size,
    batched_bc_scores,
    resolve_batch_size,
)
from repro.parallel.batched_pool import batched_pool_bc_scores, tree_reduce
from repro.parallel.supervisor import RunHealth

WORKERS = 3


class TestTreeReduce:
    def test_matches_plain_sum(self):
        rng = np.random.default_rng(0)
        rows = [rng.standard_normal(17) for _ in range(5)]  # odd count
        np.testing.assert_allclose(
            tree_reduce(rows), np.sum(rows, axis=0), rtol=1e-12
        )

    def test_single_row_is_a_copy(self):
        row = np.ones(4)
        out = tree_reduce([row])
        out[0] = 99.0
        assert row[0] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one row"):
            tree_reduce([])

    def test_pairwise_association(self):
        # pairwise, not sequential: ((a+b) + (c+d)), not (((a+b)+c)+d)
        # — detectable through float non-associativity
        a = np.array([1e16])
        b = np.array([1.0])
        c = np.array([-1e16])
        d = np.array([1.0])
        assert tree_reduce([a, b, c, d])[0] == (a + b)[0] + (c + d)[0]


class TestPoolMatchesSerial:
    @pytest.mark.parametrize("steal", [True, False])
    def test_scores_and_tally_match_serial(self, und_random, steal):
        sources = list(range(0, und_random.n, 2))
        serial_counter = WorkCounter()
        serial = batched_bc_scores(
            und_random, sources, batch=5, counter=serial_counter
        )
        pool_counter = WorkCounter()
        health = RunHealth()
        pooled = batched_pool_bc_scores(
            und_random,
            sources,
            batch=5,
            workers=WORKERS,
            steal=steal,
            counter=pool_counter,
            health=health,
        )
        np.testing.assert_allclose(pooled, serial, rtol=1e-9, atol=1e-9)
        assert pool_counter.edges == serial_counter.edges
        assert not health.degraded
        assert health.tasks == -(-len(sources) // 5)

    def test_directed_graph(self, dir_random):
        sources = list(range(dir_random.n))
        serial = batched_bc_scores(dir_random, sources, batch=7)
        pooled = batched_pool_bc_scores(
            dir_random, sources, batch=7, workers=2
        )
        np.testing.assert_allclose(pooled, serial, rtol=1e-9, atol=1e-9)

    def test_inline_single_worker_bit_identical(self, und_random):
        sources = list(range(0, und_random.n, 3))
        serial = batched_bc_scores(und_random, sources, batch=4)
        health = RunHealth()
        inline = batched_pool_bc_scores(
            und_random, sources, batch=4, workers=1, health=health
        )
        assert (inline == serial).all()  # same code path, not just close
        assert health.inline
        assert not health.degraded

    def test_inline_single_chunk_bit_identical(self, und_random):
        sources = list(range(10))
        serial = batched_bc_scores(und_random, sources, batch=64)
        inline = batched_pool_bc_scores(
            und_random, sources, batch=64, workers=4
        )
        assert (inline == serial).all()

    def test_empty_sources(self, und_random):
        out = batched_pool_bc_scores(
            und_random, [], batch=4, workers=2
        )
        assert out.shape == (und_random.n,)
        assert not out.any()

    def test_invalid_args(self, und_random):
        with pytest.raises(ValueError, match="batch"):
            batched_pool_bc_scores(und_random, [0], batch=0, workers=2)
        with pytest.raises(ValueError, match="workers"):
            batched_pool_bc_scores(und_random, [0], batch=2, workers=0)


class TestRunPerSourceRouting:
    def test_workers_plus_batch_takes_pool(self, und_random):
        ref = run_per_source(und_random, mode="arcs")
        counter = WorkCounter()
        serial_counter = WorkCounter()
        run_per_source(
            und_random, mode="arcs", batch_size=6, counter=serial_counter
        )
        out = run_per_source(
            und_random,
            mode="arcs",
            batch_size=6,
            workers=WORKERS,
            counter=counter,
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)
        assert counter.edges == serial_counter.edges

    def test_brandes_and_preds_accept_workers(self, und_random):
        ref = brandes_bc(und_random)
        np.testing.assert_allclose(
            brandes_bc(und_random, batch_size=8, workers=2),
            ref, rtol=1e-9, atol=1e-9,
        )
        np.testing.assert_allclose(
            preds_bc(und_random, batch_size=8, workers=2, steal=False),
            ref, rtol=1e-9, atol=1e-9,
        )


class TestMemoryBudget:
    def test_workers_divide_the_budget(self):
        n, m = 50_000, 200_000
        budget = 1 << 30
        solo = auto_batch_size(n, m, available_bytes=budget)
        quad = auto_batch_size(n, m, available_bytes=budget, workers=4)
        # each concurrent worker gets a quarter of the pot
        assert quad == auto_batch_size(n, m, available_bytes=budget // 4)
        assert 1 <= quad <= solo

    def test_floor_is_one(self):
        assert auto_batch_size(10**6, 10**7, available_bytes=1, workers=8) == 1

    def test_resolve_passes_workers_to_auto(self):
        n, m = 50_000, 200_000
        assert resolve_batch_size("auto", n, m, workers=4) == auto_batch_size(
            n, m, workers=4
        )

    def test_resolve_explicit_int_ignores_workers(self):
        # an explicit size is the caller's statement that it fits
        assert resolve_batch_size(32, 1000, 4000, workers=8) == 32


class TestConfigAndProvenance:
    def test_parallel_batched_requires_processes(self):
        with pytest.raises(AlgorithmError, match="parallel_batched"):
            APGREConfig(parallel_batched=True, parallel="serial")

    def test_parallel_batched_defaults_auto_batch(self):
        cfg = APGREConfig(
            parallel="processes", workers=2, parallel_batched=True
        )
        assert cfg.batch_size == "auto"
        assert cfg.steal

    def test_environment_provenance_keys(self):
        env = environment_provenance(workers=4)
        assert env["cpu_count"] >= 1
        assert env["available_workers"] >= 1
        assert "fork" in env["start_methods"] or env["start_methods"]
        assert env["numpy"]
        assert env["python"]
        assert env["workers"] == 4

    def test_save_results_embeds_environment(self, tmp_path):
        path = tmp_path / "bench.json"
        result = ExperimentResult(
            exp_id="x", title="t", headers=["a"], rows=[[1]]
        )
        save_results([result], path, metadata={"note": "hi"})
        payload = json.loads(path.read_text())
        assert payload["metadata"]["note"] == "hi"
        assert payload["metadata"]["environment"]["cpu_count"] >= 1

    def test_save_results_caller_environment_wins(self, tmp_path):
        path = tmp_path / "bench.json"
        result = ExperimentResult(
            exp_id="x", title="t", headers=["a"], rows=[[1]]
        )
        save_results(
            [result], path, metadata={"environment": {"pinned": True}}
        )
        payload = json.loads(path.read_text())
        assert payload["metadata"]["environment"] == {"pinned": True}
