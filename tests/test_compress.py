"""Tests for the structural compression layer (repro.compress).

Acceptance guards of the compression PR:

* the compressed kernel matches the plain kernel (and Brandes) to
  1e-9 on randomized graphs across every suite analogue family and
  every execution path (serial / batched / pooled / cached);
* per-rule tallies satisfy the exact-inversion identity
  ``peeled + merged + chain_interiors == n - n_core``;
* compression composes with the contribution cache (twin-identical
  components share one store entry) and with fault injection (a
  worker killed mid-batch still yields 1e-9-correct scores);
* the shared ``two_core`` peel and the memoized ``to_undirected``
  satellite helpers behave as documented.
"""

import numpy as np
import pytest

import networkx as nx

from repro.baselines.brandes import brandes_bc
from repro.cache import ContributionStore, subgraph_key
from repro.compress import (
    STATUS_CHAIN,
    STATUS_CORE,
    STATUS_PEELED,
    STATUS_TWIN,
    SubgraphPlan,
    bc_subgraph_compressed,
    build_plan,
    compression_plan,
)
from repro.compress.plan import TWIN_CLOSED, TWIN_OPEN
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.bc_subgraph import bc_subgraph
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.generators import suite
from repro.graph.build import from_edges, from_networkx
from repro.graph.csr import CSRGraph
from repro.graph.kcore import TwoCoreResult, two_core
from repro.graph.ops import to_undirected
from repro.parallel.faults import FaultSpec, injected_faults

TOL = dict(rtol=1e-9, atol=1e-9)


def _random_compressible(rng, n, m, twins=2, chains=2, pendants=3):
    """A random core with grafted twin bundles, chains and pendants."""
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    es, ed = list(src), list(dst)
    nn = n
    for _ in range(twins):
        nbrs = np.unique(rng.integers(0, n, size=3)).tolist()
        for _ in range(int(rng.integers(2, 4))):
            for b in nbrs:
                es.append(nn)
                ed.append(b)
            nn += 1
    for _ in range(chains):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        prev = a
        for _ in range(int(rng.integers(2, 5))):
            es.append(prev)
            ed.append(nn)
            prev = nn
            nn += 1
        es.append(prev)
        ed.append(b)
    for _ in range(pendants):
        es.append(int(rng.integers(0, nn)))
        ed.append(nn)
        nn += 1
    return CSRGraph.from_arcs(nn, es, ed, directed=False)


def _partition_with_summaries(g):
    part = graph_partition(g)
    compute_alpha_beta(g, part)
    return part


# ---------------------------------------------------------------------------
# satellite: the shared two_core peel
# ---------------------------------------------------------------------------
class TestTwoCore:
    def test_path_peels_to_one_survivor(self):
        # an acyclic component folds down to a single degree-0 survivor
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], n=5)
        res = two_core(g)
        assert isinstance(res, TwoCoreResult)
        assert res.core_mask.sum() == 1
        assert res.peel_order.size == 4
        survivor = int(np.flatnonzero(res.core_mask)[0])
        assert res.peel_parent[survivor] == -1

    def test_cycle_with_tail(self):
        # triangle 0-1-2 with tail 2-3-4
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], n=5)
        res = two_core(g)
        assert res.core_mask.tolist() == [True, True, True, False, False]
        # 4 peels first (into 3), then 3 (into 2)
        assert res.peel_order.tolist() == [4, 3]
        assert res.peel_parent[4] == 3
        assert res.peel_parent[3] == 2

    def test_parent_order_children_before_parents(self):
        g = from_networkx(nx.balanced_tree(2, 3))
        res = two_core(g)
        seen = set()
        for v in res.peel_order.tolist():
            p = int(res.peel_parent[v])
            assert p not in seen  # parent peels after its children
            seen.add(v)

    def test_eligible_mask_restricts_peel(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], n=5)
        eligible = np.array([False, False, False, False, True])
        res = two_core(g, eligible=eligible)
        assert res.peel_order.tolist() == [4]
        assert res.core_mask.sum() == 4

    def test_k2_one_survivor(self):
        g = from_edges([(0, 1)], n=2)
        res = two_core(g)
        assert res.peel_order.size == 1
        # exactly one endpoint survives as the other's parent
        v = int(res.peel_order[0])
        assert res.peel_parent[v] == 1 - v
        assert res.core_mask.sum() == 1

    def test_matches_networkx_two_core(self):
        nxg = nx.gnm_random_graph(40, 48, seed=7)
        g = from_networkx(nxg)
        res = two_core(g)
        core = set(nx.k_core(nxg, 2).nodes)
        survivors = set(np.flatnonzero(res.core_mask).tolist())
        # every true 2-core vertex survives…
        assert core <= survivors
        # …and each extra survivor is the lone degree-0 remnant of an
        # acyclic component (nx drops those, the peel keeps one anchor)
        for comp in nx.connected_components(nxg):
            sub = nxg.subgraph(comp)
            extra = (comp & survivors) - core
            if sub.number_of_edges() >= sub.number_of_nodes():
                assert not extra  # has a cycle: exact agreement
            else:
                assert len(extra) == 1


# ---------------------------------------------------------------------------
# satellite: memoized undirected shadow
# ---------------------------------------------------------------------------
class TestToUndirectedMemo:
    def test_undirected_identity(self):
        g = from_edges([(0, 1), (1, 2)], n=3)
        assert to_undirected(g) is g

    def test_directed_shadow_memoized(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)], directed=True, n=4)
        first = to_undirected(g)
        assert first is not g
        assert first is to_undirected(g)
        assert not first.directed

    def test_cache_evicts_on_collection(self):
        import gc

        from repro.graph.ops import _UNDIRECTED_CACHE

        g = from_edges([(0, 1), (1, 2)], directed=True, n=3)
        to_undirected(g)
        key = id(g)
        assert key in _UNDIRECTED_CACHE
        del g
        gc.collect()
        assert key not in _UNDIRECTED_CACHE


# ---------------------------------------------------------------------------
# the reduction ladder
# ---------------------------------------------------------------------------
class TestLadder:
    def test_type1_twins_merge(self):
        # 0-1 edge; 2,3,4 all adjacent to both 0 and 1 (open twins)
        g = from_edges(
            [(0, 1), (2, 0), (2, 1), (3, 0), (3, 1), (4, 0), (4, 1)], n=5
        )
        part = _partition_with_summaries(g)
        plan = build_plan(part.subgraphs[0])
        # round 1 merges the open twins {2,3,4}; that exposes 0 and 1
        # as closed twins, which round 2 merges — fixpoint finds both
        twins = np.flatnonzero(plan.status == STATUS_TWIN)
        assert sorted(twins.tolist()) == [1, 3, 4]
        kinds = {tc.rep: tc.kind for tc in plan.twin_classes}
        assert kinds == {2: TWIN_OPEN, 0: TWIN_CLOSED}
        open_tc = next(t for t in plan.twin_classes if t.kind == TWIN_OPEN)
        assert sorted(open_tc.members.tolist()) == [2, 3, 4]
        assert plan.mult[2] == 3
        assert plan.mult[0] == 2

    def test_type2_twins_merge(self):
        g = from_networkx(nx.complete_graph(5))
        part = _partition_with_summaries(g)
        plan = build_plan(part.subgraphs[0])
        # a clique is one closed twin class collapsed to a point
        assert plan.n_core == 1
        assert plan.twin_classes[0].kind == TWIN_CLOSED
        assert plan.mult[plan.twin_classes[0].rep] == 5

    def test_chain_contracts_with_length(self):
        # hubs 0,1 each anchored by a triangle (bridged 6-8 so the
        # whole thing is one biconnected component) and joined by a
        # 4-interior chain; the triangles are asymmetric enough that
        # no twin rule fires and the hubs keep degree >= 3
        g = from_edges(
            [(0, 6), (0, 7), (6, 7), (1, 8), (1, 9), (8, 9), (6, 8),
             (0, 2), (2, 3), (3, 4), (4, 5), (5, 1)],
            n=10,
        )
        part = _partition_with_summaries(g)
        plan = build_plan(part.subgraphs[0])
        chain_members = np.flatnonzero(plan.status == STATUS_CHAIN)
        assert sorted(chain_members.tolist()) == [2, 3, 4, 5]
        (ch,) = plan.chains
        assert {ch.u, ch.v} == {0, 1}
        assert ch.length == 5
        assert plan.has_lengths
        # super-edge arcs carry the integer length in both orientations
        assert plan.arc_lengths[ch.arc_uv] == 5
        assert plan.arc_lengths[ch.arc_vu] == 5

    def test_parallel_super_edge_skipped(self):
        # two chains of different lengths between triangle-anchored
        # hubs 0 and 1: whichever chain contracts first takes the
        # (0,1) slot, the other would create a parallel super-edge
        # and must stay uncontracted (the CSR is simple)
        g = from_edges(
            [(0, 5), (0, 6), (5, 6), (1, 7), (1, 8), (7, 8), (5, 7),
             (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)],
            n=9,
        )
        part = _partition_with_summaries(g)
        plan = build_plan(part.subgraphs[0])
        assert len(plan.chains) == 1
        # the loser's interiors survive as core vertices, and the
        # compressed kernel is still exact on the mixed graph
        sg = part.subgraphs[0]
        np.testing.assert_allclose(
            bc_subgraph_compressed(sg), bc_subgraph(sg), **TOL
        )

    def test_directed_gets_trivial_plan(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], directed=True, n=4)
        part = _partition_with_summaries(g)
        plan = build_plan(part.subgraphs[0])
        assert isinstance(plan, SubgraphPlan)
        assert not plan.nontrivial
        assert (plan.status == STATUS_CORE).all()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_tallies_identity_randomized(self, seed):
        rng = np.random.default_rng(seed)
        g = _random_compressible(rng, 20, 40)
        part = _partition_with_summaries(g)
        for sg in part.subgraphs:
            for ep in (True, False):
                plan = build_plan(sg, eliminate_pendants=ep)
                assert (
                    plan.vertices_peeled
                    + plan.vertices_merged
                    + plan.chain_interiors
                    == plan.n - plan.n_core
                )

    def test_plan_memoized_per_flag(self):
        g = from_networkx(nx.complete_graph(4))
        part = _partition_with_summaries(g)
        sg = part.subgraphs[0]
        assert compression_plan(sg) is compression_plan(sg)
        assert compression_plan(sg) is not compression_plan(
            sg, eliminate_pendants=False
        )


# ---------------------------------------------------------------------------
# kernel equivalence: compressed vs plain, randomized
# ---------------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_plain_kernel(self, seed):
        rng = np.random.default_rng(seed)
        g = _random_compressible(
            rng,
            int(rng.integers(8, 25)),
            int(rng.integers(15, 50)),
            twins=int(rng.integers(0, 3)),
            chains=int(rng.integers(0, 3)),
            pendants=int(rng.integers(0, 4)),
        )
        part = _partition_with_summaries(g)
        for ep in (True, False):
            for sg in part.subgraphs:
                ref = bc_subgraph(sg, eliminate_pendants=ep)
                got = bc_subgraph_compressed(sg, eliminate_pendants=ep)
                np.testing.assert_allclose(got, ref, **TOL)

    def test_root_chunks_sum_to_whole(self):
        rng = np.random.default_rng(42)
        g = _random_compressible(rng, 15, 30)
        part = _partition_with_summaries(g)
        for sg in part.subgraphs:
            plan = compression_plan(sg)
            whole = bc_subgraph_compressed(sg, plan)
            acc = np.zeros(sg.graph.n)
            perm = rng.permutation(sg.roots.size)
            for chunk in np.array_split(sg.roots[perm], 3):
                acc += bc_subgraph_compressed(sg, plan, roots=chunk)
            np.testing.assert_allclose(acc, whole, **TOL)

    def test_compress_flag_on_plain_kernels(self):
        rng = np.random.default_rng(5)
        g = _random_compressible(rng, 12, 25)
        part = _partition_with_summaries(g)
        for sg in part.subgraphs:
            ref = bc_subgraph(sg)
            np.testing.assert_allclose(
                bc_subgraph(sg, compress=True), ref, **TOL
            )
            np.testing.assert_allclose(
                bc_subgraph(sg, compress=True, batch_size="auto"), ref, **TOL
            )


# ---------------------------------------------------------------------------
# end-to-end equivalence across suite families and execution paths
# ---------------------------------------------------------------------------
def _analogue(name, seed=11):
    for scale in (0.06, 0.12, 0.25):
        try:
            return suite.analogue_graph(name, scale=scale, seed=seed)
        except Exception:
            continue
    raise RuntimeError(f"no workable scale for {name}")


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", suite.suite_names())
    def test_serial_and_batched(self, name):
        g = _analogue(name)
        ref = brandes_bc(g)
        got = apgre_bc(g, compress=True)
        np.testing.assert_allclose(got, ref, **TOL)
        got_b = apgre_bc(g, compress=True, batch_size="auto")
        np.testing.assert_allclose(got_b, ref, **TOL)

    @pytest.mark.parametrize("name", ["Email-Enron", "USA-roadNY"])
    def test_pooled(self, name):
        g = _analogue(name)
        ref = brandes_bc(g)
        res = apgre_bc_detailed(
            g,
            APGREConfig(
                compress=True,
                parallel="processes",
                workers=2,
                parallel_batched=True,
            ),
        )
        np.testing.assert_allclose(res.scores, ref, **TOL)

    @pytest.mark.parametrize("name", ["Email-Enron", "USA-roadNY"])
    def test_cached(self, name, tmp_path):
        g = _analogue(name)
        ref = brandes_bc(g)
        store = ContributionStore(cache_dir=str(tmp_path))
        cold = apgre_bc_detailed(g, APGREConfig(compress=True, cache=store))
        warm = apgre_bc_detailed(g, APGREConfig(compress=True, cache=store))
        np.testing.assert_allclose(cold.scores, ref, **TOL)
        np.testing.assert_allclose(warm.scores, ref, **TOL)
        assert warm.stats.subgraphs_recomputed == 0
        assert warm.stats.subgraphs_replayed == warm.stats.num_subgraphs

    def test_eliminate_pendants_off(self):
        g = _analogue("com-youtube")
        ref = brandes_bc(g)
        got = apgre_bc(g, compress=True, eliminate_pendants=False)
        np.testing.assert_allclose(got, ref, **TOL)


# ---------------------------------------------------------------------------
# stats plumbing
# ---------------------------------------------------------------------------
class TestStats:
    def test_compression_counters(self):
        rng = np.random.default_rng(9)
        g = _random_compressible(rng, 20, 40, twins=3, chains=3, pendants=5)
        res = apgre_bc_detailed(g, APGREConfig(compress=True))
        s = res.stats
        assert s.vertices_merged > 0 or s.chains_contracted > 0
        assert s.compression_ratio > 1.0
        # the identity aggregates over sub-graphs
        part = _partition_with_summaries(g)
        plans = [compression_plan(sg) for sg in part.subgraphs]
        assert s.vertices_merged == sum(p.vertices_merged for p in plans)
        assert s.chains_contracted == sum(p.chain_interiors for p in plans)
        assert s.vertices_peeled == sum(p.vertices_peeled for p in plans)

    def test_counters_default_without_compress(self):
        g = from_networkx(nx.complete_graph(5))
        res = apgre_bc_detailed(g)
        assert res.stats.vertices_merged == 0
        assert res.stats.compression_ratio == 1.0

    def test_compressed_run_examines_fewer_edges(self):
        # a chain/twin/pendant-heavy graph must traverse strictly less
        rng = np.random.default_rng(13)
        g = _random_compressible(rng, 25, 50, twins=4, chains=4, pendants=8)
        plain = apgre_bc_detailed(g)
        comp = apgre_bc_detailed(g, APGREConfig(compress=True))
        np.testing.assert_allclose(comp.scores, plain.scores, **TOL)
        assert comp.stats.edges_traversed < plain.stats.edges_traversed


# ---------------------------------------------------------------------------
# cache composition: twin-identical components share one entry
# ---------------------------------------------------------------------------
class TestCacheSharing:
    # the partition's small-BCC merge (threshold 8) absorbs size-2
    # bridge blocks into the TOP group only, so the fixture hangs two
    # 8-vertex twin gadgets symmetrically off a denser K7 centre: the
    # centre is the top, eats both bridges, and the gadget sub-graphs
    # come out byte-identical in local coordinates
    def _two_identical_components(self):
        gadget = [(0, 1)] + [(t, h) for t in range(2, 8) for h in (0, 1)]
        edges = list(gadget)
        edges += [(u + 8, v + 8) for u, v in gadget]
        edges += [
            (i, j) for i in range(16, 23) for j in range(i + 1, 23)
        ]  # K7 centre
        edges += [(0, 16), (8, 17)]
        return from_edges(edges, n=23)

    def test_twin_identical_components_share_key(self):
        g = self._two_identical_components()
        part = _partition_with_summaries(g)
        big = [sg for sg in part.subgraphs if sg.num_vertices == 8]
        assert len(big) == 2
        k0 = subgraph_key(big[0], compress=True)
        k1 = subgraph_key(big[1], compress=True)
        assert k0 == k1
        # and the compressed domain differs from the raw-CSR domain
        assert k0 != subgraph_key(big[0], compress=False)

    def test_components_hit_same_store_entry(self):
        g = self._two_identical_components()
        ref = brandes_bc(g)
        store = ContributionStore()
        res = apgre_bc_detailed(
            g, APGREConfig(compress=True, cache=store)
        )
        np.testing.assert_allclose(res.scores, ref, **TOL)
        part = _partition_with_summaries(g)
        keys = {
            subgraph_key(sg, compress=True)
            for sg in part.subgraphs
            if sg.num_vertices == 8
        }
        assert len(keys) == 1  # one entry serves both components
        warm = apgre_bc_detailed(
            g, APGREConfig(compress=True, cache=store)
        )
        np.testing.assert_allclose(warm.scores, ref, **TOL)
        assert warm.stats.subgraphs_replayed == warm.stats.num_subgraphs


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
class TestCLI:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.io import write_edgelist

        rng = np.random.default_rng(3)
        g = _random_compressible(rng, 10, 20)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        return str(path), g

    def test_compress_flag_computes(self, graph_file, capsys):
        from repro.cli import main

        path, g = graph_file
        assert main(["compute", path, "--compress"]) == 0
        out = capsys.readouterr().out
        assert "APGRE BC" in out

    def test_compress_requires_apgre(self, graph_file, capsys):
        from repro.cli import main

        path, _ = graph_file
        assert main(
            ["compute", path, "--algorithm", "serial", "--compress"]
        ) == 2

    def test_compress_matches_plain_output(self, graph_file, capsys):
        from repro.cli import main

        path, _ = graph_file
        main(["compute", path, "--top", "5"])
        plain = capsys.readouterr().out.splitlines()[2:]
        main(["compute", path, "--compress", "--top", "5"])
        comp = capsys.readouterr().out.splitlines()[2:]
        assert plain == comp


# ---------------------------------------------------------------------------
# fault composition: kill mid-batch, still exact
# ---------------------------------------------------------------------------
@pytest.mark.faults
class TestFaultComposition:
    def test_kill_mid_batch_still_exact(self):
        g = _analogue("Email-Enron")
        ref = brandes_bc(g)
        with injected_faults(FaultSpec("kill", task=0)):
            res = apgre_bc_detailed(
                g,
                APGREConfig(
                    compress=True,
                    parallel="processes",
                    workers=2,
                    parallel_batched=True,
                ),
            )
        np.testing.assert_allclose(res.scores, ref, **TOL)
        assert res.health.worker_crashes == 1

    def test_kill_exhausting_retries_degrades_exact(self):
        g = _analogue("USA-roadNY")
        ref = brandes_bc(g)
        specs = [
            FaultSpec("kill", task=t, attempts=tuple(range(16)))
            for t in range(4)
        ]
        with injected_faults(*specs):
            res = apgre_bc_detailed(
                g,
                APGREConfig(
                    compress=True,
                    parallel="processes",
                    workers=2,
                    max_retries=1,
                ),
            )
        np.testing.assert_allclose(res.scores, ref, **TOL)
