"""Tests for the graph file formats (SNAP, DIMACS, MatrixMarket)."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.build import from_edges
from repro.io import (
    load_graph,
    read_dimacs,
    read_edgelist,
    read_matrix_market,
    save_graph,
    sniff_format,
    write_dimacs,
    write_edgelist,
    write_matrix_market,
)


class TestEdgelist:
    def test_read_basic(self):
        text = io.StringIO("# comment\n0 1\n1 2\n")
        g, ids = read_edgelist(text, directed=False)
        assert g.n == 3 and g.num_undirected_edges == 2
        assert ids.tolist() == [0, 1, 2]

    def test_densify_sparse_ids(self):
        text = io.StringIO("100 200\n200 4000\n")
        g, ids = read_edgelist(text, directed=True)
        assert g.n == 3
        assert ids.tolist() == [100, 200, 4000]
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_no_densify(self):
        text = io.StringIO("0 1\n1 3\n")
        g, ids = read_edgelist(text, directed=True, densify=False)
        assert g.n == 4 and ids is None

    def test_tabs_and_extra_fields(self):
        text = io.StringIO("0\t1\t42\n1\t2\n")
        g, _ = read_edgelist(text, directed=True)
        assert g.num_arcs == 2

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            read_edgelist(io.StringIO("0 1\njunk\n"))

    def test_non_integer(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edgelist(io.StringIO("a b\n"))

    def test_negative_id(self):
        with pytest.raises(GraphFormatError, match="negative"):
            read_edgelist(io.StringIO("-1 0\n"))

    def test_empty_file(self):
        g, ids = read_edgelist(io.StringIO(""))
        assert g.n == 0

    def test_roundtrip(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (2, 3)], directed=True)
        path = tmp_path / "g.txt"
        write_edgelist(g, path, header="test graph")
        g2, _ = read_edgelist(path, directed=True, densify=False)
        assert g2 == g
        content = path.read_text()
        assert content.startswith("# repro edge list (directed)")
        assert "# test graph" in content

    def test_roundtrip_undirected(self, tmp_path):
        g = from_edges([(0, 1), (1, 2)])
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        g2, _ = read_edgelist(path, directed=False, densify=False)
        assert g2 == g


class TestDimacs:
    GOOD = "c road net\np sp 4 3\na 1 2 5\na 2 3 1\na 3 4 2\n"

    def test_read_basic(self):
        g = read_dimacs(io.StringIO(self.GOOD), directed=True)
        assert g.n == 4 and g.num_arcs == 3
        assert g.has_edge(0, 1)

    def test_read_undirected_collapses(self):
        text = "p sp 2 2\na 1 2 1\na 2 1 1\n"
        g = read_dimacs(io.StringIO(text), directed=False)
        assert g.num_undirected_edges == 1

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError, match="problem line"):
            read_dimacs(io.StringIO("a 1 2 1\n"))

    def test_duplicate_problem_line(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_dimacs(io.StringIO("p sp 2 0\np sp 2 0\n"))

    def test_malformed_problem_line(self):
        with pytest.raises(GraphFormatError, match="malformed problem"):
            read_dimacs(io.StringIO("p xx 2 1\n"))

    def test_endpoint_out_of_range(self):
        with pytest.raises(GraphFormatError, match="outside"):
            read_dimacs(io.StringIO("p sp 2 1\na 1 5 1\n"))

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            read_dimacs(io.StringIO("p sp 2 1\nx 1 2\n"))

    def test_arc_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares"):
            read_dimacs(io.StringIO("p sp 2 5\na 1 2 1\n"))

    def test_malformed_arc(self):
        with pytest.raises(GraphFormatError, match="malformed arc"):
            read_dimacs(io.StringIO("p sp 2 1\na 1\n"))

    def test_roundtrip_undirected(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        assert read_dimacs(path, directed=False) == g

    def test_roundtrip_directed(self, tmp_path):
        g = from_edges([(0, 1), (2, 1)], directed=True)
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        assert read_dimacs(path, directed=True) == g


class TestMatrixMarket:
    GENERAL = (
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% a comment\n"
        "3 3 2\n1 2\n2 3\n"
    )
    SYMMETRIC = (
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n2 1\n3 2\n"
    )

    def test_read_general_is_directed(self):
        g = read_matrix_market(io.StringIO(self.GENERAL))
        assert g.directed and g.num_arcs == 2

    def test_read_symmetric_is_undirected(self):
        g = read_matrix_market(io.StringIO(self.SYMMETRIC))
        assert not g.directed and g.num_undirected_edges == 2

    def test_bad_header(self):
        with pytest.raises(GraphFormatError, match="header"):
            read_matrix_market(io.StringIO("%%NotMM matrix x y z\n"))

    def test_unsupported_field(self):
        with pytest.raises(GraphFormatError, match="field type"):
            read_matrix_market(
                io.StringIO(
                    "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
                )
            )

    def test_unsupported_symmetry(self):
        with pytest.raises(GraphFormatError, match="symmetry"):
            read_matrix_market(
                io.StringIO(
                    "%%MatrixMarket matrix coordinate pattern hermitian\n1 1 0\n"
                )
            )

    def test_missing_size_line(self):
        with pytest.raises(GraphFormatError, match="size line"):
            read_matrix_market(
                io.StringIO(
                    "%%MatrixMarket matrix coordinate pattern general\n"
                )
            )

    def test_entry_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declares"):
            read_matrix_market(
                io.StringIO(
                    "%%MatrixMarket matrix coordinate pattern general\n"
                    "2 2 5\n1 2\n"
                )
            )

    def test_index_out_of_range(self):
        with pytest.raises(GraphFormatError, match="outside"):
            read_matrix_market(
                io.StringIO(
                    "%%MatrixMarket matrix coordinate pattern general\n"
                    "2 2 1\n1 9\n"
                )
            )

    def test_roundtrip_undirected(self, tmp_path):
        g = from_edges([(0, 1), (1, 2)])
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g

    def test_roundtrip_directed(self, tmp_path):
        g = from_edges([(0, 1), (1, 0), (1, 2)], directed=True)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g


class TestRegistry:
    def test_sniff_by_extension(self, tmp_path):
        for ext, fmt in [
            (".txt", "edgelist"),
            (".gr", "dimacs"),
            (".mtx", "matrixmarket"),
        ]:
            p = tmp_path / f"g{ext}"
            p.write_text("")
            assert sniff_format(p) == fmt

    def test_sniff_by_content(self, tmp_path):
        p = tmp_path / "mystery"
        p.write_text("%%MatrixMarket matrix coordinate pattern general\n1 1 0\n")
        assert sniff_format(p) == "matrixmarket"
        p.write_text("c comment\np sp 2 1\na 1 2 1\n")
        assert sniff_format(p) == "dimacs"
        p.write_text("# snap\n0 1\n")
        assert sniff_format(p) == "edgelist"

    def test_load_save_all_formats(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        for name in ("g.txt", "g.gr", "g.mtx"):
            path = tmp_path / name
            save_graph(g, path)
            assert load_graph(path, directed=False) == g

    def test_load_unknown_format(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n")
        with pytest.raises(GraphFormatError, match="unknown graph format"):
            load_graph(p, fmt="bogus")

    def test_save_unknown_format(self, tmp_path):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphFormatError, match="unknown graph format"):
            save_graph(g, tmp_path / "g.txt", fmt="bogus")
