"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while letting programming errors (``TypeError``
from bad call signatures, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "PartitionError",
    "AlgorithmError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """A graph file or in-memory payload could not be parsed.

    Raised by the :mod:`repro.io` readers when the input violates the
    expected on-disk format (bad header, non-integer endpoint, truncated
    record, ...). The message always includes the offending location
    (line number or field) when one is available.
    """


class GraphValidationError(ReproError):
    """A graph object violates a structural invariant.

    Raised by :func:`repro.graph.validate.validate_graph` and by CSR
    constructors when handed inconsistent arrays (unsorted ``indptr``,
    out-of-range vertex ids, ...).
    """


class PartitionError(ReproError):
    """Graph decomposition produced or was handed an inconsistent state.

    Raised by :mod:`repro.decompose` when a partition does not cover the
    graph, when a sub-graph references unknown articulation points, or
    when α/β counting detects an impossible configuration.
    """


class AlgorithmError(ReproError):
    """A BC algorithm was invoked with unsupported options or inputs.

    For example the asynchronous baseline only supports undirected
    graphs (mirroring the paper's ``async`` comparator) and raises this
    error for directed input.
    """


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured.

    Raised by :mod:`repro.bench` for unknown experiment ids, empty
    workload selections and similar harness-level misuse.
    """
