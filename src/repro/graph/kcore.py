"""k-core decomposition (iterated degree peeling).

The degree-1 peel behind :mod:`repro.core.treefold` is the ``k = 2``
case of the general k-core decomposition (Matula–Beck): repeatedly
remove vertices of degree < k. ``core_numbers`` computes every
vertex's coreness in O(|V| + |E|) with the bucket-queue algorithm —
a useful structural fingerprint for the workload suite (power-law
analogues have deep cores, road lattices are all 2–3-core).

:func:`two_core` is the shared degree-1 peel primitive: treefold's
pendant-tree contraction and the compression ladder's pendant fold
(:mod:`repro.compress`) both consume its ``(core_mask, peel_order,
peel_parent)`` triple instead of each running their own queue loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_undirected
from repro.types import VERTEX_DTYPE

__all__ = ["core_numbers", "k_core", "two_core", "TwoCoreResult"]


@dataclass
class TwoCoreResult:
    """Outcome of the shared degree-1 peel.

    Attributes
    ----------
    core_mask:
        Boolean mask of surviving vertices (the 2-core plus any
        ineligible vertices the peel was told to keep).
    peel_order:
        Peeled vertices in removal order — every vertex peels strictly
        after all vertices that folded into it, so a single forward
        pass over this order can accumulate subtree weights.
    peel_parent:
        ``peel_parent[v]`` is the neighbour ``v`` folded into
        (``-1`` for surviving vertices).
    """

    core_mask: np.ndarray
    peel_order: np.ndarray
    peel_parent: np.ndarray


def two_core(
    graph: CSRGraph, *, eligible: Optional[np.ndarray] = None
) -> TwoCoreResult:
    """Iteratively remove degree-1 vertices (the 2-core peel).

    ``eligible`` optionally restricts which vertices may be peeled
    (boolean mask); ineligible vertices survive even at degree 1 —
    the compression ladder passes the partition's ``removed`` set so
    only single-level pendant sources fold, while treefold passes
    ``None`` to peel whole pendant trees.  A two-vertex component
    peels one endpoint (the smaller id) and keeps the other as a
    degree-0 survivor; directed graphs peel on the undirected shadow.
    """
    und = to_undirected(graph)
    n = und.n
    deg = und.out_degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    if eligible is None:
        can = np.ones(n, dtype=bool)
    else:
        can = np.asarray(eligible, dtype=bool)
    peel_parent = np.full(n, -1, dtype=np.int64)
    order = []
    queue = deque(np.flatnonzero((deg == 1) & can).tolist())
    while queue:
        v = int(queue.popleft())
        if not alive[v] or deg[v] != 1:
            continue
        parent = -1
        for w in und.out_neighbors(v).tolist():
            if alive[w]:
                parent = w
                break
        if parent < 0:  # last vertex of a 2-cycle chain; keep it
            continue
        alive[v] = False
        deg[parent] -= 1
        deg[v] = 0
        order.append(v)
        peel_parent[v] = parent
        if deg[parent] == 1 and can[parent]:
            queue.append(parent)
    return TwoCoreResult(
        core_mask=alive,
        peel_order=np.asarray(order, dtype=np.int64),
        peel_parent=peel_parent,
    )


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Coreness of every vertex (undirected shadow for directed input).

    ``core[v]`` is the largest k such that v belongs to a subgraph
    with minimum degree k. Isolated vertices have coreness 0.
    """
    und = to_undirected(graph)
    n = und.n
    deg = und.out_degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    # bucket-sorted vertices by current degree (Matula–Beck / Batagelj–
    # Zaveršnik): process in nondecreasing degree order, decrementing
    # neighbours' degrees as we go
    order = np.argsort(deg, kind="stable")
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    # bin_start[d] = first position in `order` with degree >= d
    max_deg = int(deg.max()) if n else 0
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(deg, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_start[1:])
    bin_start = bin_start[:-1].copy()

    order = order.copy()
    for i in range(n):
        v = int(order[i])
        core[v] = deg[v]
        for w in und.out_neighbors(v).tolist():
            if deg[w] > deg[v]:
                # swap w to the front of its degree bin, shrink bin
                dw = int(deg[w])
                front = int(bin_start[dw])
                u = int(order[front])
                if u != w:
                    order[front], order[pos[w]] = w, u
                    pos[u], pos[w] = pos[w], front
                bin_start[dw] += 1
                deg[w] -= 1
    return core


def k_core(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertices of the k-core (coreness >= k).

    Raises
    ------
    GraphValidationError
        For negative k.
    """
    if k < 0:
        raise GraphValidationError(f"k must be >= 0, got {k}")
    return np.flatnonzero(core_numbers(graph) >= k).astype(VERTEX_DTYPE)
