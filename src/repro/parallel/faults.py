"""Deterministic fault injection for the supervised execution layer.

Every failure path of :func:`repro.parallel.supervisor.supervised_map`
— worker death, stuck tasks, in-worker exceptions, corrupted results —
is exercised in tests by *injecting* the failure rather than hoping to
observe it.  A :class:`FaultPlan` names exactly which task, on exactly
which attempt, misbehaves in which way, so fault tests are fully
deterministic and bit-level reproducible.

The plan is installed in the *parent* process
(:func:`install_faults` / :func:`injected_faults`); workers inherit it
through ``fork`` and consult it via the two hooks the supervisor's
worker shim calls around the task function:

* :func:`fire_pre_faults` — before the task body; may kill the worker
  (``os._exit``), delay it, or raise :class:`InjectedFault`;
* :func:`apply_corruption` — after the task body; may replace the
  result with :attr:`FaultSpec.replacement` (paired with the
  supervisor's ``validate`` hook to exercise the corrupt-result path).

Worker faults fire only inside worker *executors* — worker processes
(via :func:`fire_pre_faults`) and the threaded backend's worker
threads (via :func:`fire_thread_faults`, where ``kill`` means "this
worker thread dies abruptly" — raising :class:`WorkerThreadKilled`,
which the thread supervisor treats as a worker crash — because
``os._exit`` would take the whole process, supervisor included, down
with it).  The supervisors' inline and serial-fallback paths never
consult the plan: the serial rung of the degradation ladder is exactly
the trusted path a real deployment falls back to, and a ``kill`` fault
firing inline would take the test runner down with it.

**Disk faults** are the second family: specs with a non-empty
:attr:`FaultSpec.target` name an *operation point in the disk layer*
instead of a pool task.  The journal writer (:mod:`repro.journal`) and
the cache's disk layer (:mod:`repro.cache.store`) call
:func:`fire_disk_faults` once per write operation; ``spec.task`` then
indexes the operations on that target (0 = first write), and the kinds
``"torn_write"`` (the caller truncates its write mid-record),
``"enospc"`` (``OSError(ENOSPC)`` raised at the write site), ``"kill"``
(``SIGKILL`` the *current* process at exactly this disk op — parent or
worker, simulating power loss) and ``"delay"`` become available at
byte-level-deterministic positions.  Disk faults fire in whichever
process performs the write — for the journal that is the parent, which
is exactly the process whose death mid-write the resume contract must
survive (tests/test_journal.py).
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "KILL_EXIT_CODE",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "install_faults",
    "clear_faults",
    "active_plan",
    "injected_faults",
    "fire_pre_faults",
    "fire_thread_faults",
    "apply_corruption",
    "fire_disk_faults",
    "WorkerThreadKilled",
]

#: Exit status used by ``kill`` faults — distinctive in core dumps/logs.
KILL_EXIT_CODE = 113

_KINDS = ("kill", "delay", "raise", "corrupt", "torn_write", "enospc")

#: Kinds that only make sense at a disk-layer operation point.
_DISK_ONLY_KINDS = ("torn_write", "enospc")


class InjectedFault(RuntimeError):
    """The exception thrown by a ``raise`` fault.

    Deliberately *not* a :class:`repro.errors.ReproError`: it stands in
    for an arbitrary bug inside a worker task, which the supervisor
    must survive without knowing its type.
    """


class WorkerThreadKilled(BaseException):
    """A ``kill`` fault fired inside a worker *thread*.

    Threads share the supervisor's address space, so the process-pool
    semantics of ``kill`` (``os._exit``) would take the whole run down.
    Instead :func:`fire_thread_faults` raises this, and the threaded
    supervisor treats it exactly like a dead worker: the thread exits
    its loop, the task is charged to the pool-failure budget, and a
    replacement thread is spawned.  Derived from :class:`BaseException`
    so that task bodies catching ``Exception`` cannot swallow it —
    mirroring how no amount of ``except`` saves a process from
    ``SIGKILL``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *which* task fails, *when*, and *how*.

    Attributes
    ----------
    kind:
        ``"kill"`` (``os._exit`` — simulates segfault/OOM kill),
        ``"delay"`` (sleep ``seconds`` before running — triggers the
        per-task timeout), ``"raise"`` (throw :class:`InjectedFault`)
        or ``"corrupt"`` (replace the result with ``replacement``).
    task:
        Task index (position in the ``payloads`` sequence handed to
        ``supervised_map``).
    attempts:
        Attempt numbers the fault fires on (0 = first try).  The
        default ``(0,)`` makes retries succeed; ``range(99)`` makes a
        task fail persistently enough to exhaust any retry budget.
    seconds:
        Sleep duration for ``delay`` faults.
    replacement:
        Result substituted by ``corrupt`` faults (must survive the
        result pipe, i.e. be picklable).
    message:
        Exception text for ``raise`` faults.
    target:
        Empty for worker faults (the default).  A non-empty target
        names a disk-layer operation point (``"journal.payload"``,
        ``"journal.append"``, ``"journal.committed"``,
        ``"cache.disk"``) and turns ``task`` into the 0-based index of
        the write operations performed on that target; such specs are
        consulted by :func:`fire_disk_faults` instead of the worker
        hooks.  The ``torn_write``/``enospc`` kinds require a target.
    """

    kind: str
    task: int
    attempts: Tuple[int, ...] = (0,)
    seconds: float = 0.0
    replacement: Any = None
    message: str = "injected fault"
    target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.task < 0:
            raise ValueError(f"task index must be >= 0, got {self.task}")
        if self.kind in _DISK_ONLY_KINDS and not self.target:
            raise ValueError(
                f"{self.kind!r} faults are disk faults and need a "
                f"target (e.g. 'journal.append')"
            )
        # tolerate any iterable of ints for convenience
        object.__setattr__(self, "attempts", tuple(self.attempts))

    def matches(self, task: int, attempt: int) -> bool:
        return task == self.task and attempt in self.attempts


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)

    def find(
        self,
        task: int,
        attempt: int,
        *,
        kinds: Sequence[str] = _KINDS,
        target: str = "",
    ) -> Optional[FaultSpec]:
        """First spec matching (task, attempt) among ``kinds``.

        ``target`` selects the fault family: ``""`` (worker faults)
        never matches disk specs and vice versa, so one plan can mix
        both without cross-firing.
        """
        for spec in self.specs:
            if (
                spec.kind in kinds
                and spec.target == target
                and spec.matches(task, attempt)
            ):
                return spec
        return None

    def __len__(self) -> int:
        return len(self.specs)


# The active plan. Installed in the parent before workers fork, so the
# children see it without any pickling; cleared with clear_faults().
_PLAN: Optional[FaultPlan] = None

# Per-target counters of disk-layer operations performed so far; reset
# whenever a plan is (un)installed so successive tests are independent.
_DISK_OPS: Dict[str, int] = {}


def install_faults(plan: FaultPlan) -> None:
    """Activate ``plan`` for subsequently forked workers."""
    global _PLAN
    _PLAN = plan
    _DISK_OPS.clear()


def clear_faults() -> None:
    """Deactivate fault injection (idempotent)."""
    global _PLAN
    _PLAN = None
    _DISK_OPS.clear()


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _PLAN


@contextmanager
def injected_faults(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Scope a fault plan to a ``with`` block (always cleared)."""
    plan = FaultPlan(specs)
    install_faults(plan)
    try:
        yield plan
    finally:
        clear_faults()


def fire_pre_faults(task: int, attempt: int) -> None:
    """Worker-side hook run before the task body.

    ``kill`` exits the process immediately (bypassing ``finally``
    blocks and atexit handlers, like a real segfault); ``delay``
    sleeps; ``raise`` throws :class:`InjectedFault`.
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan.find(task, attempt, kinds=("kill", "delay", "raise"))
    if spec is None:
        return
    if spec.kind == "kill":
        os._exit(KILL_EXIT_CODE)
    elif spec.kind == "delay":
        time.sleep(spec.seconds)
    else:  # raise
        raise InjectedFault(f"{spec.message} (task {task}, "
                            f"attempt {attempt})")


def fire_thread_faults(task: int, attempt: int) -> None:
    """Thread-worker hook run before the task body.

    The threaded backend's analogue of :func:`fire_pre_faults`:
    ``delay`` and ``raise`` behave identically, while ``kill`` raises
    :class:`WorkerThreadKilled` (the thread dies; the process — which
    hosts the supervisor — survives, as it must).
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan.find(task, attempt, kinds=("kill", "delay", "raise"))
    if spec is None:
        return
    if spec.kind == "kill":
        raise WorkerThreadKilled(
            f"injected thread kill (task {task}, attempt {attempt})"
        )
    elif spec.kind == "delay":
        time.sleep(spec.seconds)
    else:  # raise
        raise InjectedFault(f"{spec.message} (task {task}, "
                            f"attempt {attempt})")


def apply_corruption(task: int, attempt: int, result: Any) -> Any:
    """Worker-side hook run on the task result before it is returned."""
    plan = _PLAN
    if plan is None:
        return result
    spec = plan.find(task, attempt, kinds=("corrupt",))
    if spec is None:
        return result
    return spec.replacement


def fire_disk_faults(target: str) -> Optional[FaultSpec]:
    """Disk-layer hook: consult the plan at one write-operation point.

    Called by the journal writer and the cache disk layer once per
    write on ``target``; the call itself advances the target's
    operation counter, making fault positions byte-level deterministic.

    ``kill`` delivers ``SIGKILL`` to the current process (no ``atexit``
    / ``finally`` runs — power-loss semantics at exactly this write);
    ``delay`` sleeps (so a test can park a run at a known durable
    point); ``enospc`` raises ``OSError(ENOSPC)`` as the filesystem
    would.  ``torn_write`` is *returned* to the caller, which must cut
    its write short — only the writer knows its record framing.
    Returns the matched spec (``torn_write``) or ``None``.
    """
    plan = _PLAN
    if plan is None:
        return None
    op = _DISK_OPS.get(target, 0)
    _DISK_OPS[target] = op + 1
    spec = plan.find(op, 0, target=target)
    if spec is None:
        return None
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "delay":
        time.sleep(spec.seconds)
        return None
    elif spec.kind == "enospc":
        raise OSError(
            errno.ENOSPC, f"injected ENOSPC ({target} op {op})"
        )
    return spec
