"""Benchmark harness regenerating the paper's evaluation section.

Every table and figure of §5 has an experiment here (see DESIGN.md §4
for the index):

* Tables 1–4: :func:`repro.bench.experiments.table1` … ``table4``;
* Figures 6–10: ``fig6`` … ``fig10``;
* Ablations (ours): ``ablation_threshold``, ``ablation_features``.

Each experiment returns an :class:`~repro.bench.runner.ExperimentResult`
with headers/rows mirroring the paper's layout, renderable with
:func:`repro.bench.report.render_table`. The ``benchmarks/`` directory
wires them into pytest-benchmark; the CLI (``repro-bc bench``) runs
them standalone.

Workload size scales with the ``REPRO_SCALE`` environment variable
(default 1.0) and can be restricted with ``REPRO_GRAPHS`` (comma-
separated Table-1 names).
"""

from repro.bench.registry import EXPERIMENTS, get_experiment, experiment_ids
from repro.bench.runner import ExperimentResult, MeasuredRun, time_algorithm
from repro.bench.persistence import diff_results, load_results, save_results
from repro.bench.report import render_table, render_bars, render_lines
from repro.bench.workloads import (
    bench_scale,
    bench_graph_names,
    get_graph,
    get_suite,
    scaling_graph,
)

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "experiment_ids",
    "ExperimentResult",
    "MeasuredRun",
    "time_algorithm",
    "render_table",
    "render_bars",
    "render_lines",
    "save_results",
    "load_results",
    "diff_results",
    "bench_scale",
    "bench_graph_names",
    "get_graph",
    "get_suite",
    "scaling_graph",
]
