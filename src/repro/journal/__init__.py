"""Crash-safe run journal: checkpoint/resume for long BC runs.

See :mod:`repro.journal.journal` for the engine and
docs/ROBUSTNESS.md for the crash-recovery matrix.
"""

from repro.journal.format import (
    RECORD_MAGIC,
    decode_line,
    encode_record,
    payload_digest,
    scan_log,
)
from repro.journal.journal import (
    JOURNAL_VERSION,
    ResumedContribution,
    RunJournal,
    run_fingerprint,
)

__all__ = [
    "JOURNAL_VERSION",
    "RECORD_MAGIC",
    "ResumedContribution",
    "RunJournal",
    "decode_line",
    "encode_record",
    "payload_digest",
    "run_fingerprint",
    "scan_log",
]
