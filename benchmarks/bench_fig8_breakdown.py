"""Figure 8 — execution-time breakdown of APGRE.

Benchmarks the instrumented APGRE run per graph and emits the phase
shares (partition / α-β / top-sub-graph BC / other sub-graphs BC).
Paper shape: the extra computations (partition + α/β) stay a minority
of the run, and the top sub-graph dominates the BC phase.
"""

import pytest

from repro.bench.experiments import fig8
from repro.bench.workloads import bench_graph_names, get_graph
from repro.core.apgre import apgre_bc_detailed

from conftest import one_shot


@pytest.mark.parametrize("name", bench_graph_names())
def test_apgre_detailed(benchmark, name):
    graph = get_graph(name)
    result = one_shot(benchmark, apgre_bc_detailed, graph)
    assert result.stats.timings.total > 0
    fr = result.stats.timings.fractions()
    benchmark.extra_info["extra_share"] = round(
        fr["partition"] + fr["alpha_beta"], 4
    )


def test_report_fig8(benchmark, report):
    result = one_shot(benchmark, fig8)
    # the BC phase (top + rest) dominates on at least half the graphs
    # (at small REPRO_SCALE the directed graphs' per-articulation-point
    # blocked BFS is relatively more expensive than at paper scale, so
    # the bound is looser than the paper's ~25% extra-share ceiling)
    dominated = 0
    for row in result.rows:
        extra = float(row[5].rstrip("%"))
        if extra < 50.0:
            dominated += 1
    assert dominated >= len(result.rows) // 2
    report(result)
