"""Conversions between :class:`CSRGraph` and external representations.

networkx and scipy are *optional* runtime dependencies of this module:
they are imported lazily so the core library keeps its numpy-only
footprint (both are available in the test environment, where these
conversions back the correctness oracles).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx
    import scipy.sparse

__all__ = ["to_networkx", "to_scipy_sparse", "to_edge_array", "from_scipy_sparse"]


def to_networkx(graph: CSRGraph) -> "networkx.Graph":
    """Convert to ``networkx.Graph`` / ``networkx.DiGraph``.

    Every vertex is added as a node (isolated vertices included) so the
    conversion round-trips through :func:`repro.graph.build.from_networkx`.
    """
    import networkx as nx

    nxg = nx.DiGraph() if graph.directed else nx.Graph()
    nxg.add_nodes_from(range(graph.n))
    nxg.add_edges_from(graph.iter_edges())
    return nxg


def to_scipy_sparse(graph: CSRGraph) -> "scipy.sparse.csr_matrix":
    """The adjacency matrix as a ``scipy.sparse.csr_matrix`` of int8.

    Undirected graphs yield a symmetric matrix (both orientations are
    stored in the CSR already).
    """
    from scipy.sparse import csr_matrix

    data = np.ones(graph.num_arcs, dtype=np.int8)
    return csr_matrix(
        (data, graph.out_indices, graph.out_indptr), shape=(graph.n, graph.n)
    )


def from_scipy_sparse(matrix, *, directed: bool = True) -> CSRGraph:
    """Build a graph from any scipy sparse matrix.

    Nonzero ``(i, j)`` entries become arcs ``i -> j``; values are
    ignored (this package handles unweighted graphs, like the paper).
    """
    coo = matrix.tocoo()
    n = max(coo.shape)
    return CSRGraph.from_arcs(n, coo.row, coo.col, directed=directed)


def to_edge_array(graph: CSRGraph) -> np.ndarray:
    """An ``(m, 2)`` int array of arcs (one row per unordered edge for
    undirected graphs)."""
    src, dst = graph.arcs()
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
    return np.stack([src, dst], axis=1).astype(np.int64)
