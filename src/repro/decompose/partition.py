"""Graph partitioning by articulation points (paper Algorithm 1).

``GraphPartition`` walks the block-cut tree depth-first starting from
the *top* biconnected component (the one with the most edges), merging
small neighbouring components so sub-graphs have useful granularity:

* a component smaller than ``threshold`` vertices whose DFS parent is
  not the top component is merged into its parent;
* a two-vertex component (single edge — every bridge and pendant edge)
  hanging directly off the top component is merged into the top;
* everything else becomes its own sub-graph.

The paper runs this DFS only from the giant component's top BCC and
sweeps every remaining component into one leftover sub-graph
(Algorithm 1 lines 26–32). This implementation instead repeats the
top-BCC walk *per connected component* — identical on the connected
benchmark graphs, strictly better (more eliminated redundancy) on
disconnected ones — and keeps the leftover sub-graph only for
isolated vertices. The deviation is recorded in DESIGN.md.

After the block walk the partitioner derives, per sub-graph:

* the boundary articulation set ``A_sgi`` (articulation points shared
  with at least one other sub-graph);
* the root set ``R_sgi`` and pendant multiplicities ``γ_sgi`` — a
  vertex with no incoming edges and a single outgoing edge (directed),
  or degree one (undirected), that is not a boundary articulation
  point is removed from the root set and its neighbour's γ is bumped
  ("BUILDSUBGRAPH() will set γ_SGi[] and R_SGi[]", §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.decompose.articulation import biconnected_components
from repro.decompose.bcc_tree import BlockCutTree, build_block_cut_tree
from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_undirected
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = ["Subgraph", "Partition", "graph_partition", "DEFAULT_THRESHOLD"]

#: Default Algorithm-1 merge threshold (the paper leaves THRESHOLD
#: unspecified; 8 keeps satellite communities intact while folding
#: trivial bridge chains — see the threshold ablation benchmark).
DEFAULT_THRESHOLD = 8


@dataclass
class Subgraph:
    """One sub-graph of the decomposition, in local coordinates.

    Local vertex ``i`` corresponds to global vertex ``vertices[i]``;
    all other arrays are indexed by local id.

    Attributes
    ----------
    index:
        Position within :attr:`Partition.subgraphs`.
    graph:
        The sub-graph's own CSR (directed iff the parent graph is).
        Contains exactly the edges of its merged biconnected
        components — *not* the induced edge set (an edge between two
        boundary articulation points may belong to another sub-graph).
    vertices:
        Sorted global ids of the sub-graph's vertices.
    is_boundary_art:
        Mask of boundary articulation points (the paper's ``A_sgi``).
    roots:
        Local ids of the root set ``R_sgi`` (sources to run BFS from).
    gamma:
        ``γ_sgi[v]``: number of removed pendant sources whose
        dependency is derived from ``v``'s DAG.
    removed:
        Local ids of the removed pendant sources (for the redundancy
        metrics; they stay in :attr:`graph` as ordinary vertices).
    alpha, beta:
        ``α_sgi``/``β_sgi`` per local vertex (zero for non-boundary
        vertices), filled in by
        :func:`repro.decompose.alphabeta.compute_alpha_beta`.
    """

    index: int
    graph: CSRGraph
    vertices: np.ndarray
    is_boundary_art: np.ndarray
    roots: np.ndarray
    gamma: np.ndarray
    removed: np.ndarray
    alpha: np.ndarray = field(default_factory=lambda: np.zeros(0))
    beta: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def num_vertices(self) -> int:
        return self.graph.n

    @property
    def num_arcs(self) -> int:
        return self.graph.num_arcs

    def boundary_arts(self) -> np.ndarray:
        """Local ids of the boundary articulation points."""
        return np.flatnonzero(self.is_boundary_art).astype(VERTEX_DTYPE)


@dataclass
class Partition:
    """Result of :func:`graph_partition`.

    ``subgraphs`` is ordered by descending arc count, so
    ``subgraphs[0]`` is the paper's *top sub-graph* (Table 4). The
    leftover isolated-vertex sub-graph, when present, sorts last.
    """

    graph: CSRGraph
    subgraphs: List[Subgraph]
    articulation_flags: np.ndarray
    boundary_art_flags: np.ndarray
    threshold: int

    @property
    def num_subgraphs(self) -> int:
        return len(self.subgraphs)

    @property
    def top(self) -> Subgraph:
        if not self.subgraphs:
            raise PartitionError("partition of an empty graph has no top")
        return self.subgraphs[0]

    def membership_counts(self) -> np.ndarray:
        """How many sub-graphs contain each global vertex."""
        counts = np.zeros(self.graph.n, dtype=np.int64)
        for sg in self.subgraphs:
            counts[sg.vertices] += 1
        return counts

    def validate(self) -> None:
        """Check partition invariants; raises :class:`PartitionError`.

        * every vertex belongs to >= 1 sub-graph;
        * only boundary articulation points belong to > 1;
        * arc counts over sub-graphs sum to the graph's arc count.
        """
        counts = self.membership_counts()
        if (counts < 1).any():
            missing = np.flatnonzero(counts < 1)[:5]
            raise PartitionError(f"vertices missing from partition: {missing}")
        multi = counts > 1
        if (multi & ~self.boundary_art_flags).any():
            bad = np.flatnonzero(multi & ~self.boundary_art_flags)[:5]
            raise PartitionError(
                f"non-boundary vertices duplicated across sub-graphs: {bad}"
            )
        arcs = sum(sg.num_arcs for sg in self.subgraphs)
        if arcs != self.graph.num_arcs:
            raise PartitionError(
                f"sub-graph arcs sum to {arcs}, graph has {self.graph.num_arcs}"
            )


def _directed_arcs_for_pairs(
    graph: CSRGraph, pairs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Recover the original directed arcs for undirected edge pairs.

    The block decomposition runs on the undirected shadow; each shadow
    edge ``{u, v}`` corresponds to ``u->v``, ``v->u`` or both in the
    directed input. Membership is tested with one vectorised
    ``isin`` over linearised arc keys.
    """
    src, dst = graph.arcs()
    keys = src.astype(np.int64) * graph.n + dst.astype(np.int64)
    keys.sort()
    u = pairs[:, 0].astype(np.int64)
    v = pairs[:, 1].astype(np.int64)
    fwd = np.searchsorted(keys, u * graph.n + v)
    fwd_ok = (fwd < keys.size) & (keys[np.minimum(fwd, keys.size - 1)] == u * graph.n + v)
    bwd = np.searchsorted(keys, v * graph.n + u)
    bwd_ok = (bwd < keys.size) & (keys[np.minimum(bwd, keys.size - 1)] == v * graph.n + u)
    out_src = np.concatenate([u[fwd_ok], v[bwd_ok]])
    out_dst = np.concatenate([v[fwd_ok], u[bwd_ok]])
    return out_src, out_dst


def _build_subgraph(
    index: int,
    graph: CSRGraph,
    edge_arrays: List[np.ndarray],
    extra_vertices: Optional[np.ndarray] = None,
) -> Subgraph:
    """Materialise one sub-graph from its undirected edge arrays.

    Boundary/root/γ fields are placeholders; they are resolved by
    :func:`graph_partition` once global boundary information exists.
    """
    if edge_arrays:
        pairs = np.concatenate(edge_arrays, axis=0)
        verts = np.unique(pairs.ravel())
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
        verts = np.empty(0, dtype=np.int64)
    if extra_vertices is not None and extra_vertices.size:
        verts = np.unique(np.concatenate([verts, extra_vertices]))
    local = np.full(graph.n, -1, dtype=np.int64)
    local[verts] = np.arange(verts.size)
    if graph.directed:
        gsrc, gdst = _directed_arcs_for_pairs(graph, pairs)
    else:
        gsrc, gdst = pairs[:, 0], pairs[:, 1]
    sub = CSRGraph.from_arcs(
        verts.size, local[gsrc], local[gdst], directed=graph.directed
    )
    n_local = verts.size
    return Subgraph(
        index=index,
        graph=sub,
        vertices=verts.astype(VERTEX_DTYPE),
        is_boundary_art=np.zeros(n_local, dtype=bool),
        roots=np.arange(n_local, dtype=VERTEX_DTYPE),
        gamma=np.zeros(n_local, dtype=SCORE_DTYPE),
        removed=np.empty(0, dtype=VERTEX_DTYPE),
        alpha=np.zeros(n_local, dtype=SCORE_DTYPE),
        beta=np.zeros(n_local, dtype=SCORE_DTYPE),
    )


def _resolve_roots_and_gamma(sg: Subgraph) -> None:
    """Fill ``roots``/``gamma``/``removed`` (the paper's R/γ).

    Directed: removable sources have no in-arcs and exactly one
    out-arc; undirected: degree-one leaves. Boundary articulation
    points are never removed ("As u is not an articulation point",
    proof of Theorem 3).
    """
    g = sg.graph
    if g.directed:
        removable = (
            (g.in_degrees() == 0)
            & (g.out_degrees() == 1)
            & ~sg.is_boundary_art
        )
    else:
        removable = (g.out_degrees() == 1) & ~sg.is_boundary_art
    removed = np.flatnonzero(removable).astype(VERTEX_DTYPE)
    gamma = np.zeros(g.n, dtype=SCORE_DTYPE)
    if removed.size:
        targets = g.out_indices[g.out_indptr[removed]]
        np.add.at(gamma, targets, 1.0)
    sg.roots = np.flatnonzero(~removable).astype(VERTEX_DTYPE)
    sg.gamma = gamma
    sg.removed = removed


def graph_partition(
    graph: CSRGraph, *, threshold: int = DEFAULT_THRESHOLD
) -> Partition:
    """Decompose ``graph`` into articulation-point-separated sub-graphs.

    This is the paper's Algorithm 1 (see the module docstring for the
    one documented deviation on disconnected inputs).

    Parameters
    ----------
    graph:
        Directed or undirected input.
    threshold:
        Small-component merge threshold (vertices). ``threshold <= 2``
        disables all merging except the mandatory single-edge rule.
    """
    if threshold < 0:
        raise PartitionError(f"threshold must be >= 0, got {threshold}")
    und = to_undirected(graph)
    bcc = biconnected_components(und)
    tree = build_block_cut_tree(bcc)
    num_blocks = tree.num_blocks

    block_edge_counts = np.asarray(
        [edges.shape[0] for edges in bcc.component_edges], dtype=np.int64
    )

    # group state: edge-array list + vertex set per *live* group root
    group_edges: Dict[int, List[np.ndarray]] = {
        c: [bcc.component_edges[c]] for c in range(num_blocks)
    }
    group_verts: Dict[int, Set[int]] = {
        c: set(bcc.component_vertices[c].tolist()) for c in range(num_blocks)
    }

    visited = np.zeros(num_blocks, dtype=bool)
    finalized: List[int] = []

    # --- forest discovery: connected groups of blocks ---
    forests: List[List[int]] = []
    seen = np.zeros(num_blocks, dtype=bool)
    for c0 in range(num_blocks):
        if seen[c0]:
            continue
        comp = [c0]
        seen[c0] = True
        queue = [c0]
        while queue:
            c = queue.pop()
            for nb in tree.block_neighbors(c):
                if not seen[nb]:
                    seen[nb] = True
                    comp.append(nb)
                    queue.append(nb)
        forests.append(comp)

    # --- Algorithm 1 DFS per forest, rooted at its top BCC ---
    for forest in forests:
        top = forest[int(np.argmax(block_edge_counts[forest]))]
        visited[top] = True
        stack = [top]
        cursors = {top: iter(tree.block_neighbors(top))}
        while stack:
            curr = stack[-1]
            advanced = False
            for nb in cursors[curr]:
                if not visited[nb]:
                    visited[nb] = True
                    stack.append(nb)
                    cursors[nb] = iter(tree.block_neighbors(nb))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            if not stack:
                finalized.append(curr)  # the top block itself
                continue
            prev = stack[-1]
            size = len(group_verts[curr])
            if prev != top and size < threshold:
                group_edges[prev].extend(group_edges.pop(curr))
                group_verts[prev].update(group_verts.pop(curr))
            elif prev == top and size <= 2:
                group_edges[prev].extend(group_edges.pop(curr))
                group_verts[prev].update(group_verts.pop(curr))
            else:
                finalized.append(curr)

    # --- materialise sub-graphs ---
    subgraphs: List[Subgraph] = []
    for gid in finalized:
        subgraphs.append(
            _build_subgraph(len(subgraphs), graph, group_edges[gid])
        )
    if bcc.isolated_vertices.size:
        subgraphs.append(
            _build_subgraph(
                len(subgraphs), graph, [], extra_vertices=bcc.isolated_vertices
            )
        )

    # --- boundary articulation points: shared by >= 2 sub-graphs ---
    membership = np.zeros(graph.n, dtype=np.int64)
    for sg in subgraphs:
        membership[sg.vertices] += 1
    boundary = (membership >= 2) & bcc.articulation_flags
    for sg in subgraphs:
        sg.is_boundary_art = boundary[sg.vertices]
        _resolve_roots_and_gamma(sg)

    # top sub-graph first (Table 4 ordering: by edge count)
    subgraphs.sort(key=lambda s: (-s.num_arcs, -s.num_vertices))
    for i, sg in enumerate(subgraphs):
        sg.index = i

    return Partition(
        graph=graph,
        subgraphs=subgraphs,
        articulation_flags=bcc.articulation_flags,
        boundary_art_flags=boundary,
        threshold=threshold,
    )
