"""Ablation A1 — Algorithm-1 merge-threshold sweep.

The paper leaves THRESHOLD unspecified; this sweep shows the
granularity trade-off: tiny thresholds produce many micro sub-graphs
(more boundary articulation points, more α/β work), huge thresholds
fold satellite structure into fewer/larger sub-graphs.
"""

import pytest

from repro.bench.experiments import ablation_threshold
from repro.bench.workloads import scaling_graph
from repro.decompose.partition import graph_partition

from conftest import one_shot


@pytest.mark.parametrize("threshold", [2, 8, 32])
def test_partition_threshold(benchmark, threshold):
    _name, graph = scaling_graph()
    partition = one_shot(
        benchmark, graph_partition, graph, threshold=threshold
    )
    partition.validate()
    benchmark.extra_info["num_subgraphs"] = partition.num_subgraphs


def test_report_ablation_threshold(benchmark, report):
    result = one_shot(benchmark, ablation_threshold)
    # sub-graph count decreases (weakly) as the threshold grows
    counts = [row[1] for row in result.rows]
    assert all(b <= a for a, b in zip(counts, counts[1:]))
    report(result)
