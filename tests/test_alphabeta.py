"""Tests for α/β counting (blocked BFS and block-cut-tree DP)."""

import numpy as np
import networkx as nx
import pytest

from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import PartitionError
from repro.graph.build import from_edges, from_networkx


def brute_alpha_beta(g, nxg, partition):
    """Direct-definition α/β via networkx reachability."""
    out = {}
    for sg in partition.subgraphs:
        sg_verts = set(sg.vertices.tolist())
        for a_local in sg.boundary_arts().tolist():
            a = int(sg.vertices[a_local])
            allowed = [v for v in range(g.n) if v not in sg_verts or v == a]
            sub = nxg.subgraph(allowed)
            if nxg.is_directed():
                alpha = len(nx.descendants(sub, a))
                beta = len(nx.ancestors(sub, a))
            else:
                comp = nx.node_connected_component(sub, a)
                alpha = beta = len(comp) - 1
            out[(sg.index, a)] = (alpha, beta)
    return out


@pytest.mark.parametrize("method", ["bfs", "tree"])
def test_matches_brute_force_undirected(method):
    for seed in range(6):
        nxg = nx.gnm_random_graph(35, 45, seed=seed)
        g = from_networkx(nxg, n=35)
        partition = graph_partition(g)
        compute_alpha_beta(g, partition, method=method)
        expected = brute_alpha_beta(g, nxg, partition)
        for sg in partition.subgraphs:
            for a_local in sg.boundary_arts().tolist():
                a = int(sg.vertices[a_local])
                alpha, beta = expected[(sg.index, a)]
                assert sg.alpha[a_local] == alpha, (seed, a, method)
                assert sg.beta[a_local] == beta, (seed, a, method)


def test_matches_brute_force_directed():
    for seed in range(6):
        nxg = nx.gnm_random_graph(30, 45, seed=seed, directed=True)
        # add pendant sources to create asymmetric alpha/beta
        rng = np.random.default_rng(seed)
        for i in range(6):
            nxg.add_edge(30 + i, int(rng.integers(0, 30)))
        g = from_networkx(nxg, n=36)
        partition = graph_partition(g)
        compute_alpha_beta(g, partition, method="bfs")
        expected = brute_alpha_beta(g, nxg, partition)
        for sg in partition.subgraphs:
            for a_local in sg.boundary_arts().tolist():
                a = int(sg.vertices[a_local])
                alpha, beta = expected[(sg.index, a)]
                assert sg.alpha[a_local] == alpha, (seed, a)
                assert sg.beta[a_local] == beta, (seed, a)


def test_tree_equals_bfs_on_undirected(zoo_entry):
    _name, g, _nxg = zoo_entry
    if g.directed:
        return
    p1 = graph_partition(g)
    p2 = graph_partition(g)
    compute_alpha_beta(g, p1, method="bfs")
    compute_alpha_beta(g, p2, method="tree")
    for sg1, sg2 in zip(p1.subgraphs, p2.subgraphs):
        assert np.array_equal(sg1.alpha, sg2.alpha)
        assert np.array_equal(sg1.beta, sg2.beta)


def test_tree_rejects_directed():
    g = from_edges([(0, 1), (1, 2)], directed=True)
    partition = graph_partition(g)
    with pytest.raises(PartitionError, match="undirected"):
        compute_alpha_beta(g, partition, method="tree")


def test_auto_dispatch():
    g_und = from_edges([(0, 1), (1, 2)])
    stats = compute_alpha_beta(g_und, graph_partition(g_und), method="auto")
    assert stats.method == "tree"
    g_dir = from_edges([(0, 1), (1, 2)], directed=True)
    stats = compute_alpha_beta(g_dir, graph_partition(g_dir), method="auto")
    assert stats.method == "bfs"


def test_unknown_method():
    g = from_edges([(0, 1)])
    with pytest.raises(PartitionError, match="unknown"):
        compute_alpha_beta(g, graph_partition(g), method="nope")


def test_undirected_alpha_equals_beta(und_random):
    partition = graph_partition(und_random)
    compute_alpha_beta(und_random, partition, method="bfs")
    for sg in partition.subgraphs:
        assert np.array_equal(sg.alpha, sg.beta)


def test_alpha_sums_on_path():
    # path 0-1-2-3-4: whatever contiguous chunks the partitioner
    # produces, for a boundary articulation point a of a chunk
    # [lo..hi], alpha counts the vertices strictly beyond a on its
    # outward side: a vertices to the left of lo, or 4 - a to the
    # right of hi
    g = from_edges([(i, i + 1) for i in range(4)])
    partition = graph_partition(g, threshold=0)
    compute_alpha_beta(g, partition)
    checked = 0
    for sg in partition.subgraphs:
        verts = sorted(sg.vertices.tolist())
        lo, hi = verts[0], verts[-1]
        assert verts == list(range(lo, hi + 1))  # chunks are contiguous
        for a_local in sg.boundary_arts().tolist():
            a = int(sg.vertices[a_local])
            away = a if a == lo else 4 - a
            assert sg.alpha[a_local] == away
            checked += 1
    assert checked >= 2


def test_nonzero_only_on_boundary(und_random):
    partition = graph_partition(und_random)
    compute_alpha_beta(und_random, partition)
    for sg in partition.subgraphs:
        off_boundary = ~sg.is_boundary_art
        assert (sg.alpha[off_boundary] == 0).all()
        assert (sg.beta[off_boundary] == 0).all()


def test_stats_pairs_count(und_random):
    partition = graph_partition(und_random)
    stats = compute_alpha_beta(und_random, partition)
    expected = sum(sg.boundary_arts().size for sg in partition.subgraphs)
    assert stats.pairs == expected
