"""Watts–Strogatz small-world graphs.

Used by the test zoo: rewired ring lattices have essentially no
articulation points at moderate ``k`` (a useful adversarial case for
APGRE — the decomposition degenerates to a single sub-graph and the
algorithm must gracefully match plain Brandes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import Seed, as_rng

__all__ = ["watts_strogatz_graph"]


def watts_strogatz_graph(
    n: int, k: int, p: float, *, seed: Seed = None
) -> CSRGraph:
    """Ring lattice over ``n`` vertices, each joined to its ``k``
    nearest neighbours, with each edge rewired with probability ``p``.

    ``k`` must be even and less than ``n``. Always undirected (the
    model is defined that way).
    """
    if k % 2 != 0:
        raise GraphValidationError(f"k must be even, got {k}")
    if n <= k:
        raise GraphValidationError(f"need n > k, got n={n} k={k}")
    if not 0.0 <= p <= 1.0:
        raise GraphValidationError(f"p must be in [0, 1], got {p}")
    rng = as_rng(seed)
    base = np.arange(n, dtype=np.int64)
    src_parts = []
    dst_parts = []
    for hop in range(1, k // 2 + 1):
        src_parts.append(base)
        dst_parts.append((base + hop) % n)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    # rewire: each lattice edge keeps its src, targets get resampled
    rewire = rng.random(src.size) < p
    if rewire.any():
        new_targets = rng.integers(0, n, size=int(rewire.sum()))
        dst = dst.copy()
        dst[rewire] = new_targets
        keep = src != dst  # drop accidental self-loops from rewiring
        src, dst = src[keep], dst[keep]
    return CSRGraph.from_arcs(n, src, dst, directed=False)
