"""Stdlib client for the serving daemon (TCP or unix socket).

:class:`ServeClient` is what ``repro-bc query``, the serving tests and
``benchmarks/bench_serving.py`` all speak through — one tiny wrapper
over :mod:`http.client` so the protocol has exactly one encoding of
query parameters (bools as ``1``/``0``, everything else ``str()``-ed)
on both sides of the wire.

Each call opens a fresh connection (the daemon answers
``Connection: close`` anyway), which also makes the client trivially
thread-safe — the consistency tests hammer one client instance from
many reader threads.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional, Tuple
from urllib.parse import quote, urlencode

from repro.errors import ServeError

__all__ = ["ServeClient"]


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float]) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


def _encode_params(params: Dict) -> str:
    """Query-string encoding shared by every endpoint helper."""
    pairs = []
    for key, value in params.items():
        if value is None:
            continue
        if isinstance(value, bool):
            pairs.append((key, "1" if value else "0"))
        else:
            pairs.append((key, str(value)))
    return urlencode(pairs)


class ServeClient:
    """Talk to one daemon at a TCP ``(host, port)`` or unix socket."""

    def __init__(
        self,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_socket: Optional[str] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if unix_socket is not None:
            if host is not None or port is not None:
                raise ServeError(
                    "pass either host/port or unix_socket, not both"
                )
        elif host is None or port is None:
            raise ServeError(
                "ServeClient needs host and port, or a unix_socket path"
            )
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout

    @property
    def address(self) -> str:
        if self.unix_socket is not None:
            return f"unix:{self.unix_socket}"
        return f"http://{self.host}:{self.port}"

    def _connection(self) -> http.client.HTTPConnection:
        if self.unix_socket is not None:
            return _UnixHTTPConnection(self.unix_socket, self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[bytes] = None,
        content_type: Optional[str] = None,
    ) -> Dict:
        """One round trip; JSON-decodes; raises ServeError on >= 400."""
        conn = self._connection()
        try:
            headers = {}
            if content_type is not None:
                headers["Content-Type"] = content_type
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                status = response.status
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"request to {self.address}{path} failed: {exc}",
                    http_status=503,
                ) from exc
        finally:
            conn.close()
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"non-JSON response ({status}) from "
                f"{self.address}{path}: {exc}",
                http_status=502,
            ) from exc
        if status >= 400:
            raise ServeError(
                str(payload.get("error", f"HTTP {status}")),
                http_status=status,
            )
        return payload

    # ------------------------------------------------------------------
    # endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict:
        return self.request("GET", "/stats")

    def bc(self, **params) -> Dict:
        """``GET /bc`` — kwargs become query parameters verbatim."""
        qs = _encode_params(params)
        return self.request("GET", f"/bc?{qs}" if qs else "/bc")

    def vertex(self, vertex: int, **params) -> Dict:
        qs = _encode_params(params)
        path = f"/vertex/{quote(str(int(vertex)))}"
        return self.request("GET", f"{path}?{qs}" if qs else path)

    def delta(
        self,
        *,
        text: Optional[str] = None,
        add: Optional[Tuple] = None,
        remove: Optional[Tuple] = None,
    ) -> Dict:
        """``POST /delta`` as delta-file text or a JSON add/remove pair."""
        if text is not None:
            if add is not None or remove is not None:
                raise ServeError(
                    "pass either text or add/remove lists, not both"
                )
            return self.request(
                "POST",
                "/delta",
                body=text.encode("utf-8"),
                content_type="text/plain",
            )
        payload = {
            "add": [[int(u), int(v)] for u, v in (add or [])],
            "remove": [[int(u), int(v)] for u, v in (remove or [])],
        }
        return self.request(
            "POST",
            "/delta",
            body=json.dumps(payload).encode("utf-8"),
            content_type="application/json",
        )
