"""Configuration for the APGRE driver."""

from __future__ import annotations

from dataclasses import dataclass

from repro.decompose.partition import DEFAULT_THRESHOLD
from repro.errors import AlgorithmError

__all__ = ["APGREConfig"]

_PARALLEL_MODES = ("serial", "processes", "threads")
_AB_METHODS = ("auto", "bfs", "tree")


@dataclass(frozen=True)
class APGREConfig:
    """Options controlling an APGRE run.

    Attributes
    ----------
    threshold:
        Algorithm-1 small-BCC merge threshold (vertices). Swept by the
        threshold ablation benchmark.
    alpha_beta_method:
        ``"bfs"`` (the paper's blocked BFS), ``"tree"`` (this
        reproduction's block-cut-tree DP, undirected only) or
        ``"auto"`` (tree when undirected).
    eliminate_pendants:
        Enable the total-redundancy elimination (R/γ). Disabling it
        runs every vertex as a source — the partial-redundancy-only
        ablation.
    parallel:
        ``"serial"``, ``"processes"`` (coarse-grained sub-graph
        parallelism over a fork pool — the paper's ``cilk_for`` level)
        or ``"threads"`` (same tasks on a thread pool; GIL-bound, kept
        for the scaling study).
    workers:
        Worker count for the parallel modes.
    """

    threshold: int = DEFAULT_THRESHOLD
    alpha_beta_method: str = "auto"
    eliminate_pendants: bool = True
    parallel: str = "serial"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.parallel not in _PARALLEL_MODES:
            raise AlgorithmError(
                f"parallel must be one of {_PARALLEL_MODES}, "
                f"got {self.parallel!r}"
            )
        if self.alpha_beta_method not in _AB_METHODS:
            raise AlgorithmError(
                f"alpha_beta_method must be one of {_AB_METHODS}, "
                f"got {self.alpha_beta_method!r}"
            )
        if self.workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {self.workers}")
        if self.threshold < 0:
            raise AlgorithmError(
                f"threshold must be >= 0, got {self.threshold}"
            )
