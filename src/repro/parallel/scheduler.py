"""Task ordering and assignment for coarse-grained parallelism.

The decomposition is extremely skewed — the top sub-graph holds most
of the work (paper Table 4 / Figure 8) — so sub-graph tasks are
dispatched largest-first (LPT, longest processing time). LPT is a
4/3-approximation for makespan on identical machines, and, more to the
point here, guarantees the dominant sub-graph is never left for last.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

import numpy as np

__all__ = ["lpt_order", "assign_lpt", "lpt_makespan", "task_cost"]


def task_cost(num_arcs: float, num_roots: float) -> float:
    """Cost model for one BC task: ``edges × sqrt(roots)``.

    A task sweeps ``roots`` sources over a graph (slice) of ``edges``
    arcs.  Linear-in-roots models (``roots × edges``) over-penalise
    root-heavy tasks: the batched SpMM kernel amortises per-level
    overheads across the sources of a batch, the frontier matrices of
    many sources share the same CSR scan, and warm caches make the
    marginal source cheaper than the first one — measured task times
    grow clearly sub-linearly in the root count.  ``sqrt`` is the
    concave stand-in that keeps edge volume dominant (an edge must be
    touched whatever the batch width) while still ranking a 10000-root
    slice well above a 10-root slice of the same graph.  Weighting LPT
    with this model places skewed workloads measurably better than
    vertex- or edge-count alone (see the makespan test in
    tests/test_parallel.py).
    """
    return max(float(num_arcs), 1.0) * float(
        np.sqrt(max(float(num_roots), 1.0))
    )


def lpt_order(sizes: Sequence[float]) -> List[int]:
    """Indices of ``sizes`` sorted descending (stable for ties)."""
    arr = np.asarray(sizes, dtype=float)
    return np.argsort(-arr, kind="stable").tolist()


def assign_lpt(sizes: Sequence[float], workers: int) -> List[List[int]]:
    """Greedy LPT assignment of tasks to ``workers`` bins.

    Returns one list of task indices per worker; each task goes to the
    currently least-loaded bin, in descending size order. Empty bins
    are returned (not dropped) so callers can zip with worker ids.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    bins: List[List[int]] = [[] for _ in range(workers)]
    heap = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    for task in lpt_order(sizes):
        load, w = heapq.heappop(heap)
        bins[w].append(task)
        heapq.heappush(heap, (load + float(sizes[task]), w))
    return bins


def lpt_makespan(sizes: Sequence[float], workers: int) -> float:
    """Makespan of the greedy LPT assignment.

    Used as the *work/critical-path model* for the scaling figures: on
    a machine with ``workers`` real cores, coarse-grained execution of
    these tasks cannot beat this bound, and LPT typically achieves it —
    so ``sum(sizes) / lpt_makespan(sizes, k)`` is the modelled speedup
    at ``k`` workers (see EXPERIMENTS.md on why the single-core host
    reports a model column at all).
    """
    bins = assign_lpt(sizes, workers)
    return max(
        (sum(float(sizes[t]) for t in tasks) for tasks in bins),
        default=0.0,
    )
