"""Tests for the benchmark harness (workloads, runner, report, registry)."""

import numpy as np
import pytest

from repro.bench.registry import EXPERIMENTS, experiment_ids, get_experiment
from repro.bench.report import format_value, render_bars, render_table
from repro.bench.runner import (
    ExperimentResult,
    clear_cache,
    time_algorithm,
)
from repro.bench.workloads import (
    bench_graph_names,
    bench_scale,
    get_graph,
    get_partition,
    get_suite,
    scaling_graph,
)
from repro.errors import BenchmarkError
from repro.generators.suite import suite_names
from repro.graph.build import from_edges


@pytest.fixture(autouse=True)
def _fresh_runner_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture
def small_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    monkeypatch.setenv("REPRO_GRAPHS", "Email-Enron,USA-roadNY")


class TestWorkloads:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(BenchmarkError, match="float"):
            bench_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(BenchmarkError, match="positive"):
            bench_scale()

    def test_graph_names_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPHS", raising=False)
        assert bench_graph_names() == suite_names()

    def test_graph_names_env(self, small_env):
        assert bench_graph_names() == ["Email-Enron", "USA-roadNY"]

    def test_graph_names_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "NotAGraph")
        with pytest.raises(BenchmarkError, match="unknown"):
            bench_graph_names()

    def test_graph_caching(self, small_env):
        a = get_graph("Email-Enron")
        b = get_graph("Email-Enron")
        assert a is b

    def test_suite_order(self, small_env):
        assert list(get_suite()) == ["Email-Enron", "USA-roadNY"]

    def test_partition_cached_with_alpha(self, small_env):
        p = get_partition("Email-Enron")
        assert p is get_partition("Email-Enron")
        has_boundary = any(
            sg.boundary_arts().size for sg in p.subgraphs
        )
        if has_boundary:
            assert any(sg.alpha.sum() > 0 for sg in p.subgraphs)

    def test_scaling_graph(self, small_env):
        name, g = scaling_graph()
        assert name == "dblp-2010"
        assert g.n > 0


class TestRunner:
    def test_time_algorithm_caches(self, small_env):
        g = get_graph("USA-roadNY")
        a = time_algorithm("serial", g, graph_name="USA-roadNY")
        b = time_algorithm("serial", g, graph_name="USA-roadNY")
        assert a is b
        assert a.seconds > 0 and a.mteps > 0

    def test_unsupported_returns_none(self, small_env):
        g = from_edges([(0, 1), (1, 2)], directed=True)
        assert time_algorithm("async", g, graph_name="tiny-dir") is None

    def test_verification_catches_wrong_scores(self, small_env, monkeypatch):
        from repro.baselines import registry as reg

        def bogus(graph, **kwargs):
            return np.ones(graph.n)

        monkeypatch.setitem(reg.ALGORITHMS, "bogus", bogus)
        g = get_graph("USA-roadNY")
        time_algorithm("serial", g, graph_name="USA-roadNY")
        with pytest.raises(BenchmarkError, match="disagrees"):
            time_algorithm("bogus", g, graph_name="USA-roadNY")


class TestReport:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.1234567) == "0.1235"
        assert format_value(123456.0) == "123,456"
        assert format_value("x", width=3) == "  x"

    def test_render_table(self):
        text = render_table(
            "My Table",
            ["a", "bbb"],
            [[1, 2.5], [None, "x"]],
            notes="hello\nworld",
        )
        assert "My Table" in text
        assert "=" * len("My Table") in text
        assert "-" in text.splitlines()[3]
        assert "note: hello" in text
        assert "note: world" in text

    def test_render_bars(self):
        text = render_bars("Chart", ["aa", "b"], [2.0, 1.0], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 10
        assert lines[3].count("#") == 5

    def test_render_bars_empty(self):
        assert "Chart" in render_bars("Chart", [], [])

    def test_experiment_result_render(self):
        r = ExperimentResult(
            exp_id="T", title="t", headers=["x"], rows=[[1]]
        )
        assert "T: t" in r.render()


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        for required in (
            "table1",
            "table2",
            "table3",
            "table4",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
        ):
            assert required in EXPERIMENTS

    def test_get_experiment_unknown(self):
        with pytest.raises(BenchmarkError, match="unknown experiment"):
            get_experiment("table99")

    def test_experiment_ids_order(self):
        ids = experiment_ids()
        assert ids[0] == "table1"


class TestExperimentsSmoke:
    """Each cheap experiment runs end-to-end on a tiny suite."""

    def test_table1(self, small_env):
        r = get_experiment("table1")()
        assert len(r.rows) == 2
        assert r.headers[0] == "Graph"
        assert "paper #V" in r.headers

    def test_table4(self, small_env):
        r = get_experiment("table4")()
        assert len(r.rows) == 2
        assert r.headers[1] == "#SG"
        # top share is a percent string
        assert r.rows[0][4].endswith("%")

    def test_fig7(self, small_env):
        r = get_experiment("fig7")()
        for row in r.rows:
            values = [float(cell.rstrip("%")) for cell in row[1:]]
            assert abs(sum(values) - 100.0) < 0.5

    def test_fig8(self, small_env):
        r = get_experiment("fig8")()
        for row in r.rows:
            shares = [float(cell.rstrip("%")) for cell in row[1:5]]
            assert abs(sum(shares) - 100.0) < 0.5

    def test_table2_table3_fig6_consistent(self, small_env):
        t2 = get_experiment("table2")()
        t3 = get_experiment("table3")()
        f6 = get_experiment("fig6")()
        # table2 ends with the average-speedup row
        assert t2.rows[-1][0].startswith("Average")
        assert len(t3.rows) == 2
        # fig6 speedups = serial / algo from the same (cached) timings
        for row2, row6 in zip(t2.rows[:-1], f6.rows):
            serial = row2[1]
            apgre = row2[2]
            assert row6[1] == pytest.approx(serial / apgre)


class TestRenderLines:
    def test_basic_chart(self):
        from repro.bench.report import render_lines

        text = render_lines(
            "Chart", [1, 2, 4], {"up": [1.0, 2.0, 4.0], "flat": [1.0, 1.0, 1.0]}
        )
        assert "Chart" in text
        assert "o = up" in text and "x = flat" in text
        assert "x: 1.00 .. 4.00" in text

    def test_handles_none_values(self):
        from repro.bench.report import render_lines

        text = render_lines("C", [1, 2], {"a": [1.0, None]})
        assert "a" in text

    def test_empty_series(self):
        from repro.bench.report import render_lines

        assert "(no data)" in render_lines("C", [], {})

    def test_monotone_series_rows_descend(self):
        from repro.bench.report import render_lines

        text = render_lines("C", [1, 2, 3], {"a": [1.0, 2.0, 3.0]},
                            height=6, width=12)
        rows = [l.split("|")[1] for l in text.splitlines() if "|" in l]
        cols = [row.index("o") for row in rows if "o" in row]
        # a rising series puts its rightmost point in the top row, so a
        # top-down scan sees strictly decreasing columns
        assert cols == sorted(cols, reverse=True)


class TestPersistence:
    def _toy_results(self, apgre_time):
        return [
            ExperimentResult(
                exp_id="Table 2",
                title="timing",
                headers=["Graph", "serial", "APGRE"],
                rows=[["Email-Enron", 1.0, apgre_time], ["roads", 2.0, 1.5]],
                notes="n",
            )
        ]

    def test_roundtrip(self, tmp_path):
        from repro.bench.persistence import load_results, save_results

        results = self._toy_results(0.5)
        path = tmp_path / "run.json"
        save_results(results, path, metadata={"scale": 1.0})
        loaded = load_results(path)
        assert loaded[0].exp_id == "Table 2"
        assert loaded[0].rows == [["Email-Enron", 1.0, 0.5], ["roads", 2.0, 1.5]]
        assert loaded[0].notes == "n"

    def test_diff_detects_regression(self, tmp_path):
        from repro.bench.persistence import diff_results

        old = self._toy_results(0.5)
        new = self._toy_results(1.2)  # APGRE slowed 2.4x
        changes = diff_results(old, new, rel_tolerance=0.25)
        assert len(changes) == 1
        ch = changes[0]
        assert ch.row_label == "Email-Enron"
        assert ch.column == "APGRE"
        assert ch.ratio == pytest.approx(2.4)

    def test_diff_tolerates_noise(self):
        from repro.bench.persistence import diff_results

        old = self._toy_results(0.5)
        new = self._toy_results(0.55)  # 10% — under tolerance
        assert diff_results(old, new) == []

    def test_diff_ignores_layout_changes(self):
        from repro.bench.persistence import diff_results

        old = self._toy_results(0.5)
        new = [
            ExperimentResult(
                exp_id="Table 9", title="other", headers=["x"], rows=[[1]]
            )
        ]
        assert diff_results(old, new) == []

    def test_load_bad_file(self, tmp_path):
        from repro.bench.persistence import load_results

        p = tmp_path / "junk.json"
        p.write_text("{not json")
        with pytest.raises(BenchmarkError, match="cannot read"):
            load_results(p)
        p.write_text('{"schema": 99, "experiments": []}')
        with pytest.raises(BenchmarkError, match="schema"):
            load_results(p)


@pytest.mark.benchmarks
class TestParallelBenchSmoke:
    """Quick-mode invocation of the parallel pool benchmark.

    Keeps ``benchmarks/bench_parallel_batched.py --quick`` runnable
    from the suite (marker ``benchmarks``) so a routing or provenance
    regression in the bench script is caught before a full run.
    Skipped on single-core machines where a 2-worker pool cannot be
    exercised meaningfully.
    """

    def test_quick_mode(self, tmp_path):
        import importlib.util
        from pathlib import Path

        from repro.parallel.pool import available_workers

        if available_workers() < 2:
            pytest.skip("needs >= 2 CPUs for a 2-worker pool smoke")
        script = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_parallel_batched.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_parallel_batched_smoke", script
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        out = tmp_path / "quick.json"
        payload, written = mod.run_bench(quick=True, out_path=out)
        assert written == out
        mod.check_rows(payload["workloads"], quick=True)
        assert payload["environment"]["workers"] == mod.QUICK_WORKERS
        row = payload["workloads"][0]
        assert row["speedup"] > 0
        assert row["health"].startswith("ok")
