"""Request protocol for the serving daemon: query-parameter parsing,
per-request config construction, and config fingerprints.

The daemon speaks plain HTTP with query-string parameters, so every
client — ``repro-bc query``, ``curl``, a load generator — composes the
same execution matrix the CLI exposes: backend and kernel from the
PR 7/PR 9 registries, batching, compression, sharding, caching, and
supervisor budgets (timeout / retries / fallback) per request.

:func:`config_fingerprint` is the score-LRU half of the key: a
BLAKE2b-128 digest over exactly the config fields that can change the
served *bytes* — anything affecting either the mathematical scores
(threshold, pendant elimination) or the floating-point summation
order (batching, compression, sharding, execution layout).  Two
requests with the same fingerprint against the same graph version are
guaranteed byte-identical answers, which is what makes serving a
cached vector indistinguishable from recomputing it.  Operational
knobs that cannot change a healthy run's output — ``timeout``,
``max_retries``, ``fallback`` — stay out of the key so retuning them
keeps the cache warm.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError, GraphValidationError, ServeError

__all__ = [
    "RequestParams",
    "build_config",
    "config_fingerprint",
    "parse_delta_body",
]

_BOOL_TRUE = {"1", "true", "yes", "on"}
_BOOL_FALSE = {"0", "false", "no", "off"}

_BACKENDS = ("auto", "serial", "threads", "processes")
_KERNELS = ("auto", "arcs", "spmm", "pull", "numba")


def _one(query: Dict, key: str) -> Optional[str]:
    """The single value of a query parameter (repeats are an error)."""
    values = query.get(key)
    if not values:
        return None
    if len(values) > 1:
        raise ServeError(f"parameter {key!r} given {len(values)} times")
    return values[0]


def _as_bool(key: str, raw: str) -> bool:
    low = raw.strip().lower()
    if low in _BOOL_TRUE:
        return True
    if low in _BOOL_FALSE:
        return False
    raise ServeError(
        f"parameter {key!r} must be a boolean (1/0/true/false), got {raw!r}"
    )


def _as_int(key: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ServeError(
            f"parameter {key!r} must be an integer, got {raw!r}"
        ) from None


def _as_float(key: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ServeError(
            f"parameter {key!r} must be a number, got {raw!r}"
        ) from None


@dataclass
class RequestParams:
    """One request's parsed execution and presentation parameters.

    Execution fields override the daemon's base config (``None`` means
    "inherit"); presentation fields shape the response.  ``fresh``
    bypasses the score-LRU *read* (the result is still admitted) so
    callers can force the ContributionStore replay path; ``isolate``
    runs the compute in a fork via
    :func:`repro.parallel.supervisor.call_with_timeout` for per-request
    crash isolation.  ``version`` pins the request to a still-resident
    older snapshot (409 when it has retired).
    """

    backend: Optional[str] = None
    kernel: Optional[str] = None
    batch_size: Optional[Union[int, str]] = None
    workers: Optional[int] = None
    steal: Optional[bool] = None
    compress: Optional[bool] = None
    shard: Optional[bool] = None
    shard_max_size: Optional[int] = None
    threshold: Optional[int] = None
    cache: Optional[bool] = None
    timeout: Optional[float] = None
    max_retries: Optional[int] = None
    fallback: Optional[bool] = None
    isolate: bool = False
    fresh: bool = False
    top: int = 10
    full: bool = False
    version: Optional[int] = None

    _KNOWN = frozenset(
        (
            "backend", "kernel", "batch_size", "workers", "steal",
            "compress", "shard", "shard_max_size", "threshold", "cache",
            "timeout", "max_retries", "fallback", "isolate", "fresh",
            "top", "full", "version",
        )
    )

    @classmethod
    def from_query(cls, query: Dict) -> "RequestParams":
        """Parse a ``urllib.parse.parse_qs`` dict; 400 on bad input."""
        unknown = sorted(set(query) - cls._KNOWN)
        if unknown:
            raise ServeError(
                f"unknown parameter(s) {', '.join(unknown)} (known: "
                f"{', '.join(sorted(cls._KNOWN))})"
            )
        params = cls()
        raw = _one(query, "backend")
        if raw is not None:
            if raw not in _BACKENDS:
                raise ServeError(
                    f"backend must be one of {_BACKENDS}, got {raw!r}"
                )
            params.backend = raw
        raw = _one(query, "kernel")
        if raw is not None:
            if raw not in _KERNELS:
                raise ServeError(
                    f"kernel must be one of {_KERNELS}, got {raw!r}"
                )
            params.kernel = raw
        raw = _one(query, "batch_size")
        if raw is not None:
            if raw == "auto":
                params.batch_size = "auto"
            else:
                value = _as_int("batch_size", raw)
                if value < 1:
                    raise ServeError(
                        f"batch_size must be 'auto' or >= 1, got {value}"
                    )
                params.batch_size = value
        for key in ("workers", "shard_max_size", "threshold",
                    "max_retries", "version"):
            raw = _one(query, key)
            if raw is not None:
                setattr(params, key, _as_int(key, raw))
        for key in ("steal", "compress", "shard", "cache", "fallback"):
            raw = _one(query, key)
            if raw is not None:
                setattr(params, key, _as_bool(key, raw))
        for key in ("isolate", "fresh", "full"):
            raw = _one(query, key)
            if raw is not None:
                setattr(params, key, _as_bool(key, raw))
        raw = _one(query, "timeout")
        if raw is not None:
            params.timeout = _as_float("timeout", raw)
        raw = _one(query, "top")
        if raw is not None:
            params.top = _as_int("top", raw)
            if params.top < 1:
                raise ServeError(f"top must be >= 1, got {params.top}")
        return params


def build_config(params: RequestParams, base, store):
    """The request's :class:`~repro.core.config.APGREConfig`.

    Starts from the daemon's base config and applies the request's
    overrides; validation failures surface as 400s.  Journaling is
    forced off — per-request journals would fight over one directory
    and the daemon's durability story is the delta log of its caller.
    ``cache`` routes the daemon's shared ContributionStore in (the
    default) or drops it for a store-free run.
    """
    from repro.errors import AlgorithmError

    overrides: Dict = {"journal_dir": None, "resume": False}
    if params.backend is not None:
        overrides["backend"] = params.backend
        overrides["parallel_batched"] = False
    if params.kernel is not None:
        overrides["kernel"] = params.kernel
    if params.batch_size is not None:
        overrides["batch_size"] = params.batch_size
    if params.workers is not None:
        overrides["workers"] = params.workers
    if params.steal is not None:
        overrides["steal"] = params.steal
    if params.compress is not None:
        overrides["compress"] = params.compress
    if params.shard is not None:
        overrides["shard"] = params.shard
    if params.shard_max_size is not None:
        overrides["shard_max_size"] = params.shard_max_size
        overrides["shard"] = True if params.shard is None else params.shard
    if params.threshold is not None:
        overrides["threshold"] = params.threshold
    if params.timeout is not None:
        overrides["timeout"] = params.timeout
    if params.max_retries is not None:
        overrides["max_retries"] = params.max_retries
    if params.fallback is not None:
        overrides["fallback"] = params.fallback
    use_store = params.cache if params.cache is not None else (
        base.cache is not None or store is not None
    )
    overrides["cache"] = store if (use_store and store is not None) else None
    overrides["cache_dir"] = None
    try:
        return replace(base, **overrides)
    except AlgorithmError as exc:
        raise ServeError(str(exc)) from exc


def config_fingerprint(config) -> str:
    """BLAKE2b-128 hex digest of a config's score-affecting fields.

    Everything that can change the served bytes participates:
    mathematical knobs (threshold, α/β method, pendant elimination)
    and floating-point-order knobs (batching, compression, sharding,
    backend/kernel/worker layout, stealing).  The cache is keyed as a
    bool — *which* store replays a contribution cannot change its
    bytes (entries are content-addressed).  Supervisor budgets stay
    out (a healthy run's output does not depend on them).
    """
    fields = (
        ("threshold", int(config.threshold)),
        ("alpha_beta_method", str(config.alpha_beta_method)),
        ("eliminate_pendants", bool(config.eliminate_pendants)),
        ("parallel", str(config.parallel)),
        ("backend", config.backend),
        ("workers", int(config.workers)),
        ("batch_size", config.batch_size),
        ("parallel_batched", bool(config.parallel_batched)),
        ("steal", bool(config.steal)),
        ("compress", bool(config.compress)),
        ("shard", bool(config.shard)),
        ("shard_max_size", int(config.shard_max_size)),
        ("kernel", config.kernel),
        ("cache", config.cache is not None),
    )
    h = hashlib.blake2b(digest_size=16)
    h.update(b"apgre-config-v1")
    for name, value in fields:
        h.update(f"|{name}={value!r}".encode())
    return h.hexdigest()


def parse_delta_body(
    body: bytes, content_type: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a ``POST /delta`` body into ``(added, removed)`` arrays.

    Two encodings: ``application/json`` with ``{"add": [[u, v], ...],
    "remove": [[u, v], ...]}``, or the delta-file text format
    (``+ u v`` / ``- u v`` per line — the exact on-disk format
    ``repro-bc compute --delta`` reads) for anything else.  Malformed
    payloads raise :class:`~repro.errors.ServeError` (400).
    """
    from repro.cache.incremental import parse_delta_lines

    kind = (content_type or "").split(";", 1)[0].strip().lower()
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ServeError(f"delta body is not UTF-8: {exc}") from exc
    if kind == "application/json":
        try:
            payload = json.loads(text or "{}")
        except json.JSONDecodeError as exc:
            raise ServeError(f"delta body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError(
                f"delta JSON must be an object with 'add'/'remove' "
                f"lists, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"add", "remove"})
        if unknown:
            raise ServeError(
                f"unknown delta key(s) {', '.join(unknown)} "
                f"(expected 'add'/'remove')"
            )

        def _pairs(key: str) -> np.ndarray:
            rows = payload.get(key) or []
            try:
                arr = np.asarray(rows, dtype=np.int64).reshape(-1, 2)
            except (TypeError, ValueError) as exc:
                raise ServeError(
                    f"delta {key!r} must be a list of [u, v] integer "
                    f"pairs: {exc}"
                ) from exc
            return arr

        return _pairs("add"), _pairs("remove")
    try:
        return parse_delta_lines(text, name="<delta body>")
    except (GraphFormatError, GraphValidationError) as exc:
        raise ServeError(str(exc)) from exc
