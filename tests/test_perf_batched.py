"""Tier-1 perf guard for the batched multi-source kernel.

A deliberately loose wall-clock check: the batched kernel must never
be *worse than twice as slow* as the per-source path it replaces.  The
real perf trajectory lives in ``benchmarks/bench_batched_kernel.py``
(marker ``benchmarks``) with committed numbers in
``benchmarks/BENCH_baseline.json``; this test only makes a gross
regression — a kernel change that silently falls off the fast path —
fail loudly inside the default test run, with enough slack that CI
noise on a loaded box cannot flake it.
"""

import time

import numpy as np
import pytest

from repro.baselines.common import run_per_source
from repro.generators.suite import analogue_graph


def _best_of(fn, repeat=2):
    best = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best_candidate = time.perf_counter() - t0
        best = best_candidate if best is None else min(best, best_candidate)
    return best


@pytest.mark.timeout(120)
def test_batched_not_grossly_slower_than_serial():
    graph = analogue_graph("USA-roadBAY", scale=3.0)
    rng = np.random.default_rng(7)
    sources = np.sort(
        rng.choice(graph.n, size=64, replace=False)
    ).tolist()
    t_serial = _best_of(
        lambda: run_per_source(graph, sources=sources, mode="arcs")
    )
    t_batched = _best_of(
        lambda: run_per_source(
            graph, sources=sources, mode="arcs", batch_size="auto"
        )
    )
    # 2x + absolute slack: timings on this graph are ~100s of ms, so a
    # genuine fast-path regression (10x-ish) still trips the bound
    assert t_batched <= 2.0 * t_serial + 0.25, (
        f"batched kernel fell off the fast path: {t_batched:.3f}s vs "
        f"serial {t_serial:.3f}s (allowed: 2x + 0.25s)"
    )
