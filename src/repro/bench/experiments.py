"""The paper's evaluation experiments, one function per table/figure.

Every function returns an :class:`~repro.bench.runner.ExperimentResult`
whose rows/columns mirror the paper's layout; the DESIGN.md §4 index
maps each experiment to its modules. Timing-based experiments share
the memoised runs in :mod:`repro.bench.runner`, so e.g. Table 2,
Table 3 and Figure 6 measure each (algorithm, graph) pair once.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.registry import algorithm_names
from repro.bench.runner import ExperimentResult, time_algorithm
from repro.bench.workloads import (
    bench_graph_names,
    bench_scale,
    get_graph,
    get_partition,
    get_redundancy,
    get_suite,
    scaling_graph,
)
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.generators.suite import SUITE_SPECS
from repro.metrics.breakdown import phase_breakdown
from repro.metrics.stats import graph_stats, partition_stats
from repro.parallel.scheduler import lpt_makespan

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ablation_threshold",
    "ablation_features",
    "cache_incremental",
]

#: Table-2/3 column order, as in the paper.
TABLE_ALGOS = [
    "serial",
    "APGRE",
    "preds",
    "succs",
    "lockSyncFree",
    "async",
    "hybrid",
]


def _timing_matrix() -> Dict[str, Dict[str, Optional[float]]]:
    """seconds[graph][algorithm], with None for '-' cells."""
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for name, graph in get_suite().items():
        out[name] = {}
        for algo in TABLE_ALGOS:
            run = time_algorithm(algo, graph, graph_name=name)
            out[name][algo] = run.seconds if run else None
    return out


def table1() -> ExperimentResult:
    """Table 1: the evaluation graphs (analogue vs paper sizes)."""
    rows: List[List] = []
    for name in bench_graph_names():
        spec = SUITE_SPECS[name]
        stats = graph_stats(get_graph(name), name=name)
        rows.append(
            [
                name,
                spec.description,
                stats.num_vertices,
                stats.num_arcs,
                "Y" if stats.directed else "N",
                spec.paper_vertices,
                spec.paper_edges,
            ]
        )
    return ExperimentResult(
        exp_id="Table 1",
        title="Real-world graphs used for evaluation (synthetic analogues)",
        headers=[
            "Graph",
            "Description",
            "#Vertices",
            "#Edges",
            "Directed",
            "paper #V",
            "paper #E",
        ],
        rows=rows,
        notes=(
            f"analogue scale = {bench_scale()}; paper columns show the "
            "original SNAP/DIMACS sizes the analogues stand in for "
            "(DESIGN.md §1)"
        ),
    )


def table2() -> ExperimentResult:
    """Table 2: execution time in seconds per algorithm per graph."""
    matrix = _timing_matrix()
    rows: List[List] = []
    speedups: Dict[str, List[float]] = {a: [] for a in TABLE_ALGOS[1:]}
    for name, times in matrix.items():
        row: List = [name]
        serial = times["serial"]
        for algo in TABLE_ALGOS:
            row.append(times[algo])
            if algo != "serial" and times[algo] and serial:
                speedups[algo].append(serial / times[algo])
        rows.append(row)
    avg_row: List = ["Average speedup = serial/algorithm", 1.0]
    for algo in TABLE_ALGOS[1:]:
        vals = speedups[algo]
        avg_row.append(float(np.mean(vals)) if vals else None)
    # keep column count aligned (serial column holds the 1.0 baseline)
    rows.append(avg_row)
    return ExperimentResult(
        exp_id="Table 2",
        title="Performance in execution time (seconds)",
        headers=["Graph"] + TABLE_ALGOS,
        rows=rows,
        notes="'-' marks unsupported inputs (async is undirected-only)",
    )


def table3() -> ExperimentResult:
    """Table 3: search rate in MTEPS (= n·m / t / 1e6)."""
    matrix = _timing_matrix()
    rows: List[List] = []
    for name, times in matrix.items():
        graph = get_graph(name)
        nm = graph.n * graph.num_arcs
        row: List = [name]
        for algo in TABLE_ALGOS:
            t = times[algo]
            row.append(nm / t / 1e6 if t else None)
        rows.append(row)
    return ExperimentResult(
        exp_id="Table 3",
        title="Performance in search rate (MTEPS)",
        headers=["Graph"] + TABLE_ALGOS,
        rows=rows,
    )


def table4() -> ExperimentResult:
    """Table 4: sub-graph sizes produced by the partitioner."""
    rows: List[List] = []
    for name in bench_graph_names():
        partition = get_partition(name)
        stats = partition_stats(partition, name=name)
        top, second, third = stats.rows[0], stats.rows[1], stats.rows[2]
        rows.append(
            [
                name,
                stats.num_subgraphs,
                top.num_vertices,
                top.num_arcs,
                f"{top.vertex_fraction:.2%}",
                f"{top.arc_fraction:.2%}",
                second.num_vertices,
                second.num_arcs,
                third.num_vertices,
                third.num_arcs,
            ]
        )
    return ExperimentResult(
        exp_id="Table 4",
        title="The size of sub-graphs for various graphs",
        headers=[
            "Graph",
            "#SG",
            "top #V",
            "top #E",
            "V/G.V",
            "E/G.E",
            "2nd #V",
            "2nd #E",
            "3rd #V",
            "3rd #E",
        ],
        rows=rows,
    )


def fig6() -> ExperimentResult:
    """Figure 6: per-graph speedup of each algorithm over serial."""
    matrix = _timing_matrix()
    rows: List[List] = []
    for name, times in matrix.items():
        serial = times["serial"]
        row: List = [name]
        for algo in TABLE_ALGOS[1:]:
            t = times[algo]
            row.append(serial / t if (t and serial) else None)
        rows.append(row)
    return ExperimentResult(
        exp_id="Figure 6",
        title="Speedups relative to serial",
        headers=["Graph"] + TABLE_ALGOS[1:],
        rows=rows,
    )


def fig7() -> ExperimentResult:
    """Figure 7: breakdown of Brandes BC work into redundancy classes."""
    rows: List[List] = []
    for name in get_suite():
        rb = get_redundancy(name)
        rows.append(
            [
                name,
                f"{rb.partial_fraction:.1%}",
                f"{rb.total_fraction:.1%}",
                f"{rb.essential_fraction:.1%}",
            ]
        )
    return ExperimentResult(
        exp_id="Figure 7",
        title="Breakdown of BC computation (share of Brandes traversal work)",
        headers=["Graph", "partial redundancy", "total redundancy", "essential"],
        rows=rows,
        notes="work metric: forward-traversal arcs (see repro.metrics.redundancy)",
    )


def fig8() -> ExperimentResult:
    """Figure 8: execution-time breakdown of APGRE."""
    rows: List[List] = []
    for name, graph in get_suite().items():
        frac = phase_breakdown(graph)
        extra = frac["partition"] + frac["alpha_beta"]
        rows.append(
            [
                name,
                f"{frac['partition']:.1%}",
                f"{frac['alpha_beta']:.1%}",
                f"{frac['top_bc']:.1%}",
                f"{frac['rest_bc']:.1%}",
                f"{extra:.1%}",
            ]
        )
    return ExperimentResult(
        exp_id="Figure 8",
        title="Breakdown of execution time of APGRE",
        headers=[
            "Graph",
            "partition",
            "alpha/beta",
            "top sub-graph BC",
            "other sub-graphs BC",
            "extra (part+ab)",
        ],
        rows=rows,
    )


def _apgre_task_weights(name: str) -> List[float]:
    """Per-task work estimates for the scaling model (roots × arcs)."""
    partition = get_partition(name)
    weights: List[float] = []
    for sg in partition.subgraphs:
        for _ in range(sg.roots.size):
            weights.append(float(max(sg.num_arcs, 1)))
    return weights


def _scaling_rows(
    name: str, graph, worker_counts: List[int], algorithms: List[str]
) -> List[List]:
    """Measured time + modelled speedup per worker count."""
    weights = _apgre_task_weights(name)
    total = sum(weights) or 1.0
    base: Dict[str, float] = {}
    rows: List[List] = []
    for k in worker_counts:
        row: List = [k]
        for algo in algorithms:
            t0 = time.perf_counter()
            if algo == "APGRE":
                apgre_bc_detailed(
                    graph,
                    APGREConfig(
                        parallel="processes" if k > 1 else "serial", workers=k
                    ),
                    partition=get_partition(name),
                )
            else:
                from repro.baselines.registry import get_algorithm

                kwargs = {"workers": k} if algo != "serial" else {}
                get_algorithm(algo)(graph, **kwargs)
            elapsed = time.perf_counter() - t0
            base.setdefault(algo, elapsed)
            row.append(base[algo] / elapsed)
        model = total / lpt_makespan(weights, k)
        row.append(model)
        rows.append(row)
    return rows


def fig9() -> ExperimentResult:
    """Figure 9: parallel scaling of the algorithms (dblp analogue).

    Measured speedups come from worker sweeps on *this* host; on the
    single-core reproduction machine they are flat to degrading, so
    the final column adds the work/LPT model speedup APGRE's task
    graph supports on a real k-core machine (DESIGN.md §1).
    """
    name, graph = scaling_graph()
    algos = ["APGRE", "preds", "succs"]
    rows = _scaling_rows(name, graph, [1, 2, 4, 8, 12], algos)
    return ExperimentResult(
        exp_id="Figure 9",
        title=f"Parallel scaling on {name} (measured speedup vs 1 worker)",
        headers=["workers"] + algos + ["APGRE model"],
        rows=rows,
        notes=(
            "measured columns are worker sweeps on this host; the model "
            "column is the LPT work bound for APGRE's task graph"
        ),
    )


def fig10() -> ExperimentResult:
    """Figure 10: APGRE scaling up to 32 workers (4-socket analogue)."""
    name, graph = scaling_graph()
    rows = _scaling_rows(name, graph, [1, 2, 4, 8, 16, 32], ["APGRE"])
    return ExperimentResult(
        exp_id="Figure 10",
        title=f"Parallel scaling of APGRE on {name} up to 32 workers",
        headers=["workers", "APGRE", "APGRE model"],
        rows=rows,
        notes="see Figure 9 note",
    )


def cache_incremental() -> ExperimentResult:
    """Cache experiment: cold vs warm vs k-edge-delta APGRE runs.

    The :mod:`repro.cache` counterpart of Table 2 — how much of a
    repeat run the BCC-scoped contribution cache eliminates (see
    docs/CACHING.md; ``benchmarks/bench_cache_incremental.py`` is the
    guarded standalone version with the committed numbers).
    """
    from repro.cache import ContributionStore, apgre_bc_delta

    rows: List[List] = []
    for name in ("USA-roadBAY", "Email-Enron"):
        if name not in bench_graph_names():
            continue
        graph = get_graph(name)
        store = ContributionStore()
        config = APGREConfig(parallel="serial", cache=store)
        t0 = time.perf_counter()
        cold = apgre_bc_detailed(graph, config)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = apgre_bc_detailed(graph, config)
        t_warm = time.perf_counter() - t0
        # 4-edge delta between vertices of the largest non-top
        # sub-graph: dirties exactly one cache key (docs/CACHING.md)
        partition = graph_partition(graph, threshold=config.threshold)
        host = max(partition.subgraphs[1:], key=lambda s: s.num_vertices)
        rng = np.random.default_rng(11)
        existing = set(
            zip(
                np.repeat(
                    np.arange(graph.n), np.diff(graph.out_indptr)
                ).tolist(),
                graph.out_indices.tolist(),
            )
        )
        added: List[tuple] = []
        while len(added) < 4:
            a, b = (int(x) for x in rng.choice(host.vertices, 2, False))
            if a != b and (a, b) not in existing and (a, b) not in added:
                added.append((a, b))
        t0 = time.perf_counter()
        delta = apgre_bc_delta(
            graph, edges_added=np.asarray(added), cache=store, config=config
        )
        t_delta = time.perf_counter() - t0
        ds = delta.result.stats
        rows.append(
            [
                name,
                t_cold,
                t_warm,
                t_cold / t_warm if t_warm else None,
                t_delta,
                f"{ds.subgraphs_recomputed}/{ds.num_subgraphs}",
                warm.stats.edges_replayed,
            ]
        )
    return ExperimentResult(
        exp_id="Cache",
        title="Contribution cache: cold vs warm vs 4-edge delta",
        headers=[
            "Graph",
            "cold s",
            "warm s",
            "warm speedup",
            "delta s",
            "delta recomputed SG",
            "edges replayed",
        ],
        rows=rows,
        notes=(
            "warm reruns replay every stored contribution (0 edges "
            "traversed); the delta adds 4 edges inside one non-top "
            "sub-graph, so only that BCC recomputes"
        ),
    )


def ablation_threshold() -> ExperimentResult:
    """Ablation A1: Algorithm-1 merge-threshold sweep."""
    name, graph = scaling_graph()
    rows: List[List] = []
    for threshold in (2, 4, 8, 16, 32, 64):
        t0 = time.perf_counter()
        partition = graph_partition(graph, threshold=threshold)
        compute_alpha_beta(graph, partition)
        result = apgre_bc_detailed(graph, partition=partition)
        elapsed = time.perf_counter() - t0
        stats = partition_stats(partition)
        rows.append(
            [
                threshold,
                partition.num_subgraphs,
                f"{stats.top.vertex_fraction:.1%}",
                int(partition.boundary_art_flags.sum()),
                elapsed,
            ]
        )
    return ExperimentResult(
        exp_id="Ablation A1",
        title=f"Partition threshold sweep on {name}",
        headers=["threshold", "#SG", "top V share", "#boundary arts", "seconds"],
        rows=rows,
    )


def ablation_features() -> ExperimentResult:
    """Ablation A2: feature toggles (γ elimination, α/β method)."""
    rows: List[List] = []
    # a directed and an undirected representative
    for name in ("Email-EuAll", "Email-Enron"):
        if name not in bench_graph_names():
            continue
        graph = get_graph(name)
        variants = [
            ("APGRE (full)", APGREConfig()),
            ("no pendant elimination", APGREConfig(eliminate_pendants=False)),
        ]
        if not graph.directed:
            variants.append(("alpha/beta: blocked BFS", APGREConfig(alpha_beta_method="bfs")))
            variants.append(("alpha/beta: tree DP", APGREConfig(alpha_beta_method="tree")))
        for label, config in variants:
            t0 = time.perf_counter()
            apgre_bc_detailed(graph, config)
            rows.append([name, label, time.perf_counter() - t0])
        if not graph.directed:
            from repro.core.treefold import treefold_bc

            t0 = time.perf_counter()
            treefold_bc(graph)
            rows.append(
                [name, "pendant-tree contraction", time.perf_counter() - t0]
            )
        serial = time_algorithm("serial", graph, graph_name=name)
        rows.append([name, "serial Brandes", serial.seconds])
    return ExperimentResult(
        exp_id="Ablation A2",
        title="APGRE feature ablation",
        headers=["Graph", "variant", "seconds"],
        rows=rows,
    )
