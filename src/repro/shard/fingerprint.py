"""Content keys making each shard a first-class cache/journal unit.

A shard task's output is a deterministic function of: the sub-graph's
local CSR (the shard plan — labels, tables, shard graphs — is itself a
deterministic function of the CSR and the size threshold), the shard
id, the root set, and the ``γ``/``A``/``α``/``β`` summaries the kernel
reads.  The key hashes exactly those inputs under a dedicated domain
prefix, in local coordinates only — so structurally identical
sub-graphs share shard entries wherever they sit in the host graph,
the same content-addressing contract as
:func:`repro.cache.fingerprint.subgraph_key`.
"""

from __future__ import annotations

import hashlib

from repro.cache.fingerprint import _DIGEST_SIZE, _feed, graph_fingerprint

__all__ = ["shard_key"]


def shard_key(
    sg,
    shard: int,
    *,
    max_size: int,
    eliminate_pendants: bool = True,
) -> str:
    """Cache key of one shard's full-length local contribution vector.

    ``max_size`` pins the shard decomposition (a different threshold
    yields different shards, hence different vectors); the summaries
    must be filled in, exactly as for the whole-sub-graph key.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"bc-shard-v1")
    h.update(b"ep" if eliminate_pendants else b"all")
    h.update(f"max={int(max_size)};shard={int(shard)}".encode())
    h.update(graph_fingerprint(sg.graph).encode())
    _feed(h, "roots", sg.roots)
    _feed(h, "gamma", sg.gamma)
    _feed(h, "boundary", sg.is_boundary_art)
    _feed(h, "alpha", sg.alpha)
    _feed(h, "beta", sg.beta)
    return h.hexdigest()
