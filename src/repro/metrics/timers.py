"""Minimal wall-clock helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["stopwatch", "Timer"]


@dataclass
class _Elapsed:
    """Mutable box filled in when a :func:`stopwatch` block exits."""

    seconds: float = 0.0


@contextmanager
def stopwatch() -> Iterator[_Elapsed]:
    """Time a ``with`` block::

        with stopwatch() as t:
            work()
        print(t.seconds)
    """
    box = _Elapsed()
    start = time.perf_counter()
    try:
        yield box
    finally:
        box.seconds = time.perf_counter() - start


@dataclass
class Timer:
    """Accumulate named phase durations across repeated sections.

    ``Timer.phase("x")`` blocks may nest with *different* names; the
    totals are independent per name.
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def fraction(self, name: str) -> float:
        """Share of this phase in the total recorded time."""
        total = sum(self.totals.values())
        if total == 0:
            return 0.0
        return self.totals.get(name, 0.0) / total
