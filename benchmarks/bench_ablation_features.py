"""Ablation A2 — APGRE feature toggles.

Quantifies each design choice separately: total-redundancy elimination
(γ/R) on/off, and the α/β method (the paper's blocked BFS vs this
reproduction's block-cut-tree DP) on undirected graphs.
"""

import pytest

from repro.bench.experiments import ablation_features
from repro.bench.workloads import bench_graph_names, get_graph
from repro.core.apgre import apgre_bc
from repro.core.config import APGREConfig

from conftest import one_shot

_VARIANTS = {
    "full": APGREConfig(),
    "no-gamma": APGREConfig(eliminate_pendants=False),
}


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_apgre_variant(benchmark, variant):
    names = bench_graph_names()
    name = "Email-EuAll" if "Email-EuAll" in names else names[0]
    graph = get_graph(name)
    config = _VARIANTS[variant]
    scores = one_shot(
        benchmark,
        apgre_bc,
        graph,
        eliminate_pendants=config.eliminate_pendants,
    )
    assert scores.shape == (graph.n,)
    benchmark.group = f"ablation-{name}"


def test_report_ablation_features(benchmark, report):
    result = one_shot(benchmark, ablation_features)
    assert len(result.rows) >= 3
    report(result)
