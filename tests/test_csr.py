"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.graph.validate import validate_graph


class TestConstruction:
    def test_from_arcs_directed_basic(self):
        g = CSRGraph.from_arcs(3, [0, 1, 2], [1, 2, 0], directed=True)
        assert g.n == 3
        assert g.directed
        assert g.num_arcs == 3
        assert list(g.out_neighbors(0)) == [1]
        assert list(g.in_neighbors(0)) == [2]

    def test_from_arcs_undirected_symmetrises(self):
        g = CSRGraph.from_arcs(3, [0, 1], [1, 2], directed=False)
        assert g.num_arcs == 4  # both orientations stored
        assert list(g.out_neighbors(1)) == [0, 2]
        assert g.num_undirected_edges == 2

    def test_undirected_either_orientation_dedupes(self):
        g = CSRGraph.from_arcs(2, [0, 1], [1, 0], directed=False)
        assert g.num_arcs == 2  # one edge

    def test_directed_duplicate_arcs_removed(self):
        g = CSRGraph.from_arcs(2, [0, 0, 0], [1, 1, 1], directed=True)
        assert g.num_arcs == 1

    def test_dedupe_disabled_keeps_parallel_arcs(self):
        g = CSRGraph.from_arcs(
            2, [0, 0], [1, 1], directed=True, dedupe=False
        )
        assert g.num_arcs == 2

    def test_self_loops_dropped_by_default(self):
        g = CSRGraph.from_arcs(2, [0, 0], [0, 1], directed=True)
        assert g.num_arcs == 1

    def test_self_loops_kept_on_request(self):
        g = CSRGraph.from_arcs(
            2, [0], [0], directed=True, drop_self_loops=False, dedupe=False
        )
        assert g.num_arcs == 1
        assert list(g.out_neighbors(0)) == [0]

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphValidationError, match="out of range"):
            CSRGraph.from_arcs(3, [0], [3], directed=True)
        with pytest.raises(GraphValidationError, match="out of range"):
            CSRGraph.from_arcs(3, [-1], [0], directed=True)

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphValidationError, match="lengths differ"):
            CSRGraph.from_arcs(3, [0, 1], [1], directed=True)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphValidationError, match=">= 0"):
            CSRGraph.from_arcs(-1, [], [], directed=True)

    def test_empty_graph(self):
        g = CSRGraph.from_arcs(5, [], [], directed=False)
        assert g.n == 5
        assert g.num_arcs == 0
        assert list(g.out_neighbors(3)) == []

    def test_zero_vertex_graph(self):
        g = CSRGraph.from_arcs(0, [], [], directed=True)
        assert g.n == 0
        assert len(g) == 0


class TestAdjacency:
    def test_rows_sorted(self):
        g = CSRGraph.from_arcs(5, [0, 0, 0], [4, 2, 3], directed=True)
        assert list(g.out_neighbors(0)) == [2, 3, 4]

    def test_degrees(self):
        g = CSRGraph.from_arcs(4, [0, 0, 1], [1, 2, 2], directed=True)
        assert g.out_degrees().tolist() == [2, 1, 0, 0]
        assert g.in_degrees().tolist() == [0, 1, 2, 0]

    def test_undirected_degrees_match(self):
        g = CSRGraph.from_arcs(4, [0, 1, 2], [1, 2, 3], directed=False)
        assert np.array_equal(g.out_degrees(), g.in_degrees())

    def test_has_edge(self):
        g = CSRGraph.from_arcs(4, [0, 1], [1, 2], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(3, 0)

    def test_has_edge_undirected_symmetric(self):
        g = CSRGraph.from_arcs(3, [0], [1], directed=False)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_arcs_roundtrip(self):
        g = CSRGraph.from_arcs(4, [0, 1, 2], [1, 2, 3], directed=True)
        src, dst = g.arcs()
        rebuilt = CSRGraph.from_arcs(4, src, dst, directed=True)
        assert rebuilt == g

    def test_iter_edges_directed(self):
        g = CSRGraph.from_arcs(3, [0, 1], [1, 0], directed=True)
        assert sorted(g.iter_edges()) == [(0, 1), (1, 0)]

    def test_iter_edges_undirected_once(self):
        g = CSRGraph.from_arcs(3, [0, 1], [1, 2], directed=False)
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2)]

    def test_arrays_are_readonly(self):
        g = CSRGraph.from_arcs(3, [0], [1], directed=True)
        with pytest.raises(ValueError):
            g.out_indices[0] = 2
        with pytest.raises(ValueError):
            g.out_indptr[0] = 1


class TestDunder:
    def test_equality(self):
        a = CSRGraph.from_arcs(3, [0, 1], [1, 2], directed=True)
        b = CSRGraph.from_arcs(3, [1, 0], [2, 1], directed=True)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_direction(self):
        a = CSRGraph.from_arcs(3, [0], [1], directed=True)
        b = CSRGraph.from_arcs(3, [0], [1], directed=False)
        assert a != b

    def test_inequality_other_type(self):
        a = CSRGraph.from_arcs(3, [0], [1], directed=True)
        assert a != "graph"

    def test_repr(self):
        g = CSRGraph.from_arcs(3, [0], [1], directed=False)
        assert "undirected" in repr(g)
        assert "n=3" in repr(g)

    def test_len(self):
        assert len(CSRGraph.from_arcs(7, [], [], directed=True)) == 7


class TestValidation:
    def test_zoo_graphs_valid(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        validate_graph(g)

    def test_num_edges_alias(self):
        g = CSRGraph.from_arcs(3, [0, 1], [1, 2], directed=False)
        assert g.num_edges == g.num_arcs == 4
        assert g.num_vertices == 3
